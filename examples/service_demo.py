"""The estimation service as cluster middleware.

The paper positions xMem as middleware an admission controller queries
before placing jobs.  This example stands up a full service stack —
timing, validation, rate limiting, audit log, fingerprint cache — and
drives it two ways:

1. a burst of raw requests (repeats are deduplicated and cached);
2. a :class:`ServiceAdmissionController` that turns a job queue into
   scheduled placements, refusing workloads that cannot fit anywhere.

Run with::

    python examples/service_demo.py
"""

from repro import RTX_3060, WorkloadConfig, XMemEstimator, format_gb
from repro.cluster import ServiceAdmissionController
from repro.runtime import run_gpu_ground_truth
from repro.service import (
    AuditLogMiddleware,
    CacheMiddleware,
    EstimateCache,
    EstimationService,
    RateLimitMiddleware,
    TimingMiddleware,
    ValidationMiddleware,
    estimate_many,
)

REQUEST_BURST = [
    ("MobileNetV3Small", "sgd", 64),
    ("MobileNetV3Large", "adam", 32),
    ("MobileNetV3Small", "sgd", 64),  # repeat: cache/single-flight
    ("distilgpt2", "adamw", 4),
    ("MobileNetV3Small", "sgd", 64),  # repeat again
    ("no-such-model", "sgd", 8),  # rejected by validation
]

JOB_QUEUE = [
    ("MobileNetV3Small", "sgd", 128),
    ("MobileNetV2", "sgd", 128),
    ("distilgpt2", "adamw", 4),
    ("MnasNet", "rmsprop", 64),
]


def main() -> None:
    cache = EstimateCache(max_entries=256, ttl_seconds=3600)
    audit = AuditLogMiddleware()
    service = EstimationService(
        estimator=XMemEstimator(iterations=2),
        middlewares=(
            TimingMiddleware(),
            RateLimitMiddleware(rate_per_second=100, burst=50),
            ValidationMiddleware(),
            audit,
            CacheMiddleware(cache),
        ),
        cache=cache,
        max_workers=4,
    )

    print("--- request burst through the middleware chain ---")
    requests = [
        (WorkloadConfig(m, o, b), RTX_3060) for m, o, b in REQUEST_BURST
    ]
    outcomes = estimate_many(service, requests, return_exceptions=True)
    for (workload, _), outcome in zip(requests, outcomes):
        if isinstance(outcome, Exception):
            print(f"{workload.label():<40} REJECTED ({outcome})")
        else:
            print(
                f"{workload.label():<40} "
                f"{format_gb(outcome.peak_bytes):>9}  "
                f"{'OOM' if outcome.predicts_oom() else 'fits'}"
            )
    stats = service.stats()["service"]
    print(
        f"\n{stats['requests']} requests: {stats['computed']} computed, "
        f"{stats['cache_hits']} cache hits, "
        f"{stats['deduplicated']} deduplicated, "
        f"{stats['rejected']} rejected "
        f"({len(audit.records)} audit records)"
    )

    print("\n--- service-backed admission + scheduling ---")
    controller = ServiceAdmissionController(
        service, devices=[RTX_3060], safety_margin=1.15
    )
    submissions = []
    for index, (model, optimizer, batch) in enumerate(JOB_QUEUE):
        truth = run_gpu_ground_truth(
            model, batch, optimizer,
            capacity_bytes=RTX_3060.job_budget(), seed=40 + index,
        )
        submissions.append(
            (WorkloadConfig(model, optimizer, batch), truth.measured_peak)
        )
    outcome, decisions = controller.simulate(
        submissions, duration=2, gpus_per_device=2
    )
    for decision in decisions:
        print(
            f"{decision.workload.label():<40} "
            f"{'admitted' if decision.admitted else 'refused':>8}  "
            f"reserve {format_gb(decision.reserved_bytes):>9}  "
            f"({decision.reason})"
        )
    print(
        f"\nschedule: {outcome.completed} completed, "
        f"{outcome.oom_kills} OOM kills, makespan {outcome.makespan}, "
        f"wasted {format_gb(outcome.total_wasted_bytes)}"
    )
    service.close()


if __name__ == "__main__":
    main()
