"""Downstream use-case: a GPU-sharing scheduler fed by memory estimates.

The paper's introduction motivates estimation with shared-cluster
scheduling: accurate estimates let the scheduler pack several jobs onto
one GPU without OOM kills.  This example schedules the same job mix three
ways — whole-GPU reservations (no estimator), xMem estimates, and a
deliberately naive 50%-of-truth underestimator — and compares throughput,
waste, and OOM kills.

Run with::

    python examples/cluster_scheduling.py
"""

from repro import RTX_3060, WorkloadConfig, XMemEstimator, format_gb
from repro.cluster import Job, MemoryAwareScheduler
from repro.runtime import run_gpu_ground_truth

JOB_MIX = [
    ("MobileNetV3Small", "sgd", 128),
    ("MobileNetV3Large", "adam", 64),
    ("distilgpt2", "adamw", 4),
    ("MnasNet", "rmsprop", 64),
    ("t5-small", "adafactor", 8),
    ("MobileNetV2", "sgd", 128),
]


def build_jobs(reservation_policy: str) -> list[Job]:
    estimator = XMemEstimator()
    jobs = []
    for index, (model, optimizer, batch) in enumerate(JOB_MIX):
        workload = WorkloadConfig(model, optimizer, batch)
        truth = run_gpu_ground_truth(
            model, batch, optimizer,
            capacity_bytes=RTX_3060.job_budget(), seed=100 + index,
        )
        if reservation_policy == "whole-gpu":
            reserved = RTX_3060.job_budget()
        elif reservation_policy == "xmem":
            # schedulers add a small safety margin on top of any estimate
            estimate = estimator.estimate(workload, RTX_3060).peak_bytes
            reserved = int(estimate * 1.15)
        elif reservation_policy == "lowball":
            reserved = truth.measured_peak // 2
        else:
            raise ValueError(reservation_policy)
        jobs.append(
            Job(
                workload=workload,
                reserved_bytes=reserved,
                actual_peak_bytes=truth.measured_peak,
                duration=2,
            )
        )
    return jobs


def main() -> None:
    print(f"cluster: 2x {RTX_3060.name}, job mix of {len(JOB_MIX)} trainings\n")
    header = (
        f"{'policy':<12}{'completed':>10}{'oom kills':>11}"
        f"{'makespan':>10}{'wasted':>12}"
    )
    print(header)
    print("-" * len(header))
    for policy in ("whole-gpu", "xmem", "lowball"):
        scheduler = MemoryAwareScheduler([RTX_3060], gpus_per_device=2)
        outcome = scheduler.simulate(build_jobs(policy))
        print(
            f"{policy:<12}{outcome.completed:>10}{outcome.oom_kills:>11}"
            f"{outcome.makespan:>10}"
            f"{format_gb(outcome.total_wasted_bytes):>12}"
        )
    print(
        "\nAccurate estimates (xmem) pack jobs tightly without OOM kills;"
        "\nwhole-GPU reservations waste capacity; underestimates get jobs"
        "\nkilled — the trade-off the paper's MCP metric captures."
    )


if __name__ == "__main__":
    main()
