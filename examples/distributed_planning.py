"""Paper §6.2 extension: plan pipeline parallelism from a CPU profile.

A model too large for one GPU can still be profiled on the CPU (RAM is
plentiful).  The Analyzer's per-layer attribution then yields per-layer
memory profiles, and a partitioner places contiguous layer groups onto
pipeline stages so each stage fits its device — all without touching a
GPU or running distributed.

Run with::

    python examples/distributed_planning.py
"""

from repro import RTX_3060, format_bytes
from repro.core import Analyzer
from repro.distributed import extract_layer_profiles, minimum_stages
from repro.models import get_model_spec
from repro.runtime import profile_on_cpu

MODEL = "pythia-1b"
BATCH = 8


def main() -> None:
    spec = get_model_spec(MODEL)
    model = spec.build()
    print(f"model    : {spec.name} "
          f"({model.num_parameters() / 1e6:.0f}M parameters)")
    print(f"workload : batch {BATCH}, AdamW, device {RTX_3060.name}\n")

    # 1. single-node CPU profile (the only measurement ever taken)
    trace = profile_on_cpu(spec, batch_size=BATCH, optimizer="adamw")
    analyzed = Analyzer().analyze(trace)

    # 2. per-layer memory map
    memory_map = extract_layer_profiles(analyzed, model, depth=1)
    print(f"per-layer profiles ({len(memory_map)} layers, showing largest 8):")
    largest = sorted(
        memory_map.layers,
        key=lambda p: p.parameter_bytes + p.activation_bytes,
        reverse=True,
    )[:8]
    for profile in largest:
        print(f"  {profile}")
    print(f"  ... total params "
          f"{format_bytes(memory_map.total_parameter_bytes())}, "
          f"total activations "
          f"{format_bytes(memory_map.total_activation_bytes())}\n")

    # 3. pipeline plan: smallest number of stages that fits the device
    plan = minimum_stages(
        memory_map, RTX_3060, optimizer_state_multiplier=2.0  # AdamW
    )
    print(f"pipeline plan: {plan.num_stages} stage(s), "
          f"balance {plan.balance:.2f} "
          f"(budget {format_bytes(plan.device_budget)} per device)")
    for stage in plan.stages:
        head = stage.layers[0]
        tail = stage.layers[-1]
        print(f"  stage {stage.index}: {format_bytes(stage.memory_bytes):>10} "
              f" [{head} ... {tail}] ({len(stage.layers)} layers)")


if __name__ == "__main__":
    main()
