"""The estimation service on an asyncio event loop.

The service stack is sans-IO: the middleware onion, fingerprint cache,
single-flight dedup, and gateway routing/shedding are pure policy steps
(:mod:`repro.service.core`), and two thin drivers execute them — the
thread pool (:class:`~repro.service.engine.EstimationService`) and the
event loop (:class:`~repro.service.aio.AsyncEstimationService`).  This
example drives the asyncio side:

1. a burst of concurrent duplicate requests submitted without ever
   blocking the loop (dedup + cache answered inline);
2. an :class:`~repro.service.aio.AsyncServiceGateway` replaying a zipf
   traffic scenario across four shards, then draining gracefully;
3. an admission controller awaiting decisions through the same service.

Run with::

    python examples/async_service_demo.py
"""

import asyncio

from repro import RTX_3060, WorkloadConfig, XMemEstimator, format_gb
from repro.cluster import ServiceAdmissionController
from repro.service import (
    AsyncEstimationService,
    AsyncServiceGateway,
    SyntheticEstimator,
    generate_traffic,
    replay_async,
)

REQUEST_BURST = [
    ("MobileNetV3Small", "sgd", 64),
    ("MobileNetV3Large", "adam", 32),
    ("MobileNetV3Small", "sgd", 64),  # repeat: single-flight/cache
    ("MobileNetV3Small", "sgd", 64),  # repeat again
]


async def serve_burst() -> None:
    print("=== async service: concurrent burst with dedup ===")
    async with AsyncEstimationService(
        estimator=XMemEstimator(iterations=1, curve=False)
    ) as service:
        futures = [
            service.submit(WorkloadConfig(model, optimizer, batch), RTX_3060)
            for model, optimizer, batch in REQUEST_BURST
        ]
        results = await asyncio.gather(*futures)
        for (model, optimizer, batch), result in zip(REQUEST_BURST, results):
            print(
                f"  {model:<20} {optimizer:<6} bs={batch:<4}"
                f"peak {format_gb(result.peak_bytes)}"
            )
        stats = service.stats()["service"]
        print(
            f"  {stats['requests']} requests -> "
            f"{stats['computed']} computed, "
            f"{stats['cache_hits']} cache hits, "
            f"{stats['deduplicated']} deduplicated\n"
        )


async def replay_scenario() -> None:
    print("=== async gateway: zipf replay over 4 shards ===")
    trace = generate_traffic("zipf", 400, seed=1)
    gateway = AsyncServiceGateway(
        num_shards=4,
        estimator_factory=lambda: SyntheticEstimator(work_seconds=0.001),
    )
    try:
        report = await replay_async(trace, gateway)
        aggregate = report.stats["aggregate"]
        print(
            f"  answered {report.answered}/{report.num_requests} at "
            f"{report.throughput_rps:,.0f} req/s, "
            f"hit rate {aggregate['cache_hit_rate']:.1%}, "
            f"routed {report.stats['gateway']['routed_per_shard']}"
        )
        drained = await gateway.drain(timeout=5)
        print(f"  graceful drain: {'idle' if drained else 'timed out'}\n")
    finally:
        await gateway.aclose()


async def admit_jobs() -> None:
    print("=== admission control through the async driver ===")
    async with AsyncEstimationService(
        estimator=XMemEstimator(iterations=1, curve=False)
    ) as service:
        controller = ServiceAdmissionController(service, devices=[RTX_3060])
        for model, batch in (
            ("MobileNetV3Small", 32),
            ("MobileNetV3Small", 16384),  # reservation exceeds the budget
        ):
            decision = await controller.decide_async(
                WorkloadConfig(model, "sgd", batch)
            )
            verdict = "admit" if decision.admitted else "refuse"
            print(
                f"  {model} bs={batch}: {verdict} "
                f"({format_gb(decision.reserved_bytes)} reserved; "
                f"{decision.reason})"
            )


async def main() -> None:
    await serve_burst()
    await replay_scenario()
    await admit_jobs()


if __name__ == "__main__":
    asyncio.run(main())
