"""Quickstart: estimate the peak GPU memory of a training job, a priori.

Run with::

    python examples/quickstart.py

The workload never touches a (simulated) GPU during estimation — the
estimate comes from a 3-iteration CPU profile, exactly like the paper's
deployment.  Afterwards the script *does* run the simulated-GPU ground
truth once, so you can see how close the estimate landed.
"""

from repro import (
    RTX_3060,
    WorkloadConfig,
    XMemEstimator,
    format_gb,
    run_gpu_ground_truth,
)


def main() -> None:
    workload = WorkloadConfig(model="gpt2", optimizer="adamw", batch_size=8)
    device = RTX_3060

    print(f"workload : {workload.label()}")
    print(f"device   : {device.name} ({format_gb(device.capacity_bytes)})")
    print()

    # --- the a-priori, CPU-only estimate ---------------------------------
    estimator = XMemEstimator()
    result = estimator.estimate(workload, device)
    print(f"xMem estimate        : {format_gb(result.peak_bytes)}")
    print(f"prediction           : "
          f"{'will OOM' if result.predicts_oom() else 'fits'}")
    print(f"estimator runtime    : {result.runtime_seconds:.2f}s")
    print(f"blocks analysed      : {result.detail['num_blocks']}")
    print(f"persistent memory    : "
          f"{format_gb(result.detail['persistent_bytes'])}")

    # --- compare against the simulated-GPU ground truth ------------------
    truth = run_gpu_ground_truth(
        workload.model,
        workload.batch_size,
        workload.optimizer,
        capacity_bytes=device.job_budget(),
        seed=42,
    )
    print()
    print(f"measured ground truth: {format_gb(truth.measured_peak)} "
          f"(NVML-sampled)")
    error = (result.peak_bytes - truth.measured_peak) / truth.measured_peak
    print(f"relative error       : {error * 100:+.2f}%")


if __name__ == "__main__":
    main()
