"""Reproduce the paper's Figure 1 motivation: the placement of
``optimizer.zero_grad()`` alone changes the segment footprint.

POS0 calls ``zero_grad()`` right before ``backward()`` — last iteration's
gradients survive the whole forward pass.  POS1 calls it at the start of
the iteration.  xMem sees the difference because it replays the actual
memory event sequence; static estimators cannot.

Run with::

    python examples/zero_grad_placement_study.py [model] [batch]
"""

import sys

from repro import RTX_3060, WorkloadConfig, XMemEstimator, format_gb
from repro.runtime import POS0, POS1


def ascii_curve(timeline, width: int = 72, height: int = 12) -> str:
    """Render a segment-memory curve as ASCII art."""
    points = timeline.downsample(width).points
    if not points:
        return "(empty)"
    peak = max(p.reserved_bytes for p in points) or 1
    columns = [p.reserved_bytes for p in points[:width]]
    rows = []
    for level in range(height, 0, -1):
        threshold = peak * level / height
        row = "".join("#" if c >= threshold else " " for c in columns)
        rows.append(f"{format_gb(int(threshold)):>10} |{row}")
    rows.append(" " * 11 + "+" + "-" * len(columns))
    return "\n".join(rows)


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "distilgpt2"
    batch = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    print(f"model={model} batch={batch} optimizer=adam\n")
    peaks = {}
    for position, label in ((POS0, "POS0 (before backward)"),
                            (POS1, "POS1 (start of iteration)")):
        workload = WorkloadConfig(
            model, "adam", batch, zero_grad_position=position
        )
        result = XMemEstimator().estimate(workload, RTX_3060)
        peaks[position] = result.peak_bytes
        print(f"--- {label}: estimated peak {format_gb(result.peak_bytes)}")
        assert result.curve is not None
        print(ascii_curve(result.curve))
        print()

    delta = peaks[POS0] - peaks[POS1]
    print(
        f"POS0 - POS1 = {format_gb(delta)} "
        f"({delta / peaks[POS1] * 100:+.1f}% just from moving one line of "
        "code — Fig. 1's point)"
    )


if __name__ == "__main__":
    main()
