"""Drive the CUDACachingAllocator simulator directly.

The allocator simulation is a standalone artifact of the paper
(contribution 4).  This example walks through the §2.2 mechanics: 512 B
rounding, segment over-request, caching, best-fit splitting, the Fig. 3
sequence effect, and the reclaim-then-OOM chain.

Run with::

    python examples/allocator_playground.py
"""

from repro import CachingAllocator, DeviceAllocator, format_bytes
from repro.allocator import memory_snapshot, summarize_snapshot
from repro.errors import SimOutOfMemoryError
from repro.units import KiB, MiB


def show(allocator: CachingAllocator, label: str) -> None:
    print(
        f"  {label:<42} tensors={format_bytes(allocator.allocated_bytes):>11}"
        f"  segments={format_bytes(allocator.reserved_bytes):>11}"
    )


def main() -> None:
    print("1. rounding + segment over-request (paper §2.2)")
    device = DeviceAllocator(capacity=256 * MiB)
    alloc = CachingAllocator(device)
    block = alloc.malloc(1000)
    print(f"   requested 1000 B -> block of {block.size} B (512-rounded)")
    show(alloc, "after a 1000 B tensor (2 MiB segment!)")
    big = alloc.malloc(6 * MiB)
    show(alloc, "after a 6 MiB tensor (20 MiB buffer!)")

    print("\n2. caching: frees do not return memory to the device")
    alloc.free(block)
    alloc.free(big)
    show(alloc, "after freeing both tensors")
    reused = alloc.malloc(5 * MiB)
    print(f"   re-alloc 5 MiB -> cache hit at address {reused.addr:#x}, "
          f"{alloc.stats.num_cache_hits} hit(s) so far")
    alloc.free(reused)
    released = alloc.empty_cache()
    show(alloc, f"after empty_cache (released {format_bytes(released)})")

    print("\n3. sequence sensitivity (Fig. 3): same tensors, different peaks")
    for order, label in (
        ("late-free", "alloc A, alloc B, free A, free B"),
        ("early-free", "alloc A, free A, alloc B"),
    ):
        alloc = CachingAllocator(DeviceAllocator(capacity=256 * MiB))
        a = alloc.malloc(40 * MiB)
        if order == "late-free":
            alloc.malloc(30 * MiB)
            alloc.free(a)
        else:
            alloc.free(a)
            alloc.malloc(30 * MiB)
        print(f"   {label:<38} peak segments = "
              f"{format_bytes(alloc.stats.reserved_bytes.peak)}")

    print("\n4. two-level OOM chain: reclaim cached segments, then fail")
    alloc = CachingAllocator(DeviceAllocator(capacity=64 * MiB))
    cached = alloc.malloc(40 * MiB)
    alloc.free(cached)
    show(alloc, "40 MiB cached on a 64 MiB device")
    survivor = alloc.malloc(60 * MiB)  # succeeds via reclamation
    show(alloc, "60 MiB request survived (cache reclaimed)")
    try:
        alloc.malloc(60 * MiB)
    except SimOutOfMemoryError as oom:
        print(f"   second 60 MiB request: {oom}")
    alloc.free(survivor)

    print("\n5. snapshot (the torch.cuda.memory_snapshot analogue)")
    alloc = CachingAllocator(DeviceAllocator(capacity=256 * MiB))
    for size in (700, 300 * KiB, 3 * MiB):
        alloc.malloc(size)
    snapshot = memory_snapshot(alloc)
    for segment in snapshot:
        blocks = ", ".join(
            f"{format_bytes(b['size'])}[{b['state'][0]}]"
            for b in segment["blocks"]
        )
        print(f"   segment {format_bytes(segment['total_size']):>9} "
              f"({segment['segment_type']}): {blocks}")
    print(f"   totals: {summarize_snapshot(snapshot)}")


if __name__ == "__main__":
    main()
