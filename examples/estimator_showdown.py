"""Head-to-head: xMem vs DNNMem vs SchedTune vs LLMem on mixed workloads.

A miniature of the paper's Fig. 7 / Table 3 analysis: each estimator
predicts a handful of workloads, predictions are compared against the
simulated-GPU ground truth, and the per-estimator error profile is shown.

Run with::

    python examples/estimator_showdown.py
"""

from repro import RTX_3060, WorkloadConfig, format_gb
from repro.eval import default_estimators
from repro.runtime import run_gpu_ground_truth

WORKLOADS = [
    WorkloadConfig("MobileNetV2", "sgd", 256),
    WorkloadConfig("ResNet101", "adam", 128),
    WorkloadConfig("VGG16", "adamw", 64),
    WorkloadConfig("distilgpt2", "adam", 8),
    WorkloadConfig("gpt2", "adamw", 8),
    WorkloadConfig("opt-125m", "adam", 16),
]


def main() -> None:
    estimators = default_estimators()
    names = [e.name for e in estimators]
    header = f"{'workload':<32}{'truth':>9}" + "".join(
        f"{name:>16}" for name in names
    )
    print(header)
    print("-" * len(header))

    errors: dict[str, list[float]] = {name: [] for name in names}
    for workload in WORKLOADS:
        truth = run_gpu_ground_truth(
            workload.model,
            workload.batch_size,
            workload.optimizer,
            capacity_bytes=RTX_3060.job_budget(),
            seed=7,
        )
        row = f"{workload.label():<32}{format_gb(truth.measured_peak):>9}"
        for estimator in estimators:
            if not estimator.supports(workload):
                row += f"{'N/A':>16}"
                continue
            result = estimator.estimate(workload, RTX_3060)
            error = (
                (result.peak_bytes - truth.measured_peak)
                / truth.measured_peak
            )
            errors[estimator.name].append(abs(error))
            row += f"{format_gb(result.peak_bytes):>9} {error * 100:+5.1f}%"
        print(row)

    print("\nmedian absolute error:")
    for name, values in errors.items():
        if not values:
            continue
        values.sort()
        median = values[len(values) // 2]
        print(f"  {name:<12} {median * 100:5.1f}%")


if __name__ == "__main__":
    main()
