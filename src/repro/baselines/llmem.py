"""LLMem baseline (Kim et al., IJCAI 2024) — direct GPU measurement.

LLMem estimates fine-tuning memory for *causal language models* by
executing a measured probe on the target GPU and extrapolating
analytically with batch size.  The reimplementation is faithful to both
the approach and its costs:

* it runs a real (simulated-)GPU iteration at batch size 1 — consuming the
  scarce resource the other estimators avoid (xMem paper §5.3), and the
  probe itself can OOM;
* it only supports decoder-only transformers (CNNs and encoder-decoder
  models are N/A, as in the paper's figures);
* the batch extrapolation assumes memory-efficient attention and ignores
  dropout masks, the loss's log-softmax duplicate, and allocator caching —
  so its error grows with batch size, matching the high MREs and >150 %
  outliers the paper reports.
"""

from __future__ import annotations

import time

from ..core.result import EstimationResult
from ..errors import UnsupportedModelError
from ..models.registry import get_model_spec
from ..models.transformer.decoder import DecoderLM
from ..runtime.ground_truth import run_gpu_ground_truth
from ..runtime.loop import TrainLoopConfig
from ..workload import DeviceSpec, WorkloadConfig
from .base import Estimator

#: bytes per parameter-precision element (the paper evaluates FP32)
_ITEM = 4


class LLMemEstimator(Estimator):
    """Measured bs=1 probe + analytical batch extrapolation (CausalLM only)."""

    name = "LLMem"

    def __init__(self, probe_seed: int = 104729, safety_margin: float = 1.05):
        self.probe_seed = probe_seed
        self.safety_margin = safety_margin

    def supports(self, workload: WorkloadConfig) -> bool:
        try:
            spec = get_model_spec(workload.model)
        except UnsupportedModelError:  # pragma: no cover - registry raises KeyError subclass
            return False
        return spec.causal_lm

    def estimate(
        self, workload: WorkloadConfig, device: DeviceSpec
    ) -> EstimationResult:
        if not self.supports(workload):
            return self.unsupported_result(workload, device)
        start = time.perf_counter()
        spec = get_model_spec(workload.model)
        model = spec.build()
        assert isinstance(model, DecoderLM)
        config = model.config
        seq_len = spec.input_meta(1).shape[1]

        # --- measured probe: one iteration at batch size 1 on the GPU ---
        probe = run_gpu_ground_truth(
            spec,
            batch_size=1,
            optimizer=workload.optimizer,
            loop=TrainLoopConfig(
                iterations=1,
                zero_grad_position=workload.zero_grad_position,
                set_to_none=workload.set_to_none,
            ),
            capacity_bytes=device.job_budget(),
            seed=self.probe_seed,
            iterations=1,
        )
        if probe.oom:
            # the probe itself ran out of memory: LLMem reports the device
            # as insufficient (estimate = capacity)
            runtime = time.perf_counter() - start
            return EstimationResult(
                estimator=self.name,
                workload=workload,
                device=device,
                peak_bytes=device.capacity_bytes,
                runtime_seconds=runtime,
                detail={"probe_oom": True},
            )

        # --- analytical per-sample activation growth -------------------
        # LLMem budgets the *worst case* per extra sample: every hidden
        # state, the fully materialized attention matrices, and the
        # full-vocabulary logits, each kept for backward.  Designed to
        # never under-provision a fine-tuning run, it systematically
        # overshoots eager-mode reality — the overestimation profile (high
        # MRE, usable caps) the paper's Fig. 8 shows for LLMem.
        per_layer = 16 * config.dim + 3 * config.ffn_dim
        attention_per_layer = 4 * config.num_heads * seq_len  # x T below
        act_per_sample = _ITEM * seq_len * (
            config.num_layers * (per_layer + attention_per_layer)
            + 2 * config.vocab_size
        )
        estimate = int(
            self.safety_margin
            * (
                probe.measured_peak
                + (workload.batch_size - 1) * act_per_sample
            )
        )
        runtime = time.perf_counter() - start
        return EstimationResult(
            estimator=self.name,
            workload=workload,
            device=device,
            peak_bytes=estimate,
            runtime_seconds=runtime,
            detail={
                "probe_peak_bytes": probe.measured_peak,
                "act_per_sample": act_per_sample,
                "probe_oom": False,
            },
        )
