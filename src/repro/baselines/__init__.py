"""Baseline estimators: DNNMem (static), SchedTune (ML), LLMem (GPU probe)."""

from .base import Estimator
from .dnnmem import DNNMemEstimator
from .llmem import LLMemEstimator
from .schedtune import HistoryRecord, SchedTuneEstimator

__all__ = [
    "DNNMemEstimator",
    "Estimator",
    "HistoryRecord",
    "LLMemEstimator",
    "SchedTuneEstimator",
]
