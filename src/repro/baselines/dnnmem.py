"""DNNMem baseline (Gao et al., ESEC/FSE 2020) — static analysis.

Reimplemented from the paper's description (as the xMem authors also had
to do): DNNMem walks the model's static computation graph, derives tensor
lifetimes from graph liveness, and replays them through a basic BFC
allocator simulation.

Faithful limitations (xMem paper §5.1):

* the static graph carries no optimizer-phase information, so stateful
  optimizers' persistent buffers are missing — accurate for SGD, badly
  under for Adam-family;
* no knowledge of code-level loop structure: gradients are assumed to die
  at the iteration boundary, so the ``zero_grad`` placement effect
  (Fig. 1) is invisible;
* runtime workspaces (im2col, cuDNN algorithms, cuBLAS handles) do not
  exist in the graph;
* the allocator simulation is single-level: no device allocator, no
  cached-segment reclamation before OOM.
"""

from __future__ import annotations

import time

from ..core.orchestrator import EventKind, MemoryOp, OrchestratedSequence
from ..core.result import EstimationResult
from ..core.simulator import MemorySimulator
from ..framework.loss import CrossEntropyLoss
from ..framework.plan import ModulePlan, PlanContext
from ..models.registry import get_model_spec
from ..workload import DeviceSpec, WorkloadConfig
from .base import Estimator


class DNNMemEstimator(Estimator):
    """Static computation-graph analysis with a basic BFC simulation."""

    name = "DNNMem"

    def __init__(
        self,
        iterations: int = 3,
        fragmentation_margin: float = 0.05,
        cuda_context_bytes: int = 0,
    ):
        """``cuda_context_bytes`` models DNNMem's explicit CUDA-context
        budget; it defaults to 0 here because this repository accounts all
        peaks in job-only terms (the framework/context overhead M_fm lives
        in :class:`~repro.workload.DeviceSpec`, outside every estimate)."""
        self.iterations = iterations
        self.fragmentation_margin = fragmentation_margin
        self.cuda_context_bytes = cuda_context_bytes

    def supports(self, workload: WorkloadConfig) -> bool:
        return True

    def estimate(
        self, workload: WorkloadConfig, device: DeviceSpec
    ) -> EstimationResult:
        start = time.perf_counter()
        spec = get_model_spec(workload.model)
        model = spec.build()
        ctx = PlanContext(spec.input_meta(workload.batch_size), root="model")
        model(ctx)
        CrossEntropyLoss()(ctx)
        plan = ctx.finish()
        # The workload's optimizer is deliberately unused: the static graph
        # does not extend into the optimizer step, so its state memory is
        # not modelled (the paper's key criticism of this approach).
        sequence = self._graph_sequence(
            plan,
            param_bytes=model.parameter_bytes(),
            batch_bytes=spec.input_meta(workload.batch_size).nbytes
            + spec.label_meta(workload.batch_size).nbytes,
        )
        simulation = MemorySimulator(two_level=False).replay(sequence)
        # DNNMem explicitly budgets the CUDA context and adds a
        # fragmentation allowance on top of its BFC simulation (Gao et
        # al. §4); these are its only hedges against runtime effects.
        peak = int(
            simulation.peak_reserved_bytes * (1 + self.fragmentation_margin)
            + self.cuda_context_bytes
        )
        runtime = time.perf_counter() - start
        return EstimationResult(
            estimator=self.name,
            workload=workload,
            device=device,
            peak_bytes=peak,
            runtime_seconds=runtime,
            curve=simulation.timeline,
            detail={
                "num_events": simulation.num_events,
                "modeled_iterations": self.iterations,
            },
        )

    # ------------------------------------------------------------------
    # static graph walk
    # ------------------------------------------------------------------
    def _graph_sequence(
        self, plan: ModulePlan, param_bytes: int, batch_bytes: int
    ) -> OrchestratedSequence:
        """Synthesize a memory-event sequence from graph liveness alone."""
        events: list[MemoryOp] = []
        next_id = 1
        ts = 0

        def emit(kind: EventKind, block_id: int, size: int) -> int:
            nonlocal ts
            ts += 1
            events.append(
                MemoryOp(ts=ts, kind=kind, block_id=block_id, size=size)
            )
            return block_id

        # weights: persistent
        weights_id = next_id
        next_id += 1
        emit(EventKind.ALLOC, weights_id, max(1, param_bytes))

        # alias map for view/in-place ops (graph-visible)
        alias: dict[int, int] = {}

        def resolve(op_id: int) -> int:
            return alias.get(op_id, op_id)

        for op in plan.ops:
            if op.output is None or op.inplace:
                if op.inputs:
                    alias[op.op_id] = resolve(op.inputs[0])
        consumers: dict[int, int] = {}
        pins: dict[int, int] = {}
        for op in plan.ops:
            for producer in {resolve(i) for i in op.inputs}:
                consumers[producer] = consumers.get(producer, 0) + 1
            if op.saves_input:
                for producer in {resolve(i) for i in op.inputs}:
                    pins[producer] = pins.get(producer, 0) + 1
            if op.saves_output:
                target = resolve(op.op_id)
                pins[target] = pins.get(target, 0) + 1

        grads_total = sum(op.param_bytes for op in plan.ops)
        for _ in range(self.iterations):
            iter_block_base = next_id
            next_id += 100_000
            batch_block = iter_block_base
            emit(EventKind.ALLOC, batch_block, max(1, batch_bytes))
            live: dict[int, tuple[int, int]] = {}  # tensor -> (block, size)
            remaining = dict(consumers)
            pinned = dict(pins)
            extra_blocks: dict[int, list[tuple[int, int]]] = {}

            def block_for(tensor_id: int) -> int:
                return iter_block_base + 1 + tensor_id

            # forward
            for op in plan.ops:
                target = resolve(op.op_id)
                if target == op.op_id and op.output is not None:
                    emit(EventKind.ALLOC, block_for(op.op_id), op.output.nbytes)
                    live[op.op_id] = (block_for(op.op_id), op.output.nbytes)
                for index, extra in enumerate(op.extra_saved):
                    block_id = iter_block_base + 50_000 + op.op_id * 8 + index
                    emit(EventKind.ALLOC, block_id, extra.nbytes)
                    extra_blocks.setdefault(op.op_id, []).append(
                        (block_id, extra.nbytes)
                    )
                for producer in {resolve(i) for i in op.inputs}:
                    if producer not in live:
                        continue
                    remaining[producer] = remaining.get(producer, 0) - 1
                    if remaining[producer] <= 0 and pinned.get(producer, 0) == 0:
                        block_id, _ = live.pop(producer)
                        emit(EventKind.FREE, block_id, 0)

            # gradients accumulate over the backward pass; the graph shows
            # them dying with the iteration
            grads_block = iter_block_base + 90_000
            if grads_total > 0:
                emit(EventKind.ALLOC, grads_block, grads_total)
            for op in reversed(plan.ops):
                if op.kind == "view":
                    continue
                for block_id, _ in extra_blocks.pop(op.op_id, []):
                    emit(EventKind.FREE, block_id, 0)
                released: list[int] = []
                if op.saves_input:
                    released.extend({resolve(i) for i in op.inputs})
                if op.saves_output:
                    released.append(resolve(op.op_id))
                for tensor_id in released:
                    if tensor_id not in live:
                        continue
                    pinned[tensor_id] = pinned.get(tensor_id, 1) - 1
                    if (
                        pinned[tensor_id] <= 0
                        and remaining.get(tensor_id, 0) <= 0
                    ):
                        block_id, _ = live.pop(tensor_id)
                        emit(EventKind.FREE, block_id, 0)

            # iteration boundary: batch, leftovers, gradients die
            emit(EventKind.FREE, batch_block, 0)
            for tensor_id in list(live):
                block_id, _ = live.pop(tensor_id)
                emit(EventKind.FREE, block_id, 0)
            if grads_total > 0:
                emit(EventKind.FREE, grads_block, 0)

        # rebuild sizes for FREE events (MemoryOp carries size for reports)
        sizes: dict[int, int] = {}
        fixed: list[MemoryOp] = []
        for event in events:
            if event.kind is EventKind.ALLOC:
                sizes[event.block_id] = event.size
                fixed.append(event)
            else:
                fixed.append(
                    MemoryOp(
                        ts=event.ts,
                        kind=EventKind.FREE,
                        block_id=event.block_id,
                        size=sizes.get(event.block_id, 0),
                    )
                )
        return OrchestratedSequence(
            events=fixed,
            horizon=ts + 1,
            num_blocks=len(sizes),
            persistent_bytes=param_bytes,
        )
