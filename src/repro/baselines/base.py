"""Estimator interface (re-exported from :mod:`repro.core.base`)."""

from ..core.base import Estimator

__all__ = ["Estimator"]
