"""SchedTune baseline (Albahar et al., CCGrid 2022) — data-driven ML.

SchedTune predicts job memory from model/hardware features using a model
pre-trained on historical cluster executions.  The reimplementation uses
ridge regression over job features, trained on a built-in "historical log"
dominated by CNN-era workloads — faithfully reproducing the approach's
strengths (fast inference, decent interpolation on seen families) and its
weaknesses (cold start on new architectures, blindness to code-level
configuration and allocator behaviour; xMem paper §5.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.result import EstimationResult
from ..framework.optim import make_optimizer
from ..models.registry import ModelSpec, get_model_spec
from ..runtime.ground_truth import run_gpu_ground_truth
from ..units import GiB, MiB
from ..workload import RTX_3060, DeviceSpec, WorkloadConfig
from .base import Estimator


@dataclass(frozen=True)
class HistoryRecord:
    """One historical execution: a workload and its observed peak."""

    workload: WorkloadConfig
    peak_bytes: int


#: The built-in historical log: the CNN-heavy job mix of a 2021-era
#: cluster, plus a token amount of (small) transformer jobs.  New model
#: families are by definition absent — the cold-start problem.
_DEFAULT_HISTORY_JOBS: tuple[WorkloadConfig, ...] = tuple(
    WorkloadConfig(model, optimizer, batch)
    for model, batches in (
        ("VGG16", (100, 200, 300)),
        ("ResNet101", (100, 200, 400)),
        ("MobileNetV2", (100, 300, 500)),
        ("MnasNet", (200, 400)),
        ("RegNetX400MF", (200, 400)),
        ("distilgpt2", (5, 10)),
        ("gpt2", (5, 10)),
    )
    for optimizer in ("sgd", "adam")
    for batch in batches
)


_ACTIVATION_CACHE: dict[str, int] = {}


def _activation_bytes_per_sample(spec: ModelSpec) -> int:
    """Sum of op output bytes for one sample — a model characteristic
    SchedTune derives from the architecture description."""
    if spec.name not in _ACTIVATION_CACHE:
        plan = spec.build().build_plan(spec.input_meta(1))
        _ACTIVATION_CACHE[spec.name] = plan.total_output_bytes()
    return _ACTIVATION_CACHE[spec.name]


def _features(workload: WorkloadConfig, spec: ModelSpec) -> np.ndarray:
    """SchedTune's feature vector: model and job characteristics only.

    Deliberately excludes what SchedTune cannot see: allocator behaviour,
    ``zero_grad`` placement, per-operator lifetimes.
    """
    model = spec.build()
    params = model.num_parameters()
    optimizer = make_optimizer(workload.optimizer)
    state_multiplier = sum(
        len(optimizer.state_tensors(p.meta)) for p in model.parameters()
    ) / max(1, sum(1 for _ in model.parameters()))
    activation_mb = _activation_bytes_per_sample(spec) / 1e6
    return np.array(
        [
            1.0,
            params / 1e6,
            workload.batch_size,
            (params / 1e6) * state_multiplier,
            activation_mb * workload.batch_size,
            1.0 if spec.family == "transformer" else 0.0,
        ]
    )


class SchedTuneEstimator(Estimator):
    """Ridge regression over job features, trained on historical runs."""

    name = "SchedTune"

    def __init__(
        self,
        history: Optional[Sequence[HistoryRecord]] = None,
        ridge_lambda: float = 1e-3,
        training_device: DeviceSpec = RTX_3060,
        headroom: float = 1.15,
    ):
        """``headroom`` is SchedTune's placement-safety calibration: the
        scheduler it feeds over-provisions predictions by this factor to
        absorb regression error (trading MRE for fewer OOM kills)."""
        self.ridge_lambda = ridge_lambda
        self.training_device = training_device
        self.headroom = headroom
        self._history = list(history) if history is not None else None
        self._weights: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def _default_history(self) -> list[HistoryRecord]:
        records = []
        for workload in _DEFAULT_HISTORY_JOBS:
            truth = run_gpu_ground_truth(
                workload.model,
                workload.batch_size,
                workload.optimizer,
                capacity_bytes=64 * GiB,  # history holds only completed jobs
                seed=hash(workload.label()) & 0xFFFF,
            )
            records.append(
                HistoryRecord(workload=workload, peak_bytes=truth.measured_peak)
            )
        return records

    def fit(self, history: Optional[Sequence[HistoryRecord]] = None) -> None:
        """(Re)train the regression; uses the built-in log by default."""
        if history is not None:
            self._history = list(history)
        if self._history is None:
            self._history = self._default_history()
        rows = []
        targets = []
        for record in self._history:
            spec = get_model_spec(record.workload.model)
            rows.append(_features(record.workload, spec))
            targets.append(record.peak_bytes / GiB)
        design = np.array(rows)
        target = np.array(targets)
        gram = design.T @ design + self.ridge_lambda * np.eye(design.shape[1])
        self._weights = np.linalg.solve(gram, design.T @ target)

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def supports(self, workload: WorkloadConfig) -> bool:
        return True

    def estimate(
        self, workload: WorkloadConfig, device: DeviceSpec
    ) -> EstimationResult:
        start = time.perf_counter()
        if self._weights is None:
            self.fit()
            start = time.perf_counter()  # training is offline, not runtime
        spec = get_model_spec(workload.model)
        prediction_gib = float(_features(workload, spec) @ self._weights)
        # a trained estimator never predicts below a tiny floor
        peak = max(int(prediction_gib * self.headroom * GiB), 64 * MiB)
        runtime = time.perf_counter() - start
        return EstimationResult(
            estimator=self.name,
            workload=workload,
            device=device,
            peak_bytes=peak,
            runtime_seconds=runtime,
            detail={"prediction_gib": prediction_gib},
        )
