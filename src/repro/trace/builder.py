"""Incremental trace construction used by the CPU profiler.

The runtime engine drives a :class:`TraceBuilder` through nested ``span``
context managers (python functions, cpu ops, annotations) and point calls
for memory events.  The builder validates nesting and hands back an
immutable :class:`~repro.trace.reader.Trace`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from ..errors import TraceError
from .events import EventCategory, MemoryEvent, SpanEvent
from .reader import Trace


class _OpenSpan:
    __slots__ = ("name", "category", "ts", "tid", "args")

    def __init__(
        self,
        name: str,
        category: EventCategory,
        ts: int,
        tid: int,
        args: dict[str, Any],
    ):
        self.name = name
        self.category = category
        self.ts = ts
        self.tid = tid
        self.args = args


class TraceBuilder:
    """Builds a trace from nested spans and instant memory events.

    The builder does not own a clock — callers pass explicit timestamps —
    so the same builder works for the virtual-time runtime and for tests
    that construct pathological traces by hand.
    """

    def __init__(self, metadata: dict[str, Any] | None = None):
        self.metadata: dict[str, Any] = dict(metadata or {})
        self._spans: list[SpanEvent] = []
        self._memory_events: list[MemoryEvent] = []
        self._stack: list[_OpenSpan] = []
        self._total_allocated = 0
        self._finished = False

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def begin_span(
        self,
        name: str,
        category: EventCategory,
        ts: int,
        args: dict[str, Any] | None = None,
        tid: int = 0,
    ) -> None:
        self._check_open()
        if self._stack and ts < self._stack[-1].ts:
            raise TraceError(
                f"span {name!r} starts at {ts} before its parent "
                f"{self._stack[-1].name!r} at {self._stack[-1].ts}"
            )
        self._stack.append(_OpenSpan(name, category, ts, tid, dict(args or {})))

    def end_span(self, ts: int) -> SpanEvent:
        self._check_open()
        if not self._stack:
            raise TraceError("end_span with no open span")
        open_span = self._stack.pop()
        if ts < open_span.ts:
            raise TraceError(
                f"span {open_span.name!r} ends at {ts} before it starts "
                f"at {open_span.ts}"
            )
        event = SpanEvent(
            name=open_span.name,
            category=open_span.category,
            ts=open_span.ts,
            dur=ts - open_span.ts,
            tid=open_span.tid,
            args=open_span.args,
        )
        self._spans.append(event)
        return event

    @contextmanager
    def span(
        self,
        name: str,
        category: EventCategory,
        start_ts: int,
        end_ts_fn,
        args: dict[str, Any] | None = None,
    ) -> Iterator[None]:
        """Span context manager; ``end_ts_fn`` is called at exit for the end
        timestamp (lets the runtime's clock advance inside the span)."""
        self.begin_span(name, category, start_ts, args)
        try:
            yield
        finally:
            self.end_span(end_ts_fn())

    # ------------------------------------------------------------------
    # instant events
    # ------------------------------------------------------------------
    def record_alloc(self, ts: int, addr: int, nbytes: int, device: str = "cpu") -> None:
        if nbytes <= 0:
            raise TraceError(f"allocation must have positive size, got {nbytes}")
        self._check_open()
        self._total_allocated += nbytes
        self._memory_events.append(
            MemoryEvent(
                ts=ts,
                addr=addr,
                nbytes=nbytes,
                total_allocated=self._total_allocated,
                device=device,
            )
        )

    def record_free(self, ts: int, addr: int, nbytes: int, device: str = "cpu") -> None:
        if nbytes <= 0:
            raise TraceError(f"free must have positive size, got {nbytes}")
        self._check_open()
        self._total_allocated -= nbytes
        self._memory_events.append(
            MemoryEvent(
                ts=ts,
                addr=addr,
                nbytes=-nbytes,
                total_allocated=self._total_allocated,
                device=device,
            )
        )

    def annotate(self, name: str, ts: int, dur: int = 0, args: dict | None = None) -> None:
        """Emit a complete user_annotation span in one call."""
        self._check_open()
        self._spans.append(
            SpanEvent(
                name=name,
                category=EventCategory.USER_ANNOTATION,
                ts=ts,
                dur=dur,
                args=dict(args or {}),
            )
        )

    # ------------------------------------------------------------------
    # finish
    # ------------------------------------------------------------------
    def finish(self) -> Trace:
        self._check_open()
        if self._stack:
            names = [s.name for s in self._stack]
            raise TraceError(f"finish() with open spans: {names}")
        self._finished = True
        return Trace(
            spans=sorted(self._spans, key=lambda e: (e.ts, -e.dur)),
            memory_events=sorted(self._memory_events, key=lambda e: e.ts),
            metadata=self.metadata,
        )

    def _check_open(self) -> None:
        if self._finished:
            raise TraceError("builder already finished")
