"""Import real PyTorch-profiler (Kineto) traces.

The deployed xMem consumes the JSON the PyTorch profiler writes
(``torch.profiler.profile(..., profile_memory=True)`` exported via
``prof.export_chrome_trace``).  This adapter maps that dialect onto the
internal :class:`~repro.trace.reader.Trace` model so the Analyzer runs
unchanged on real traces:

* Kineto categories (``python_function``, ``user_annotation``, ``cpu_op``)
  map one-to-one;
* ``[memory]`` instant events carry ``Addr`` / ``Bytes`` /
  ``Total Allocated`` in ``args`` — same fields, different device-type
  encoding (Kineto uses integer device types: 0 = CPU);
* unknown categories (``kernel``, ``gpu_memset``, ``Trace``, ...) are
  skipped, counted in the import report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..errors import TraceSchemaError
from .events import EventCategory, MemoryEvent, SpanEvent
from .reader import Trace

#: Kineto category strings accepted for span events.
_SPAN_CATEGORIES = {
    "python_function": EventCategory.PYTHON_FUNCTION,
    "user_annotation": EventCategory.USER_ANNOTATION,
    "cpu_op": EventCategory.CPU_OP,
    # older PyTorch versions used "Operator" for cpu ops
    "operator": EventCategory.CPU_OP,
}

_MEMORY_EVENT_NAME = "[memory]"


@dataclass(frozen=True)
class KinetoImportReport:
    """What the importer kept and skipped."""

    num_spans: int
    num_memory_events: int
    num_skipped: int
    skipped_categories: tuple[str, ...]


def import_kineto(document: dict[str, Any]) -> tuple[Trace, KinetoImportReport]:
    """Convert a Kineto chrome-trace document into a :class:`Trace`."""
    raw_events = document.get("traceEvents")
    if raw_events is None:
        raise TraceSchemaError("Kineto document has no traceEvents")
    spans: list[SpanEvent] = []
    memory_events: list[MemoryEvent] = []
    skipped = 0
    skipped_categories: set[str] = set()
    for payload in raw_events:
        phase = payload.get("ph")
        category = str(payload.get("cat", "")).lower()
        if phase == "X" and category in _SPAN_CATEGORIES:
            spans.append(
                SpanEvent(
                    name=str(payload.get("name", "")),
                    category=_SPAN_CATEGORIES[category],
                    ts=int(payload.get("ts", 0)),
                    dur=int(payload.get("dur", 0)),
                    tid=int(payload.get("tid", 0) or 0),
                    args=dict(payload.get("args", {})),
                )
            )
            continue
        if phase in ("i", "I") and payload.get("name") == _MEMORY_EVENT_NAME:
            args = payload.get("args", {})
            device = args.get("Device Type", 0)
            if device not in (0, "0", "cpu"):
                skipped += 1  # GPU-side records: not part of the CPU profile
                skipped_categories.add("gpu_memory")
                continue
            try:
                memory_events.append(
                    MemoryEvent(
                        ts=int(payload["ts"]),
                        addr=int(args["Addr"]),
                        nbytes=int(args["Bytes"]),
                        total_allocated=int(args.get("Total Allocated", 0)),
                        device="cpu",
                    )
                )
            except (KeyError, ValueError) as exc:
                raise TraceSchemaError(
                    f"malformed Kineto [memory] event: {payload!r}"
                ) from exc
            continue
        skipped += 1
        skipped_categories.add(category or str(phase))
    metadata = {
        key: value
        for key, value in document.items()
        if key not in ("traceEvents",) and not isinstance(value, (list, dict))
    }
    metadata["source"] = "kineto"
    trace = Trace(
        spans=sorted(spans, key=lambda e: (e.ts, -e.dur)),
        memory_events=sorted(memory_events, key=lambda e: e.ts),
        metadata=metadata,
    )
    report = KinetoImportReport(
        num_spans=len(spans),
        num_memory_events=len(memory_events),
        num_skipped=skipped,
        skipped_categories=tuple(sorted(skipped_categories)),
    )
    return trace, report


def load_kineto_file(path: str | Path) -> tuple[Trace, KinetoImportReport]:
    """Load and convert a Kineto JSON file."""
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise TraceSchemaError(f"{path} is not valid JSON") from exc
    return import_kineto(document)
