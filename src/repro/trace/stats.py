"""Summary statistics over traces — quick sanity views for users and tests."""

from __future__ import annotations

from dataclasses import dataclass

from .events import EventCategory
from .reader import Trace


@dataclass(frozen=True)
class TraceSummary:
    """Headline numbers describing one profiling trace."""

    num_spans: int
    num_python_functions: int
    num_user_annotations: int
    num_cpu_ops: int
    num_memory_events: int
    num_allocs: int
    num_frees: int
    num_iterations: int
    peak_traced_bytes: int
    total_alloc_bytes: int
    duration_us: int

    def as_dict(self) -> dict[str, int]:
        return {
            "num_spans": self.num_spans,
            "num_python_functions": self.num_python_functions,
            "num_user_annotations": self.num_user_annotations,
            "num_cpu_ops": self.num_cpu_ops,
            "num_memory_events": self.num_memory_events,
            "num_allocs": self.num_allocs,
            "num_frees": self.num_frees,
            "num_iterations": self.num_iterations,
            "peak_traced_bytes": self.peak_traced_bytes,
            "total_alloc_bytes": self.total_alloc_bytes,
            "duration_us": self.duration_us,
        }


def summarize_trace(trace: Trace) -> TraceSummary:
    """Compute a :class:`TraceSummary` for ``trace``."""
    allocs = [e for e in trace.memory_events if e.is_alloc]
    frees = [e for e in trace.memory_events if e.is_free]
    peak = max((e.total_allocated for e in trace.memory_events), default=0)
    if trace.spans or trace.memory_events:
        start, end = trace.span_bounds()
        duration = end - start
    else:
        duration = 0
    return TraceSummary(
        num_spans=len(trace.spans),
        num_python_functions=len(trace.by_category(EventCategory.PYTHON_FUNCTION)),
        num_user_annotations=len(trace.by_category(EventCategory.USER_ANNOTATION)),
        num_cpu_ops=len(trace.by_category(EventCategory.CPU_OP)),
        num_memory_events=len(trace.memory_events),
        num_allocs=len(allocs),
        num_frees=len(frees),
        num_iterations=trace.num_iterations(),
        peak_traced_bytes=peak,
        total_alloc_bytes=sum(e.nbytes for e in allocs),
        duration_us=duration,
    )
