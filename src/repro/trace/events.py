"""Profiler event model (paper §3.2).

The Analyzer consumes exactly four event categories from the PyTorch
Profiler; this module defines them:

* ``python_function`` — Python-level calls (``nn.Module`` invocations,
  training-script functions).  Nested spans form the call hierarchy.
* ``user_annotation`` — markers for training-loop phases
  (``ProfilerStep#k``, ``Optimizer.zero_grad#...``, ``Optimizer.step#...``,
  ``dataloader.__next__``).
* ``cpu_op`` — ATen kernels dispatched to the CPU backend
  (``aten::convolution`` …), with forward/backward linking sequence numbers.
* ``cpu_instant_event`` — ``[memory]`` records: signed byte deltas with the
  address, emitted by the allocator hooks.

Span events carry microsecond ``ts``/``dur``; instant events carry ``ts``
only.  All events are immutable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

_event_ids = itertools.count(1)


class EventCategory(str, Enum):
    PYTHON_FUNCTION = "python_function"
    USER_ANNOTATION = "user_annotation"
    CPU_OP = "cpu_op"
    CPU_INSTANT_EVENT = "cpu_instant_event"


#: Annotation names the Orchestrator keys on (paper §3.3).
PROFILER_STEP_PREFIX = "ProfilerStep#"
ZERO_GRAD_PREFIX = "Optimizer.zero_grad#"
OPTIMIZER_STEP_PREFIX = "Optimizer.step#"
DATALOADER_NEXT = "dataloader.__next__"
MODEL_TO_DEVICE = "Module.to"


@dataclass(frozen=True)
class SpanEvent:
    """A duration event (``ph: "X"`` in Chrome-trace terms)."""

    name: str
    category: EventCategory
    ts: int  # microseconds
    dur: int  # microseconds
    tid: int = 0
    args: dict[str, Any] = field(default_factory=dict)
    event_id: int = field(default_factory=lambda: next(_event_ids))

    @property
    def end(self) -> int:
        return self.ts + self.dur

    def contains_time(self, ts: int) -> bool:
        """True when ``ts`` falls inside this span (inclusive bounds).

        Bounds are inclusive because allocator hooks fire *within* the
        surrounding op's window and may share its boundary timestamps.
        """
        return self.ts <= ts <= self.end

    def contains_span(self, other: "SpanEvent") -> bool:
        return self.ts <= other.ts and other.end <= self.end

    def contains_interval(self, start: int, end: int) -> bool:
        return self.ts <= start and end <= self.end

    @property
    def sequence_number(self) -> Optional[int]:
        """Links a forward op to its backward counterpart, when present."""
        return self.args.get("Sequence number")

    @property
    def is_backward(self) -> bool:
        return bool(self.args.get("Backward", False)) or "Backward" in self.name


@dataclass(frozen=True)
class MemoryEvent:
    """A ``[memory]`` instant event: one allocation or deallocation.

    ``nbytes`` is signed — positive for allocations, negative for frees —
    matching the profiler's convention.  ``addr`` identifies the buffer;
    addresses are reused over time, which lifecycle reconstruction must
    handle (§3.2).
    """

    ts: int
    addr: int
    nbytes: int
    total_allocated: int = 0
    device: str = "cpu"
    event_id: int = field(default_factory=lambda: next(_event_ids))

    @property
    def is_alloc(self) -> bool:
        return self.nbytes > 0

    @property
    def is_free(self) -> bool:
        return self.nbytes < 0

    @property
    def size(self) -> int:
        return abs(self.nbytes)


def is_profiler_step(event: SpanEvent) -> bool:
    return (
        event.category is EventCategory.USER_ANNOTATION
        and event.name.startswith(PROFILER_STEP_PREFIX)
    )


def is_zero_grad(event: SpanEvent) -> bool:
    return (
        event.category is EventCategory.USER_ANNOTATION
        and event.name.startswith(ZERO_GRAD_PREFIX)
    )


def is_optimizer_step(event: SpanEvent) -> bool:
    return (
        event.category is EventCategory.USER_ANNOTATION
        and event.name.startswith(OPTIMIZER_STEP_PREFIX)
    )


def is_dataloader_next(event: SpanEvent) -> bool:
    return (
        event.category is EventCategory.USER_ANNOTATION
        and event.name == DATALOADER_NEXT
    )
