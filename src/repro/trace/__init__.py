"""Profiler trace model: events, JSON schema, builder, reader (paper §3.2)."""

from .builder import TraceBuilder
from .kineto import KinetoImportReport, import_kineto, load_kineto_file
from .events import (
    DATALOADER_NEXT,
    MODEL_TO_DEVICE,
    OPTIMIZER_STEP_PREFIX,
    PROFILER_STEP_PREFIX,
    ZERO_GRAD_PREFIX,
    EventCategory,
    MemoryEvent,
    SpanEvent,
    is_dataloader_next,
    is_optimizer_step,
    is_profiler_step,
    is_zero_grad,
)
from .reader import Trace
from .schema import (
    SCHEMA_VERSION,
    dump_trace_file,
    load_trace_file,
    trace_from_json,
    trace_to_json,
)
from .stats import TraceSummary, summarize_trace

__all__ = [
    "DATALOADER_NEXT",
    "KinetoImportReport",
    "import_kineto",
    "load_kineto_file",
    "EventCategory",
    "MODEL_TO_DEVICE",
    "MemoryEvent",
    "OPTIMIZER_STEP_PREFIX",
    "PROFILER_STEP_PREFIX",
    "SCHEMA_VERSION",
    "SpanEvent",
    "Trace",
    "TraceBuilder",
    "TraceSummary",
    "ZERO_GRAD_PREFIX",
    "dump_trace_file",
    "is_dataloader_next",
    "is_optimizer_step",
    "is_profiler_step",
    "is_zero_grad",
    "load_trace_file",
    "summarize_trace",
    "trace_from_json",
    "trace_to_json",
]
