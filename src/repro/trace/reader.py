"""Immutable trace object with the queries the Analyzer needs.

A :class:`Trace` holds the four event categories (paper §3.2) plus run
metadata.  It offers structural queries — iteration windows from
``ProfilerStep#`` annotations, zero-grad / optimizer-step windows, the
cpu_op interval index — while leaving lifecycle reconstruction and
attribution to :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from ..errors import TraceError
from .events import (
    EventCategory,
    MemoryEvent,
    SpanEvent,
    is_dataloader_next,
    is_optimizer_step,
    is_profiler_step,
    is_zero_grad,
)


@dataclass(frozen=True)
class Trace:
    """A completed profiling trace (spans + memory events + metadata)."""

    spans: list[SpanEvent]
    memory_events: list[MemoryEvent]
    metadata: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # category views
    # ------------------------------------------------------------------
    def by_category(self, category: EventCategory) -> list[SpanEvent]:
        return [e for e in self.spans if e.category is category]

    @property
    def python_functions(self) -> list[SpanEvent]:
        return self.by_category(EventCategory.PYTHON_FUNCTION)

    @property
    def user_annotations(self) -> list[SpanEvent]:
        return self.by_category(EventCategory.USER_ANNOTATION)

    @property
    def cpu_ops(self) -> list[SpanEvent]:
        return self.by_category(EventCategory.CPU_OP)

    # ------------------------------------------------------------------
    # training-loop structure
    # ------------------------------------------------------------------
    def iterations(self) -> list[SpanEvent]:
        """ProfilerStep# spans, ordered — one per training iteration."""
        steps = [e for e in self.user_annotations if is_profiler_step(e)]
        return sorted(steps, key=lambda e: e.ts)

    def iteration_window(self, index: int) -> SpanEvent:
        steps = self.iterations()
        if not 0 <= index < len(steps):
            raise TraceError(
                f"iteration {index} out of range; trace has {len(steps)}"
            )
        return steps[index]

    def num_iterations(self) -> int:
        return len(self.iterations())

    def zero_grad_spans(self) -> list[SpanEvent]:
        return sorted(
            (e for e in self.user_annotations if is_zero_grad(e)),
            key=lambda e: e.ts,
        )

    def optimizer_step_spans(self) -> list[SpanEvent]:
        return sorted(
            (e for e in self.user_annotations if is_optimizer_step(e)),
            key=lambda e: e.ts,
        )

    def dataloader_spans(self) -> list[SpanEvent]:
        return sorted(
            (e for e in self.user_annotations if is_dataloader_next(e)),
            key=lambda e: e.ts,
        )

    # ------------------------------------------------------------------
    # time queries
    # ------------------------------------------------------------------
    def span_bounds(self) -> tuple[int, int]:
        """(first ts, last end) over all events in the trace."""
        starts = [e.ts for e in self.spans] + [e.ts for e in self.memory_events]
        ends = [e.end for e in self.spans] + [e.ts for e in self.memory_events]
        if not starts:
            raise TraceError("empty trace has no bounds")
        return min(starts), max(ends)

    def enclosing_spans(self, ts: int, category: EventCategory) -> list[SpanEvent]:
        """Spans of ``category`` containing ``ts``, outermost first.

        Linear scan — fine for tests and spot checks; the Analyzer uses a
        sweep over sorted events for bulk attribution.
        """
        enclosing = [
            e for e in self.by_category(category) if e.contains_time(ts)
        ]
        return sorted(enclosing, key=lambda e: (e.ts, -e.dur))

    def memory_events_in(self, start: int, end: int) -> Iterator[MemoryEvent]:
        for event in self.memory_events:
            if start <= event.ts <= end:
                yield event

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        from .schema import dump_trace_file

        dump_trace_file(path, self.spans, self.memory_events, self.metadata)

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        from .schema import load_trace_file

        spans, memory_events, metadata = load_trace_file(path)
        return cls(
            spans=sorted(spans, key=lambda e: (e.ts, -e.dur)),
            memory_events=sorted(memory_events, key=lambda e: e.ts),
            metadata=metadata,
        )

    def __len__(self) -> int:
        return len(self.spans) + len(self.memory_events)
