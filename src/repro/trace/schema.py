"""JSON (de)serialization of profiler traces.

The on-disk format mirrors the Chrome-trace JSON the PyTorch profiler
exports: a ``traceEvents`` array of ``ph: "X"`` duration events and
``ph: "i"`` instant events, plus a ``metadata`` object describing the run
(model, backend, iterations).  ``repro`` components never depend on the raw
JSON — they consume :class:`~repro.trace.reader.Trace` objects — so this
module is the single place that knows field names.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..errors import TraceSchemaError
from .events import EventCategory, MemoryEvent, SpanEvent

SCHEMA_VERSION = 1


def span_to_json(event: SpanEvent) -> dict[str, Any]:
    return {
        "ph": "X",
        "name": event.name,
        "cat": event.category.value,
        "ts": event.ts,
        "dur": event.dur,
        "pid": 0,
        "tid": event.tid,
        "args": dict(event.args),
    }


def memory_to_json(event: MemoryEvent) -> dict[str, Any]:
    return {
        "ph": "i",
        "name": "[memory]",
        "cat": EventCategory.CPU_INSTANT_EVENT.value,
        "ts": event.ts,
        "pid": 0,
        "tid": 0,
        "args": {
            "Addr": event.addr,
            "Bytes": event.nbytes,
            "Total Allocated": event.total_allocated,
            "Device Type": event.device,
        },
    }


def span_from_json(payload: dict[str, Any]) -> SpanEvent:
    try:
        return SpanEvent(
            name=payload["name"],
            category=EventCategory(payload["cat"]),
            ts=int(payload["ts"]),
            dur=int(payload.get("dur", 0)),
            tid=int(payload.get("tid", 0)),
            args=dict(payload.get("args", {})),
        )
    except (KeyError, ValueError) as exc:
        raise TraceSchemaError(f"malformed span event: {payload!r}") from exc


def memory_from_json(payload: dict[str, Any]) -> MemoryEvent:
    try:
        args = payload["args"]
        return MemoryEvent(
            ts=int(payload["ts"]),
            addr=int(args["Addr"]),
            nbytes=int(args["Bytes"]),
            total_allocated=int(args.get("Total Allocated", 0)),
            device=str(args.get("Device Type", "cpu")),
        )
    except (KeyError, ValueError) as exc:
        raise TraceSchemaError(f"malformed memory event: {payload!r}") from exc


def trace_to_json(
    spans: list[SpanEvent],
    memory_events: list[MemoryEvent],
    metadata: dict[str, Any],
) -> dict[str, Any]:
    events: list[dict[str, Any]] = [span_to_json(e) for e in spans]
    events.extend(memory_to_json(e) for e in memory_events)
    events.sort(key=lambda e: e["ts"])
    return {
        "schemaVersion": SCHEMA_VERSION,
        "metadata": metadata,
        "traceEvents": events,
    }


def trace_from_json(
    document: dict[str, Any],
) -> tuple[list[SpanEvent], list[MemoryEvent], dict[str, Any]]:
    if "traceEvents" not in document:
        raise TraceSchemaError("document has no traceEvents array")
    version = document.get("schemaVersion", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise TraceSchemaError(f"unsupported schema version {version}")
    spans: list[SpanEvent] = []
    memory_events: list[MemoryEvent] = []
    for payload in document["traceEvents"]:
        phase = payload.get("ph")
        if phase == "X":
            spans.append(span_from_json(payload))
        elif phase == "i":
            memory_events.append(memory_from_json(payload))
        else:
            raise TraceSchemaError(f"unknown event phase {phase!r}")
    return spans, memory_events, dict(document.get("metadata", {}))


def dump_trace_file(
    path: str | Path,
    spans: list[SpanEvent],
    memory_events: list[MemoryEvent],
    metadata: dict[str, Any],
) -> None:
    document = trace_to_json(spans, memory_events, metadata)
    Path(path).write_text(json.dumps(document))


def load_trace_file(
    path: str | Path,
) -> tuple[list[SpanEvent], list[MemoryEvent], dict[str, Any]]:
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise TraceSchemaError(f"{path} is not valid JSON") from exc
    return trace_from_json(document)
