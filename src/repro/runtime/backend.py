"""Execution backends: how the same plan *behaves* on CPU vs GPU.

The paper's premise (§1 observations i-iii) is that CPU and GPU executions
share the core tensor set but diverge in operator-level details.  This
module is where that divergence lives:

* **Workspaces** — CPU convolutions use im2col buffers (what the plan
  declares); GPU convolutions use a cuDNN-style algorithm workspace whose
  size depends on the algorithm heuristically chosen per shape.
* **Fusion** — GPU backends fuse elementwise ops into the producing kernel,
  eliminating the separate output buffer the CPU run materializes.
* **One-time library state** — the first GPU matmul allocates a persistent
  cuBLAS workspace.
* **Deferred frees** — GPU stream semantics return buffers slightly later
  than eager CPU code does.
* **Run-to-run jitter** — autotuner choices vary per run (seeded RNG).

These differences are exactly what makes CPU-trace-driven estimation
non-trivial, and what bounds xMem's residual error (§3.3 footnote 3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..framework.plan import OpSpec
from ..units import KiB, MiB


@dataclass(frozen=True)
class ExecOp:
    """Backend-resolved execution behaviour for one planned op."""

    op: OpSpec
    materialize_output: bool  # False when fused/in-place on this backend
    workspace_bytes: int
    backward_workspace_bytes: int
    duration_us: int
    backward_duration_us: int
    #: Extra persistent allocation made the first time this op kind runs
    #: (e.g. the cuBLAS handle workspace); (tag, bytes) or None.
    library_state: tuple[str, int] | None = None
    #: Delay (us) applied to frees issued by this op (stream semantics).
    free_delay_us: int = 0


class Backend:
    """Base backend: resolves plan ops into execution behaviour."""

    name = "backend"
    #: effective throughput, FLOPs per microsecond
    flops_per_us = 100_000
    min_op_us = 2

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def resolve(self, op: OpSpec) -> ExecOp:
        raise NotImplementedError

    def _duration(self, flops: int, bytes_touched: int) -> int:
        compute = flops // self.flops_per_us
        memory = bytes_touched // (self.flops_per_us * 4)
        return max(self.min_op_us, compute + memory)


class CpuBackend(Backend):
    """Faithful interpretation of the plan: what the profiler observes.

    CPU execution materializes every op output (no fusion) and frees
    buffers eagerly the moment Python reference counts drop.  oneDNN-style
    kernels bring their own workspaces: per-thread im2col buffers for
    convolutions and matrix-packing buffers for GEMMs — generally *larger*
    than the GPU's tuned scratch, which is why a CPU-trace replay tends to
    land slightly above the GPU truth (the safe side for OOM thresholds).
    """

    name = "cpu"
    flops_per_us = 50_000  # ~50 GFLOP/s effective
    #: intra-op threads unfolding im2col buffers concurrently
    num_threads = 16
    MAX_CONV_WORKSPACE = 128 * MiB
    MAX_GEMM_WORKSPACE = 64 * MiB

    def resolve(self, op: OpSpec) -> ExecOp:
        workspace = self._cpu_workspace(op, backward=False)
        backward_workspace = self._cpu_workspace(op, backward=True)
        bytes_touched = op.output_bytes + workspace
        duration = self._duration(op.flops, bytes_touched)
        return ExecOp(
            op=op,
            materialize_output=not op.inplace,
            workspace_bytes=workspace,
            backward_workspace_bytes=backward_workspace,
            duration_us=duration,
            backward_duration_us=2 * duration,
            library_state=None,
            free_delay_us=0,
        )

    def _cpu_workspace(self, op: OpSpec, backward: bool) -> int:
        out_bytes = op.output.nbytes if op.output is not None else 0
        if op.name == "aten::convolution":
            # plan's workspace is the per-image im2col patch matrix; each
            # intra-op thread unfolds its own copy
            per_image = (
                op.backward_workspace_bytes if backward else op.workspace_bytes
            )
            return min(self.MAX_CONV_WORKSPACE, per_image * self.num_threads)
        if op.name in ("aten::addmm", "aten::mm", "aten::bmm") and out_bytes:
            # oneDNN packs A/B panels into blocked layouts before the GEMM
            return min(self.MAX_GEMM_WORKSPACE, out_bytes // 4)
        if op.name == "aten::_softmax" and out_bytes:
            return min(32 * MiB, out_bytes // 4)
        if backward and out_bytes and (
            "norm" in op.name or op.name == "aten::log_softmax"
        ):
            return min(32 * MiB, out_bytes // 2)
        if backward:
            return op.backward_workspace_bytes
        return op.workspace_bytes


class GpuBackend(Backend):
    """GPU-flavoured interpretation — the behaviour xMem must predict.

    ``seed`` controls the per-run autotuner/jitter choices, giving the
    run-to-run ground-truth variance the paper's repeated trials exhibit.
    """

    name = "gpu"
    flops_per_us = 2_000_000  # ~2 TFLOP/s effective

    #: cuBLAS allocates one persistent workspace per handle at first use.
    CUBLAS_WORKSPACE = 8 * MiB + 512 * KiB
    #: cuDNN benchmark workspace cap.
    MAX_CONV_WORKSPACE = 32 * MiB

    _MATMUL_OPS = ("aten::addmm", "aten::mm", "aten::bmm")

    def __init__(self, seed: int = 0, fuse_elementwise: bool = False):
        """``fuse_elementwise`` models a compiled (torch.compile-style)
        execution that folds elementwise kernels into their producers;
        eager mode — the paper's setting — materializes them, so the
        default is False."""
        super().__init__(seed)
        self.fuse_elementwise = fuse_elementwise
        # Algorithm choice is sticky per (op name, shape) within a run,
        # mirroring the cuDNN autotuner cache.
        self._algo_cache: dict[tuple, float] = {}

    def resolve(self, op: OpSpec) -> ExecOp:
        workspace = self._gpu_workspace(op)
        backward_workspace = self._gpu_workspace(op, backward=True)
        fused = (
            self.fuse_elementwise
            and op.fusible
            and op.output is not None
        )
        bytes_touched = (0 if fused else op.output_bytes) + workspace
        duration = self._duration(op.flops, bytes_touched)
        library_state = None
        if op.name in self._MATMUL_OPS:
            library_state = ("cublas.workspace", self.CUBLAS_WORKSPACE)
        return ExecOp(
            op=op,
            materialize_output=not op.inplace and not fused,
            workspace_bytes=workspace,
            backward_workspace_bytes=backward_workspace,
            duration_us=duration,
            backward_duration_us=2 * duration,
            library_state=library_state,
            free_delay_us=self._rng.randint(0, 3),
        )

    def _gpu_workspace(self, op: OpSpec, backward: bool = False) -> int:
        out_bytes = op.output.nbytes if op.output is not None else 0
        if op.name == "aten::convolution":
            # cuDNN algorithm choice: implicit GEMM (tiny workspace),
            # tiled FFT, or Winograd (larger workspaces); sticky per shape
            # like the autotuner cache.
            factor = self._sticky_factor(op, backward, (0.0625, 0.25, 0.5))
            workspace = int(out_bytes * factor)
            return min(self.MAX_CONV_WORKSPACE, max(256 * KiB, workspace))
        if op.name in ("aten::bmm", "aten::addmm", "aten::mm") and out_bytes:
            # split-K reduction scratch for large matmuls; the split factor
            # is an autotuner choice, sticky per shape.
            factor = self._sticky_factor(op, backward, (0.03125, 0.0625, 0.125))
            return min(32 * MiB, int(out_bytes * factor))
        if op.name == "aten::_softmax" and out_bytes:
            # warp-level reduction scratch of the fused softmax kernel
            return min(16 * MiB, out_bytes // 8)
        if backward and out_bytes and (
            "norm" in op.name or op.name == "aten::log_softmax"
        ):
            # grid-wide reduction buffers of the normalization backwards
            return min(16 * MiB, out_bytes // 4)
        return 0

    def _sticky_factor(
        self, op: OpSpec, backward: bool, choices: tuple[float, ...]
    ) -> float:
        key = (op.name, op.output.shape if op.output else (), backward)
        factor = self._algo_cache.get(key)
        if factor is None:
            factor = self._rng.choice(choices)
            self._algo_cache[key] = factor
        return factor
