"""The training engine: interprets a model plan as a training run.

One engine run executes ``model.to(device)``, then N training iterations
(forward, backward, optimizer step, gradient zeroing at the configured
position), driving every allocation and free through a
:class:`~repro.runtime.sink.MemorySink` and optionally emitting the
profiler trace through a :class:`~repro.trace.builder.TraceBuilder`.

Lifetime semantics implemented here:

* forward activations are freed when their last forward consumer has run,
  unless pinned by a save-for-backward;
* saved tensors are released as their saver's backward executes;
* activation gradients are allocated at first contribution and freed when
  the producing op's backward consumes them;
* parameter gradients persist until ``optimizer.zero_grad``;
* optimizer state is allocated inside the first ``optimizer.step`` and
  persists — why the paper profiles ≥ 2 iterations (§3.1 footnote 2);
* view/in-place/fused ops alias their input buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import SimOutOfMemoryError
from ..framework.loss import CrossEntropyLoss
from ..framework.module import Module
from ..framework.optim.base import Optimizer
from ..framework.plan import ModulePlan, OpSpec, PlanContext
from ..framework.tensor import TensorMeta, TensorRole
from ..trace.builder import TraceBuilder
from ..trace.events import (
    DATALOADER_NEXT,
    MODEL_TO_DEVICE,
    OPTIMIZER_STEP_PREFIX,
    PROFILER_STEP_PREFIX,
    ZERO_GRAD_PREFIX,
    EventCategory,
)
from .backend import Backend, ExecOp
from .clock import VirtualClock
from .loop import POS0, POS1, TrainLoopConfig
from .sink import AllocationHandle, MemorySink


@dataclass
class RunResult:
    """Outcome of one engine run."""

    completed_iterations: int
    oom: bool
    oom_error: Optional[SimOutOfMemoryError] = None
    param_bytes: int = 0
    optimizer_state_bytes: int = 0


@dataclass
class _TensorState:
    """Live state of one forward tensor during an iteration."""

    handle: Optional[AllocationHandle] = None
    fwd_pending: int = 0
    pinned_by: set[int] = field(default_factory=set)
    alive: bool = False
    is_batch: bool = False


@dataclass
class _GradState:
    """Live state of one activation-gradient buffer during backward."""

    handle: Optional[AllocationHandle] = None


class TrainingEngine:
    """Drives a training run over a planned model."""

    def __init__(
        self,
        model: Module,
        input_meta: TensorMeta,
        label_meta: TensorMeta,
        optimizer: Optimizer,
        backend: Backend,
        sink: MemorySink,
        loop: TrainLoopConfig = TrainLoopConfig(),
        tracer: Optional[TraceBuilder] = None,
        clock: Optional[VirtualClock] = None,
        loss: Optional[Module] = None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.backend = backend
        self.sink = sink
        self.loop = loop
        self.tracer = tracer
        self.clock = clock or VirtualClock()
        self.input_meta = input_meta
        self.label_meta = label_meta

        ctx = PlanContext(input_meta, root="model")
        model(ctx)
        loss_module = loss or CrossEntropyLoss()
        loss_module(ctx)
        self.plan: ModulePlan = ctx.finish()
        self.params = list(model.parameters())

        self._exec: dict[int, ExecOp] = {
            op.op_id: backend.resolve(op) for op in self.plan.ops
        }
        self._alias = self._build_alias_map()
        self._inputs = self._resolve_inputs()
        self._consumers = self._build_consumers()
        self._pins = self._build_pins()
        self._meta = self._build_meta()

        # On the profiled CPU run, buffers released by
        # ``zero_grad(set_to_none=True)`` do not return to the host
        # allocator at the call site: the profiler holds references to the
        # recorded tensors and CPython reference cycles delay collection to
        # the iteration boundary.  The GPU run frees them at the call.
        # This is the CPU/GPU lifecycle gap the Orchestrator's gradient
        # rule (§3.3 rule 4) exists to repair.
        self._defer_grad_frees = tracer is not None

        # run-long state
        self._done_iterations = 0
        self._extra_saved: dict[int, list[AllocationHandle]] = {}
        self._deferred_grad_frees: list[AllocationHandle] = []
        self._param_handles: list[AllocationHandle] = []
        self._grad_handles: dict[int, AllocationHandle] = {}  # op_id -> grads
        self._opt_state_handles: list[AllocationHandle] = []
        self._library_state: dict[str, AllocationHandle] = {}
        self._pending_frees: list[tuple[int, AllocationHandle]] = []
        self._open_module_path: list[str] = []

    # ------------------------------------------------------------------
    # plan preprocessing
    # ------------------------------------------------------------------
    def _build_alias_map(self) -> dict[int, int]:
        """Map each op to the op whose buffer it shares (views/fusion)."""
        alias: dict[int, int] = {}

        def resolve(op_id: int) -> int:
            return alias.get(op_id, op_id)

        for op in self.plan.ops:
            exec_op = self._exec[op.op_id]
            if op.output is None or not exec_op.materialize_output:
                if op.inputs:
                    alias[op.op_id] = resolve(op.inputs[0])
        return alias

    def _resolve(self, op_id: int) -> int:
        return self._alias.get(op_id, op_id)

    def _resolve_inputs(self) -> dict[int, tuple[int, ...]]:
        resolved: dict[int, tuple[int, ...]] = {}
        for op in self.plan.ops:
            seen: list[int] = []
            for producer in op.inputs:
                target = self._resolve(producer)
                if target not in seen:
                    seen.append(target)
            resolved[op.op_id] = tuple(seen)
        return resolved

    def _build_consumers(self) -> dict[int, list[int]]:
        consumers: dict[int, list[int]] = {PlanContext.INPUT_OP_ID: []}
        for op in self.plan.ops:
            consumers.setdefault(self._resolve(op.op_id), [])
            for producer in self._inputs[op.op_id]:
                consumers.setdefault(producer, []).append(op.op_id)
        return consumers

    def _build_pins(self) -> dict[int, list[int]]:
        """tensor_id -> op_ids whose backward releases a pin on it."""
        pins: dict[int, list[int]] = {}
        for op in self.plan.ops:
            if op.saves_input:
                for producer in self._inputs[op.op_id]:
                    pins.setdefault(producer, []).append(op.op_id)
            if op.saves_output:
                pins.setdefault(self._resolve(op.op_id), []).append(op.op_id)
        return pins

    def _build_meta(self) -> dict[int, TensorMeta]:
        meta: dict[int, TensorMeta] = {PlanContext.INPUT_OP_ID: self.input_meta}
        for op in self.plan.ops:
            if op.op_id not in self._alias and op.output is not None:
                meta[op.op_id] = op.output
        return meta

    # ------------------------------------------------------------------
    # tracing helpers
    # ------------------------------------------------------------------
    def _begin(self, name: str, category: EventCategory, args: dict | None = None) -> None:
        if self.tracer is not None:
            self.tracer.begin_span(name, category, self.clock.now, args)

    def _end(self) -> None:
        if self.tracer is not None:
            self.tracer.end_span(self.clock.now)

    def _enter_module_path(self, path: str) -> None:
        """Open/close python_function spans to match the op's module path."""
        if self.tracer is None:
            return
        segments = path.split(".")
        common = 0
        for ours, theirs in zip(self._open_module_path, segments):
            if ours != theirs:
                break
            common += 1
        while len(self._open_module_path) > common:
            self._open_module_path.pop()
            self._end()
        while len(self._open_module_path) < len(segments):
            segment = segments[len(self._open_module_path)]
            self._open_module_path.append(segment)
            self._begin(
                f"nn.Module: {segment}", EventCategory.PYTHON_FUNCTION
            )
            self.clock.tick()

    def _leave_all_modules(self) -> None:
        while self._open_module_path:
            self._open_module_path.pop()
            self._end()

    # ------------------------------------------------------------------
    # allocation helpers
    # ------------------------------------------------------------------
    def _alloc(self, size: int, role: TensorRole, tag: str) -> AllocationHandle:
        self._flush_due_frees()
        return self.sink.alloc(size, role, self.clock.tick(), tag=tag)

    def _free(self, handle: AllocationHandle, delay_us: int = 0) -> None:
        if delay_us > 0:
            self._pending_frees.append((self.clock.now + delay_us, handle))
            return
        self.sink.free(handle, self.clock.tick())

    def _flush_due_frees(self) -> None:
        if not self._pending_frees:
            return
        now = self.clock.now
        due = [(ts, h) for ts, h in self._pending_frees if ts <= now]
        if not due:
            return
        self._pending_frees = [
            (ts, h) for ts, h in self._pending_frees if ts > now
        ]
        for _, handle in sorted(due, key=lambda pair: pair[0]):
            self.sink.free(handle, self.clock.tick())

    def _flush_all_frees(self) -> None:
        for _, handle in sorted(self._pending_frees, key=lambda pair: pair[0]):
            self.sink.free(handle, self.clock.tick())
        self._pending_frees = []

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute the configured number of iterations; returns the result.

        An OOM raised by the sink aborts the run and is reported in the
        result rather than propagated.
        """
        try:
            self._model_to_device()
            for iteration in range(self.loop.iterations):
                self._run_iteration(iteration)
        except SimOutOfMemoryError as oom:
            self._open_module_path.clear()
            self._close_open_spans()
            return RunResult(
                completed_iterations=self._done_iterations,
                oom=True,
                oom_error=oom,
                param_bytes=sum(h.size for h in self._param_handles),
                optimizer_state_bytes=sum(
                    h.size for h in self._opt_state_handles
                ),
            )
        return RunResult(
            completed_iterations=self.loop.iterations,
            oom=False,
            param_bytes=sum(h.size for h in self._param_handles),
            optimizer_state_bytes=sum(h.size for h in self._opt_state_handles),
        )

    def _close_open_spans(self) -> None:
        if self.tracer is None:
            return
        while self.tracer._stack:  # close everything so finish() works
            self.tracer.end_span(self.clock.now)

    def _model_to_device(self) -> None:
        self._begin(MODEL_TO_DEVICE, EventCategory.USER_ANNOTATION)
        for param in self.params:
            handle = self._alloc(
                param.nbytes, TensorRole.PARAMETER, tag=param.name
            )
            self._param_handles.append(handle)
        self.clock.advance(10)
        self._end()
        self.clock.tick()

    # ------------------------------------------------------------------
    # one iteration
    # ------------------------------------------------------------------
    def _run_iteration(self, iteration: int) -> None:
        self._begin(
            f"{PROFILER_STEP_PREFIX}{iteration}", EventCategory.USER_ANNOTATION
        )
        if self.loop.zero_grad_position == POS1:
            self._zero_grad(iteration)
        tensors, batch_handles = self._load_batch()
        self._forward(tensors)
        if self.loop.zero_grad_position == POS0:
            self._zero_grad(iteration)
        grads = self._backward(tensors, iteration)
        self._optimizer_step(iteration)
        self._end_iteration_cleanup(tensors, grads, batch_handles)
        self.clock.tick()
        self._end()
        self._done_iterations = iteration + 1

    def _zero_grad(self, iteration: int) -> None:
        self._begin(
            f"{ZERO_GRAD_PREFIX}{self.optimizer.name}",
            EventCategory.USER_ANNOTATION,
        )
        self.clock.tick()
        if self.loop.set_to_none:
            for op_id in sorted(self._grad_handles):
                handle = self._grad_handles.pop(op_id)
                if self._defer_grad_frees:
                    self._deferred_grad_frees.append(handle)
                else:
                    self._free(handle)
        else:
            # in-place zeroing touches memory but neither allocates nor frees
            self.clock.advance(2)
        self.clock.advance(2)
        self._end()
        self.clock.tick()

    def _load_batch(self) -> tuple[dict[int, _TensorState], list[AllocationHandle]]:
        self._begin(DATALOADER_NEXT, EventCategory.USER_ANNOTATION)
        tensors: dict[int, _TensorState] = {}
        input_state = _TensorState(is_batch=True)
        input_state.handle = self._alloc(
            self.input_meta.nbytes, TensorRole.BATCH_DATA, tag="batch.input"
        )
        input_state.alive = True
        input_state.fwd_pending = len(
            self._consumers.get(PlanContext.INPUT_OP_ID, [])
        )
        tensors[PlanContext.INPUT_OP_ID] = input_state
        label_handle = self._alloc(
            self.label_meta.nbytes, TensorRole.BATCH_DATA, tag="batch.labels"
        )
        self.clock.advance(5)
        self._end()
        self.clock.tick()
        return tensors, [label_handle]

    # ------------------------------------------------------------------
    # forward
    # ------------------------------------------------------------------
    def _forward(self, tensors: dict[int, _TensorState]) -> None:
        for op in self.plan.ops:
            exec_op = self._exec[op.op_id]
            self._enter_module_path(op.module_path)
            self._begin(
                op.name,
                EventCategory.CPU_OP,
                args={"Sequence number": op.op_id},
            )
            workspace = None
            if exec_op.library_state is not None:
                tag, size = exec_op.library_state
                if tag not in self._library_state:
                    self._library_state[tag] = self._alloc(
                        size, TensorRole.TEMPORARY, tag=tag
                    )
            if exec_op.workspace_bytes > 0:
                workspace = self._alloc(
                    exec_op.workspace_bytes,
                    TensorRole.TEMPORARY,
                    tag=f"{op.name}.workspace",
                )
            target = self._resolve(op.op_id)
            if target == op.op_id and op.output is not None:
                state = _TensorState()
                state.handle = self._alloc(
                    op.output.nbytes, TensorRole.ACTIVATION, tag=op.module_path
                )
                state.alive = True
                state.fwd_pending = len(self._consumers.get(op.op_id, []))
                state.pinned_by = set(self._pins.get(op.op_id, []))
                tensors[op.op_id] = state
            # extra saved tensors (masks, indices, stats) are freed when
            # this op's backward runs
            for extra_index, extra in enumerate(op.extra_saved):
                handle = self._alloc(
                    extra.nbytes,
                    TensorRole.SAVED,
                    tag=f"{op.module_path}.saved{extra_index}",
                )
                self._extra_saved.setdefault(op.op_id, []).append(handle)
            self.clock.advance(exec_op.duration_us)
            if workspace is not None:
                self._free(workspace, delay_us=exec_op.free_delay_us)
            # release inputs whose last forward consumer has now run
            for producer in self._inputs[op.op_id]:
                state = tensors.get(producer)
                if state is None:
                    continue
                state.fwd_pending -= 1
                self._maybe_free_tensor(tensors, producer)
            self._end()
            self.clock.tick()
        self._leave_all_modules()

    def _maybe_free_tensor(
        self, tensors: dict[int, _TensorState], tensor_id: int
    ) -> None:
        state = tensors.get(tensor_id)
        if state is None or not state.alive:
            return
        if state.fwd_pending > 0 or state.pinned_by:
            return
        if state.is_batch:
            # batch data lives until the iteration boundary (dataloader
            # replaces it), not until its last consumer
            return
        assert state.handle is not None
        self._free(state.handle)
        state.alive = False
        state.handle = None

    # ------------------------------------------------------------------
    # backward
    # ------------------------------------------------------------------
    def _backward(
        self, tensors: dict[int, _TensorState], iteration: int
    ) -> dict[int, _GradState]:
        self._begin("autograd::engine", EventCategory.PYTHON_FUNCTION)
        grads: dict[int, _GradState] = {}
        # seed gradient for the loss output
        output_id = self._resolve(self.plan.output_op_id)
        seed = _GradState()
        seed.handle = self._alloc(
            self._meta[output_id].nbytes
            if output_id in self._meta
            else 4,
            TensorRole.TEMPORARY,
            tag="grad.seed",
        )
        grads[output_id] = seed
        for op in reversed(self.plan.ops):
            if op.kind == "view":
                continue
            exec_op = self._exec[op.op_id]
            self._begin(
                f"autograd::{op.name}_backward",
                EventCategory.CPU_OP,
                args={"Sequence number": op.op_id, "Backward": True},
            )
            workspace = None
            if exec_op.backward_workspace_bytes > 0:
                workspace = self._alloc(
                    exec_op.backward_workspace_bytes,
                    TensorRole.TEMPORARY,
                    tag=f"{op.name}.bw_workspace",
                )
            # gradient buffers for the op's inputs (first contribution wins)
            for producer in self._inputs[op.op_id]:
                if producer == PlanContext.INPUT_OP_ID:
                    continue  # batch data requires no gradient
                if producer not in self._meta:
                    continue
                grad_state = grads.get(producer)
                if grad_state is None:
                    grad_state = _GradState()
                    grad_state.handle = self._alloc(
                        self._meta[producer].nbytes,
                        TensorRole.TEMPORARY,
                        tag=f"grad.activation.{producer}",
                    )
                    grads[producer] = grad_state
            # parameter gradients persist until zero_grad
            if op.param_bytes > 0 and op.op_id not in self._grad_handles:
                if self.loop.set_to_none or iteration == 0:
                    self._grad_handles[op.op_id] = self._alloc(
                        op.param_bytes,
                        TensorRole.GRADIENT,
                        tag=f"grad.param.{op.module_path}",
                    )
            self.clock.advance(exec_op.backward_duration_us)
            if workspace is not None:
                self._free(workspace, delay_us=exec_op.free_delay_us)
            # the gradient of this op's output is fully consumed once the
            # buffer's *producer* (the non-aliased op) has run its backward
            target = self._resolve(op.op_id)
            if target == op.op_id:
                grad_state = grads.get(target)
                if grad_state is not None and grad_state.handle is not None:
                    self._free(
                        grad_state.handle, delay_us=exec_op.free_delay_us
                    )
                    grad_state.handle = None
            # release save-for-backward pins held by this op
            self._release_pins(tensors, op)
            self._end()
            self.clock.tick()
        self._end()  # autograd::engine
        self.clock.tick()
        return grads

    def _release_pins(self, tensors: dict[int, _TensorState], op: OpSpec) -> None:
        for handle in self._extra_saved.pop(op.op_id, []):
            self._free(handle)
        pinned: list[int] = []
        if op.saves_input:
            pinned.extend(self._inputs[op.op_id])
        if op.saves_output:
            pinned.append(self._resolve(op.op_id))
        for tensor_id in pinned:
            state = tensors.get(tensor_id)
            if state is None:
                continue
            state.pinned_by.discard(op.op_id)
            self._maybe_free_tensor(tensors, tensor_id)

    # ------------------------------------------------------------------
    # optimizer
    # ------------------------------------------------------------------
    def _optimizer_step(self, iteration: int) -> None:
        self._begin(
            f"{OPTIMIZER_STEP_PREFIX}{self.optimizer.name}",
            EventCategory.USER_ANNOTATION,
        )
        self.clock.tick()
        if iteration == 0:
            for param in self.params:
                for state_name, state_meta in self.optimizer.state_tensors(
                    param.meta
                ):
                    handle = self._alloc(
                        state_meta.nbytes,
                        TensorRole.OPTIMIZER_STATE,
                        tag=f"opt.{param.name}.{state_name}",
                    )
                    self._opt_state_handles.append(handle)
        for param in self.params:
            workspace_bytes = self.optimizer.step_workspace_bytes(param.meta)
            if workspace_bytes > 0:
                workspace = self._alloc(
                    workspace_bytes,
                    TensorRole.TEMPORARY,
                    tag=f"opt.step.{param.name}",
                )
                self.clock.advance(1)
                self._free(workspace)
        self.clock.advance(5)
        self._end()
        self.clock.tick()

    # ------------------------------------------------------------------
    # iteration cleanup
    # ------------------------------------------------------------------
    def _end_iteration_cleanup(
        self,
        tensors: dict[int, _TensorState],
        grads: dict[int, _GradState],
        batch_handles: list[AllocationHandle],
    ) -> None:
        self._flush_all_frees()
        for handle in self._deferred_grad_frees:
            self._free(handle)
        self._deferred_grad_frees.clear()
        for state in tensors.values():
            if state.alive and state.handle is not None:
                self._free(state.handle)
                state.alive = False
        for grad_state in grads.values():
            if grad_state.handle is not None:
                self._free(grad_state.handle)
                grad_state.handle = None
        for handle in batch_handles:
            self._free(handle)
        self._extra_saved.clear()
