"""Simulated GPU ground truth: what actually happens when the job runs.

The paper's validation executes every configuration on a real GPU and
records the NVML-sampled peak (round 1 with full device memory; round 2
with the estimate as the memory cap).  This module is that testbed for the
simulated device: the same plan is executed with the GPU backend's
behaviour (workspaces, fusion, deferred frees, per-run jitter), flowing
through the real two-level caching allocator, under a configurable
capacity limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..allocator.caching import CachingAllocator
from ..allocator.device import DeviceAllocator
from ..allocator.stats import TimelineRecorder
from ..framework.module import Module
from ..framework.optim import make_optimizer
from ..framework.optim.base import Optimizer
from ..models.registry import ModelSpec, get_model_spec
from .backend import GpuBackend
from .engine import TrainingEngine
from .loop import TrainLoopConfig
from .nvml import DEFAULT_SAMPLE_INTERVAL_US, sampled_peak
from .sink import AllocatorSink


@dataclass(frozen=True)
class GroundTruthResult:
    """Outcome of one simulated GPU training run."""

    oom: bool
    completed_iterations: int
    #: instantaneous peak of reserved (segment) bytes — the true peak
    peak_reserved_bytes: int
    #: peak as an NVML 1 ms poller would have measured it (the paper's
    #: ground truth M^peak)
    nvml_peak_bytes: int
    peak_allocated_bytes: int
    timeline: TimelineRecorder
    param_bytes: int = 0
    optimizer_state_bytes: int = 0

    @property
    def measured_peak(self) -> int:
        """The paper's ground-truth peak (NVML-sampled)."""
        return self.nvml_peak_bytes


def run_gpu_ground_truth(
    model_name: str | ModelSpec,
    batch_size: int,
    optimizer: str | Optimizer = "adam",
    loop: Optional[TrainLoopConfig] = None,
    capacity_bytes: int = 12 * 1024**3,
    seed: int = 0,
    iterations: int = 2,
    model: Optional[Module] = None,
    sample_interval_us: int = DEFAULT_SAMPLE_INTERVAL_US,
) -> GroundTruthResult:
    """Train ``iterations`` iterations on the simulated GPU.

    ``capacity_bytes`` is the memory available to the *job* (device
    capacity minus pre-existing usage and framework overhead — the
    M_max - M_init - M_fm budget of the paper's validation rounds).
    ``seed`` selects the run's autotuner/jitter realization, giving
    repeated trials realistic variance.
    """
    spec = (
        model_name
        if isinstance(model_name, ModelSpec)
        else get_model_spec(model_name)
    )
    if isinstance(optimizer, str):
        optimizer = make_optimizer(optimizer)
    loop = loop or TrainLoopConfig(iterations=iterations)
    if loop.iterations != iterations:
        loop = TrainLoopConfig(
            iterations=iterations,
            zero_grad_position=loop.zero_grad_position,
            set_to_none=loop.set_to_none,
        )
    built_model = model if model is not None else spec.build()
    device = DeviceAllocator(capacity=capacity_bytes)
    allocator = CachingAllocator(device)
    sink = AllocatorSink(allocator)
    engine = TrainingEngine(
        model=built_model,
        input_meta=spec.input_meta(batch_size),
        label_meta=spec.label_meta(batch_size),
        optimizer=optimizer,
        backend=GpuBackend(seed=seed),
        sink=sink,
        loop=loop,
        tracer=None,
    )
    result = engine.run()
    timeline = allocator.timeline or TimelineRecorder()
    return GroundTruthResult(
        oom=result.oom,
        completed_iterations=result.completed_iterations,
        peak_reserved_bytes=allocator.peak_reserved_bytes,
        nvml_peak_bytes=sampled_peak(timeline, interval_us=sample_interval_us),
        peak_allocated_bytes=allocator.peak_allocated_bytes,
        timeline=timeline,
        param_bytes=result.param_bytes,
        optimizer_state_bytes=result.optimizer_state_bytes,
    )
