"""Virtual microsecond clock driving all trace timestamps.

Everything in the runtime is measured in *virtual* microseconds so runs are
deterministic and traces are reproducible byte-for-byte under a fixed seed.
"""

from __future__ import annotations


class VirtualClock:
    """Monotonic microsecond counter."""

    def __init__(self, start_us: int = 0):
        self._now = start_us

    @property
    def now(self) -> int:
        return self._now

    def advance(self, delta_us: int) -> int:
        """Move time forward; returns the new timestamp."""
        if delta_us < 0:
            raise ValueError(f"cannot move time backwards ({delta_us})")
        self._now += delta_us
        return self._now

    def tick(self) -> int:
        """Advance by the smallest unit — separates ordered events."""
        return self.advance(1)
