"""CPU profiling entry point: run a few iterations, return the trace.

This substitutes for ``torch.profiler.profile(...)`` around the first
iterations of the user's training script (paper §3.1): the job runs on the
CPU backend, the profiler records operator spans, loop annotations, and
memory instant events, and — crucially — the job never needs to proceed
past those iterations.
"""

from __future__ import annotations

from typing import Optional

from ..framework.module import Module
from ..framework.optim import make_optimizer
from ..framework.optim.base import Optimizer
from ..models.registry import ModelSpec, get_model_spec
from ..trace.builder import TraceBuilder
from ..trace.reader import Trace
from .backend import CpuBackend
from .engine import TrainingEngine
from .loop import TrainLoopConfig
from .sink import CpuProfilingSink

#: Default number of profiled iterations; persistent state is allocated in
#: iteration 1, memory stabilizes by iterations 2-3 (§3.1 footnote 2).
DEFAULT_PROFILE_ITERATIONS = 3


def profile_on_cpu(
    model_name: str | ModelSpec,
    batch_size: int,
    optimizer: str | Optimizer = "adam",
    loop: Optional[TrainLoopConfig] = None,
    iterations: int = DEFAULT_PROFILE_ITERATIONS,
    model: Optional[Module] = None,
) -> Trace:
    """Profile ``iterations`` training iterations of a workload on the CPU.

    Returns a :class:`~repro.trace.reader.Trace` with the four event
    categories the Analyzer consumes.  ``model`` overrides the registry
    builder (useful for custom architectures).
    """
    spec = (
        model_name
        if isinstance(model_name, ModelSpec)
        else get_model_spec(model_name)
    )
    if isinstance(optimizer, str):
        optimizer = make_optimizer(optimizer)
    loop = loop or TrainLoopConfig(iterations=iterations)
    if loop.iterations != iterations:
        loop = TrainLoopConfig(
            iterations=iterations,
            zero_grad_position=loop.zero_grad_position,
            set_to_none=loop.set_to_none,
        )
    built_model = model if model is not None else spec.build()
    builder = TraceBuilder(
        metadata={
            "model": spec.name,
            "family": spec.family,
            "batch_size": batch_size,
            "optimizer": optimizer.name,
            "iterations": iterations,
            "zero_grad_position": loop.zero_grad_position,
            "set_to_none": loop.set_to_none,
            "backend": "cpu",
        }
    )
    sink = CpuProfilingSink(builder)
    engine = TrainingEngine(
        model=built_model,
        input_meta=spec.input_meta(batch_size),
        label_meta=spec.label_meta(batch_size),
        optimizer=optimizer,
        backend=CpuBackend(),
        sink=sink,
        loop=loop,
        tracer=builder,
    )
    result = engine.run()
    if result.oom:  # pragma: no cover - the CPU sink cannot OOM
        raise RuntimeError("CPU profiling run reported OOM")
    return builder.finish()
