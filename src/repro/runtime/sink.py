"""Memory sinks: where the training engine's allocations land.

The engine is backend- and destination-agnostic; a sink receives each
allocation/free with its role and timestamp:

* :class:`CpuProfilingSink` — models host ``malloc`` (address reuse, no
  caching) and records ``cpu_instant_event`` records into a trace builder:
  this is what the PyTorch profiler sees during the CPU profiling run.
* :class:`AllocatorSink` — routes requests through the two-level
  :class:`~repro.allocator.caching.CachingAllocator`: this is the simulated
  GPU execution used for ground truth.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..allocator.caching import CachingAllocator
from ..errors import InvalidFreeError
from ..framework.tensor import TensorRole
from ..trace.builder import TraceBuilder


@dataclass(frozen=True)
class AllocationHandle:
    """Opaque ticket returned by a sink for every allocation."""

    handle_id: int
    size: int
    role: TensorRole
    tag: str


class MemorySink:
    """Interface the engine drives."""

    def alloc(
        self, size: int, role: TensorRole, ts: int, tag: str = ""
    ) -> AllocationHandle:
        raise NotImplementedError

    def free(self, handle: AllocationHandle, ts: int) -> None:
        raise NotImplementedError

    @property
    def live_bytes(self) -> int:
        raise NotImplementedError


class CpuProfilingSink(MemorySink):
    """Host-malloc model + profiler memory events.

    Freed addresses are reused LIFO (like a size-classed heap under a
    steady workload), so the trace exercises the address-reuse handling the
    paper's Analyzer must implement (§3.2).
    """

    def __init__(self, builder: TraceBuilder):
        self._builder = builder
        self._ids = itertools.count(1)
        self._next_addr = 0x7F00_0000_0000
        self._free_addrs: list[int] = []
        self._live: dict[int, int] = {}  # handle_id -> addr
        self._live_bytes = 0
        self.peak_bytes = 0

    def alloc(
        self, size: int, role: TensorRole, ts: int, tag: str = ""
    ) -> AllocationHandle:
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if self._free_addrs:
            addr = self._free_addrs.pop()
        else:
            addr = self._next_addr
            self._next_addr += (size + 63) // 64 * 64 + 64
        handle = AllocationHandle(next(self._ids), size, role, tag)
        self._live[handle.handle_id] = addr
        self._live_bytes += size
        self.peak_bytes = max(self.peak_bytes, self._live_bytes)
        self._builder.record_alloc(ts, addr, size)
        return handle

    def free(self, handle: AllocationHandle, ts: int) -> None:
        addr = self._live.pop(handle.handle_id, None)
        if addr is None:
            raise InvalidFreeError(f"double free of handle {handle.handle_id}")
        self._live_bytes -= handle.size
        self._free_addrs.append(addr)
        self._builder.record_free(ts, addr, handle.size)

    @property
    def live_bytes(self) -> int:
        return self._live_bytes


class AllocatorSink(MemorySink):
    """Simulated GPU execution: requests flow through the caching allocator.

    :class:`~repro.errors.SimOutOfMemoryError` raised by the allocator
    propagates to the engine — a training OOM.
    """

    def __init__(self, allocator: CachingAllocator):
        self.allocator = allocator
        self._ids = itertools.count(1)
        self._live_bytes = 0
        #: per-role live bytes, useful for tests and reports
        self.role_bytes: dict[TensorRole, int] = {role: 0 for role in TensorRole}

    def alloc(
        self, size: int, role: TensorRole, ts: int, tag: str = ""
    ) -> AllocationHandle:
        handle = AllocationHandle(next(self._ids), size, role, tag)
        self.allocator.malloc(size, ts=ts, owner=handle.handle_id)
        self._live_bytes += size
        self.role_bytes[role] += size
        return handle

    def free(self, handle: AllocationHandle, ts: int) -> None:
        self.allocator.free_owner(handle.handle_id, ts=ts)
        self._live_bytes -= handle.size
        self.role_bytes[handle.role] -= handle.size

    @property
    def live_bytes(self) -> int:
        return self._live_bytes


class NullSink(MemorySink):
    """Counts bytes only — used by tests and quick size probes."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._live_bytes = 0
        self.peak_bytes = 0

    def alloc(
        self, size: int, role: TensorRole, ts: int, tag: str = ""
    ) -> AllocationHandle:
        handle = AllocationHandle(next(self._ids), size, role, tag)
        self._live_bytes += size
        self.peak_bytes = max(self.peak_bytes, self._live_bytes)
        return handle

    def free(self, handle: AllocationHandle, ts: int) -> None:
        self._live_bytes -= handle.size

    @property
    def live_bytes(self) -> int:
        return self._live_bytes
