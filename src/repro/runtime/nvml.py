"""NVML-style sampled peak measurement.

The paper's ground truth is "total allocated GPU memory sampled at 1 ms
intervals via NVML; the maximum across samples is the peak" (§4.1.1).
Sampling at a fixed interval can *miss* short-lived spikes between samples
— a property of the real measurement this module reproduces: the sampled
peak is a lower bound on the instantaneous peak.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..allocator.stats import TimelineRecorder

#: The paper samples NVML once per millisecond; timestamps are microseconds.
DEFAULT_SAMPLE_INTERVAL_US = 1000


@dataclass(frozen=True)
class NvmlSample:
    ts: int
    used_bytes: int


def sample_timeline(
    timeline: TimelineRecorder,
    interval_us: int = DEFAULT_SAMPLE_INTERVAL_US,
    base_bytes: int = 0,
) -> list[NvmlSample]:
    """Quantize an allocator timeline onto a fixed sampling grid.

    Each sample reports the reserved-bytes value in effect at the sample
    instant (the last change at or before it), plus ``base_bytes`` for
    memory outside the job (context, other processes).
    """
    if interval_us <= 0:
        raise ValueError("sampling interval must be positive")
    points = timeline.points
    if not points:
        return []
    samples: list[NvmlSample] = []
    end_ts = points[-1].ts
    index = 0
    current = 0
    ts = points[0].ts
    # align the grid to t=0 like a wall-clock sampler would
    ts = (ts // interval_us) * interval_us
    while ts <= end_ts + interval_us:
        while index < len(points) and points[index].ts <= ts:
            current = points[index].reserved_bytes
            index += 1
        samples.append(NvmlSample(ts=ts, used_bytes=current + base_bytes))
        ts += interval_us
    return samples


def sampled_peak(
    timeline: TimelineRecorder,
    interval_us: int = DEFAULT_SAMPLE_INTERVAL_US,
    base_bytes: int = 0,
) -> int:
    """Peak used-bytes as an NVML poller would have observed it."""
    samples = sample_timeline(timeline, interval_us, base_bytes)
    if not samples:
        return base_bytes
    # The final state always lands on the grid (training outlives the last
    # event), so include the true final value as the poller would see it.
    return max(s.used_bytes for s in samples)
