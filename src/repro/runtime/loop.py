"""Training-loop configuration.

The paper's Figure 1 shows that the *placement* of
``optimizer.zero_grad()`` alone changes the segment footprint:

* ``POS0`` — called after the forward pass, right before ``backward()``:
  last iteration's gradients stay alive through the whole forward pass.
* ``POS1`` — called at the start of the iteration: gradients are released
  before the forward pass allocates activations.

``set_to_none=True`` (the modern PyTorch default) makes ``zero_grad``
actually *free* gradient buffers; with ``False`` the buffers are zeroed in
place and placement no longer affects memory.
"""

from __future__ import annotations

from dataclasses import dataclass

POS0 = "pos0"
POS1 = "pos1"


@dataclass(frozen=True)
class TrainLoopConfig:
    """Shape of the training loop the engine executes."""

    iterations: int = 3
    zero_grad_position: str = POS1
    set_to_none: bool = True

    def __post_init__(self) -> None:
        if self.zero_grad_position not in (POS0, POS1):
            raise ValueError(
                f"zero_grad_position must be {POS0!r} or {POS1!r}, "
                f"got {self.zero_grad_position!r}"
            )
        if self.iterations < 1:
            raise ValueError("need at least one iteration")
