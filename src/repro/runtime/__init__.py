"""Training runtime: executes model plans on CPU (profiled) or GPU (truth)."""

from .backend import Backend, CpuBackend, ExecOp, GpuBackend
from .clock import VirtualClock
from .engine import RunResult, TrainingEngine
from .ground_truth import GroundTruthResult, run_gpu_ground_truth
from .loop import POS0, POS1, TrainLoopConfig
from .nvml import (
    DEFAULT_SAMPLE_INTERVAL_US,
    NvmlSample,
    sample_timeline,
    sampled_peak,
)
from .profiler import DEFAULT_PROFILE_ITERATIONS, profile_on_cpu
from .sink import (
    AllocationHandle,
    AllocatorSink,
    CpuProfilingSink,
    MemorySink,
    NullSink,
)

__all__ = [
    "AllocationHandle",
    "AllocatorSink",
    "Backend",
    "CpuBackend",
    "CpuProfilingSink",
    "DEFAULT_PROFILE_ITERATIONS",
    "DEFAULT_SAMPLE_INTERVAL_US",
    "ExecOp",
    "GpuBackend",
    "GroundTruthResult",
    "MemorySink",
    "NullSink",
    "NvmlSample",
    "POS0",
    "POS1",
    "RunResult",
    "TrainLoopConfig",
    "TrainingEngine",
    "VirtualClock",
    "profile_on_cpu",
    "run_gpu_ground_truth",
    "sample_timeline",
    "sampled_peak",
]
