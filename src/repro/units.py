"""Byte-size units and formatting helpers used across the code base.

All memory sizes in this project are plain ``int`` byte counts.  These
helpers exist so that literals in model definitions, allocator constants,
and tests read naturally (``2 * MiB``) and so that reports render sizes
the way the paper does (GB curves, MB tables).
"""

from __future__ import annotations

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

# Decimal units, used by NVML-style reporting (the paper reports GB).
KB = 1000
MB = 1000 * KB
GB = 1000 * MB

_BINARY_SUFFIXES = (
    (GiB, "GiB"),
    (MiB, "MiB"),
    (KiB, "KiB"),
)


def format_bytes(num_bytes: int, precision: int = 2) -> str:
    """Render a byte count with a binary suffix, e.g. ``format_bytes(3 * MiB)``
    -> ``"3.00 MiB"``.  Negative sizes (used for deallocation deltas in
    traces) keep their sign.
    """
    sign = "-" if num_bytes < 0 else ""
    magnitude = abs(num_bytes)
    for factor, suffix in _BINARY_SUFFIXES:
        if magnitude >= factor:
            return f"{sign}{magnitude / factor:.{precision}f} {suffix}"
    return f"{sign}{magnitude} B"


def format_gb(num_bytes: int, precision: int = 2) -> str:
    """Render a byte count in decimal gigabytes, matching the paper's units."""
    return f"{num_bytes / GB:.{precision}f} GB"


def parse_size(text: str) -> int:
    """Parse a human-readable size such as ``"12GiB"``, ``"8 GB"`` or
    ``"512"`` (plain bytes) into an integer byte count.

    Raises ``ValueError`` for unknown suffixes or malformed numbers.
    """
    cleaned = text.strip()
    suffixes = {
        "kib": KiB,
        "mib": MiB,
        "gib": GiB,
        "kb": KB,
        "mb": MB,
        "gb": GB,
        "b": 1,
        "": 1,
    }
    index = len(cleaned)
    while index > 0 and not cleaned[index - 1].isdigit():
        index -= 1
    number_part = cleaned[:index].strip()
    suffix_part = cleaned[index:].strip().lower()
    if suffix_part not in suffixes:
        raise ValueError(f"unknown size suffix {suffix_part!r} in {text!r}")
    if not number_part:
        raise ValueError(f"no numeric part in size {text!r}")
    return int(float(number_part) * suffixes[suffix_part])


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return ((value + alignment - 1) // alignment) * alignment
