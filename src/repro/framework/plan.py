"""Operator planning IR.

A module does not "run" — it *plans*: it appends :class:`OpSpec` records to
a :class:`PlanContext`, declaring for each primitive operator what the
training runtime must allocate (output, workspaces), what is saved for the
backward pass, which earlier ops feed it (a DAG, so residual connections
keep their producers alive), and which parameters receive gradients.

The runtime (``repro.runtime.engine``) interprets a completed
:class:`ModulePlan` twice per iteration — forward and reverse — generating
the allocation/deallocation event stream on either backend.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from .tensor import TensorMeta


@dataclass
class OpSpec:
    """One primitive operator in a model's execution plan."""

    op_id: int
    name: str  # e.g. "aten::convolution"
    module_path: str  # e.g. "model.features.3.conv"
    output: Optional[TensorMeta]  # None for in-place / no-output ops
    inputs: tuple[int, ...] = ()  # op_ids of producers feeding this op
    saves_input: bool = False  # inputs kept for backward
    saves_output: bool = False  # output kept for backward
    extra_saved: tuple[TensorMeta, ...] = ()  # e.g. max-pool indices, masks
    workspace_bytes: int = 0  # forward scratch, freed at op end
    backward_workspace_bytes: int = 0
    param_bytes: int = 0  # parameter bytes receiving gradients here
    flops: int = 0  # drives the op-duration cost model
    fusible: bool = False  # elementwise; GPU backends fuse it away
    inplace: bool = False  # reuses its input buffer (no output alloc)
    kind: str = "compute"  # compute | view | loss

    def __post_init__(self) -> None:
        if self.inplace and self.output is not None and not self.inputs:
            raise ValueError(f"in-place op {self.name} needs an input")
        if self.workspace_bytes < 0 or self.backward_workspace_bytes < 0:
            raise ValueError(f"negative workspace on {self.name}")

    @property
    def output_bytes(self) -> int:
        if self.output is None or self.inplace:
            return 0
        return self.output.nbytes


@dataclass
class ModulePlan:
    """A completed forward plan: the op DAG plus entry/exit tensor ids."""

    ops: list[OpSpec]
    input_op_ids: tuple[int, ...]
    output_op_id: int
    input_meta: TensorMeta
    output_meta: TensorMeta

    def consumers(self) -> dict[int, list[int]]:
        """Map producer op_id -> list of consumer op_ids."""
        table: dict[int, list[int]] = {op.op_id: [] for op in self.ops}
        for op_id in self.input_op_ids:
            table.setdefault(op_id, [])
        for op in self.ops:
            for producer in op.inputs:
                table.setdefault(producer, []).append(op.op_id)
        return table

    def op_by_id(self, op_id: int) -> OpSpec:
        return self.ops[op_id - self._base()]

    def _base(self) -> int:
        return self.ops[0].op_id if self.ops else 0

    def total_param_bytes(self) -> int:
        return sum(op.param_bytes for op in self.ops)

    def total_output_bytes(self) -> int:
        return sum(op.output_bytes for op in self.ops)


class PlanContext:
    """Collects :class:`OpSpec` records while modules plan themselves.

    Tracks the "current" tensor (output of the last op) so sequential
    modules chain automatically, and a module-path stack so every op knows
    which layer produced it — the attribution target of the Analyzer.
    """

    #: op_id reserved for the batch-input pseudo-producer.
    INPUT_OP_ID = 0

    def __init__(self, input_meta: TensorMeta, root: str = "model"):
        self.ops: list[OpSpec] = []
        self._path: list[str] = [root]
        self._next_id = self.INPUT_OP_ID + 1
        self._current_id = self.INPUT_OP_ID
        self._current_meta = input_meta
        self._input_meta = input_meta

    # ------------------------------------------------------------------
    # module scoping
    # ------------------------------------------------------------------
    @contextmanager
    def module(self, name: str) -> Iterator[None]:
        self._path.append(name)
        try:
            yield
        finally:
            self._path.pop()

    @property
    def module_path(self) -> str:
        return ".".join(self._path)

    # ------------------------------------------------------------------
    # current-tensor tracking
    # ------------------------------------------------------------------
    @property
    def current_id(self) -> int:
        return self._current_id

    @property
    def current_meta(self) -> TensorMeta:
        return self._current_meta

    def set_current(self, op_id: int, meta: TensorMeta) -> None:
        """Rewind the current tensor (used by branching modules)."""
        self._current_id = op_id
        self._current_meta = meta

    # ------------------------------------------------------------------
    # op emission
    # ------------------------------------------------------------------
    def add(
        self,
        name: str,
        output: Optional[TensorMeta],
        inputs: Optional[tuple[int, ...]] = None,
        saves_input: bool = False,
        saves_output: bool = False,
        extra_saved: tuple[TensorMeta, ...] = (),
        workspace_bytes: int = 0,
        backward_workspace_bytes: int = 0,
        param_bytes: int = 0,
        flops: int = 0,
        fusible: bool = False,
        inplace: bool = False,
        kind: str = "compute",
    ) -> int:
        """Append an op consuming the current tensor (or explicit inputs);
        returns its op_id and advances the current tensor to its output."""
        if inputs is None:
            inputs = (self._current_id,)
        op = OpSpec(
            op_id=self._next_id,
            name=name,
            module_path=self.module_path,
            output=output,
            inputs=inputs,
            saves_input=saves_input,
            saves_output=saves_output,
            extra_saved=extra_saved,
            workspace_bytes=workspace_bytes,
            backward_workspace_bytes=backward_workspace_bytes,
            param_bytes=param_bytes,
            flops=flops,
            fusible=fusible,
            inplace=inplace,
            kind=kind,
        )
        self.ops.append(op)
        self._next_id += 1
        self._current_id = op.op_id
        if output is not None:
            self._current_meta = output
        return op.op_id

    def finish(self) -> ModulePlan:
        if not self.ops:
            raise ValueError("plan contains no ops")
        return ModulePlan(
            ops=self.ops,
            input_op_ids=(self.INPUT_OP_ID,),
            output_op_id=self._current_id,
            input_meta=self._input_meta,
            output_meta=self._current_meta,
        )
