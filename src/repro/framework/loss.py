"""Loss heads.

A loss module closes the plan: it consumes the model output (logits) and
produces a scalar.  ``log_softmax`` saves its full-size output, so the
logits-sized buffer survives into the backward pass — significant for
large-vocabulary language models where (B·T, V) dwarfs the hidden states.
"""

from __future__ import annotations

from typing import Optional

from .module import Module
from .plan import PlanContext
from .tensor import TensorMeta


class CrossEntropyLoss(Module):
    """log_softmax + NLL over the trailing class/vocab dimension."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name or "CrossEntropyLoss")

    def plan(self, ctx: PlanContext) -> None:
        logits = ctx.current_meta
        rows = logits.numel // logits.shape[-1]
        ctx.add(
            "aten::log_softmax",
            output=logits,
            saves_output=True,
            flops=5 * logits.numel,
        )
        ctx.add(
            "aten::nll_loss",
            output=TensorMeta((1,)),
            flops=rows,
            kind="loss",
        )


class MSELoss(Module):
    """Mean-squared-error head (used by synthetic regression examples)."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name or "MSELoss")

    def plan(self, ctx: PlanContext) -> None:
        predictions = ctx.current_meta
        ctx.add(
            "aten::mse_loss",
            output=TensorMeta((1,)),
            saves_input=True,
            flops=3 * predictions.numel,
            kind="loss",
        )
