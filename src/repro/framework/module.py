"""Module base class and containers of the symbolic framework."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from .plan import ModulePlan, PlanContext
from .tensor import TensorMeta


@dataclass(frozen=True)
class Parameter:
    """A named parameter tensor belonging to a module."""

    name: str  # fully qualified at collection time
    meta: TensorMeta

    @property
    def nbytes(self) -> int:
        return self.meta.nbytes

    @property
    def numel(self) -> int:
        return self.meta.numel


class Module:
    """Base class: a named node that registers parameters and children and
    contributes ops to a :class:`PlanContext` via :meth:`plan`."""

    def __init__(self, name: Optional[str] = None):
        self.name = name or type(self).__name__
        self._params: list[Parameter] = []
        self._children: list[Module] = []

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_param(self, name: str, meta: TensorMeta) -> Parameter:
        param = Parameter(name=name, meta=meta)
        self._params.append(param)
        return param

    def register_child(self, child: "Module") -> "Module":
        self._children.append(child)
        return child

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def parameters(self, prefix: str = "") -> Iterator[Parameter]:
        """All parameters of this module and its children, qualified names."""
        base = f"{prefix}.{self.name}" if prefix else self.name
        for param in self._params:
            yield Parameter(name=f"{base}.{param.name}", meta=param.meta)
        for child in self._children:
            yield from child.parameters(prefix=base)

    def num_parameters(self) -> int:
        return sum(p.numel for p in self.parameters())

    def parameter_bytes(self) -> int:
        return sum(p.nbytes for p in self.parameters())

    def own_param_bytes(self) -> int:
        """Bytes of parameters registered directly on this module."""
        return sum(p.nbytes for p in self._params)

    def children(self) -> list["Module"]:
        return list(self._children)

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, ctx: PlanContext) -> None:
        """Append this module's ops to ``ctx``; subclasses implement."""
        raise NotImplementedError(f"{type(self).__name__}.plan")

    def __call__(self, ctx: PlanContext) -> None:
        with ctx.module(self.name):
            self.plan(ctx)

    def build_plan(self, input_meta: TensorMeta, root: str = "model") -> ModulePlan:
        """Plan a full forward pass starting from ``input_meta``."""
        ctx = PlanContext(input_meta, root=root)
        self(ctx)
        return ctx.finish()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class Sequential(Module):
    """Chains children; each consumes the previous child's output."""

    def __init__(self, *modules: Module, name: Optional[str] = None):
        super().__init__(name=name or "Sequential")
        for index, module in enumerate(modules):
            module.name = f"{index}.{module.name}"
            self.register_child(module)

    def plan(self, ctx: PlanContext) -> None:
        for child in self.children():
            child(ctx)


class Residual(Module):
    """``y = x + body(x)`` — the skip connection of ResNet/Transformer blocks.

    The entry tensor is an extra input of the final add, so the runtime
    keeps it alive across the body: the allocation pattern that makes
    residual networks' memory non-linear in depth.
    """

    def __init__(self, body: Module, name: Optional[str] = None):
        super().__init__(name=name or "Residual")
        self.body = self.register_child(body)

    def plan(self, ctx: PlanContext) -> None:
        entry_id = ctx.current_id
        entry_meta = ctx.current_meta
        self.body(ctx)
        body_id = ctx.current_id
        body_meta = ctx.current_meta
        if body_meta.shape != entry_meta.shape:
            raise ValueError(
                f"residual shape mismatch: {entry_meta.shape} vs "
                f"{body_meta.shape} in {self.name}"
            )
        ctx.add(
            "aten::add",
            output=body_meta,
            inputs=(entry_id, body_id),
            flops=body_meta.numel,
        )


class Identity(Module):
    """No-op module (planning emits nothing)."""

    def plan(self, ctx: PlanContext) -> None:
        return None
