"""Concrete optimizer memory models (the paper's Table 2 optimizer set)."""

from __future__ import annotations

from ..tensor import TensorMeta
from .base import Optimizer


class SGD(Optimizer):
    """SGD; with momentum it keeps one buffer per parameter, without it the
    paper's "minimal overhead" case (§3.3 rule 5)."""

    name = "SGD"

    def __init__(self, momentum: float = 0.0):
        self.momentum = momentum

    @property
    def stateful(self) -> bool:  # type: ignore[override]
        return self.momentum != 0.0

    def state_tensors(self, param: TensorMeta) -> list[tuple[str, TensorMeta]]:
        if self.momentum == 0.0:
            return []
        return [("momentum_buffer", param)]

    def step_workspace_bytes(self, param: TensorMeta) -> int:
        return 0


class Adam(Optimizer):
    """Adam: exp_avg + exp_avg_sq per parameter (2x parameter memory)."""

    name = "Adam"
    stateful = True

    def state_tensors(self, param: TensorMeta) -> list[tuple[str, TensorMeta]]:
        return [("exp_avg", param), ("exp_avg_sq", param)]

    def step_workspace_bytes(self, param: TensorMeta) -> int:
        # denom = sqrt(exp_avg_sq) + eps materializes a param-sized temp
        return param.nbytes


class AdamW(Adam):
    """AdamW has Adam's memory profile (decoupled weight decay is free)."""

    name = "AdamW"


class RMSprop(Optimizer):
    """RMSprop: one square_avg buffer per parameter."""

    name = "RMSprop"
    stateful = True

    def state_tensors(self, param: TensorMeta) -> list[tuple[str, TensorMeta]]:
        return [("square_avg", param)]

    def step_workspace_bytes(self, param: TensorMeta) -> int:
        return param.nbytes


class Adagrad(Optimizer):
    """Adagrad: one accumulated squared-gradient buffer per parameter."""

    name = "Adagrad"
    stateful = True

    def state_tensors(self, param: TensorMeta) -> list[tuple[str, TensorMeta]]:
        return [("state_sum", param)]

    def step_workspace_bytes(self, param: TensorMeta) -> int:
        return param.nbytes


class Adafactor(Optimizer):
    """Adafactor: factored second moments for matrices (rows + cols instead
    of rows x cols), full state only for vectors — the memory-frugal choice
    used in the paper's RQ5 large-model runs."""

    name = "Adafactor"
    stateful = True

    def state_tensors(self, param: TensorMeta) -> list[tuple[str, TensorMeta]]:
        if param.ndim >= 2:
            rows = param.numel // param.shape[-1]
            cols = param.shape[-1]
            return [
                ("exp_avg_sq_row", TensorMeta((rows,), dtype=param.dtype)),
                ("exp_avg_sq_col", TensorMeta((cols,), dtype=param.dtype)),
            ]
        return [("exp_avg_sq", param)]

    def step_workspace_bytes(self, param: TensorMeta) -> int:
        # reconstructing the factored second moment materializes one
        # param-sized temp
        return param.nbytes


_OPTIMIZERS = {
    "sgd": lambda: SGD(momentum=0.0),
    "sgd_momentum": lambda: SGD(momentum=0.9),
    "adam": Adam,
    "adamw": AdamW,
    "rmsprop": RMSprop,
    "adagrad": Adagrad,
    "adafactor": Adafactor,
}


def make_optimizer(kind: str) -> Optimizer:
    """Instantiate an optimizer memory model by name."""
    try:
        factory = _OPTIMIZERS[kind.lower()]
    except KeyError:
        raise ValueError(
            f"unknown optimizer {kind!r}; known: {sorted(_OPTIMIZERS)}"
        ) from None
    return factory()


def optimizer_names() -> list[str]:
    return sorted(_OPTIMIZERS)
