"""Optimizer memory models."""

from .base import Optimizer
from .optimizers import (
    SGD,
    Adafactor,
    Adagrad,
    Adam,
    AdamW,
    RMSprop,
    make_optimizer,
    optimizer_names,
)

__all__ = [
    "Adafactor",
    "Adagrad",
    "Adam",
    "AdamW",
    "Optimizer",
    "RMSprop",
    "SGD",
    "make_optimizer",
    "optimizer_names",
]
