"""Optimizer memory models.

An optimizer contributes to the peak in two ways the Orchestrator must
capture (§3.3 rule 5):

* **persistent state** allocated at the first ``step()`` (e.g. Adam's two
  moments per parameter) that lives for the rest of training, and
* **transient step workspace** allocated and freed inside each ``step()``.

Optimizers here are pure memory models — they describe those allocations
per parameter tensor and never compute updates.
"""

from __future__ import annotations

from ..tensor import TensorMeta


class Optimizer:
    """Base optimizer memory model."""

    #: Name used in workload configs and traces ("Optimizer.step#SGD").
    name = "Optimizer"
    #: True when the optimizer keeps per-parameter state across steps.
    stateful = False

    def state_tensors(self, param: TensorMeta) -> list[tuple[str, TensorMeta]]:
        """Persistent state allocated for ``param`` at the first step."""
        return []

    def step_workspace_bytes(self, param: TensorMeta) -> int:
        """Transient bytes used while updating ``param`` in one step."""
        return 0

    def state_bytes(self, param: TensorMeta) -> int:
        return sum(meta.nbytes for _, meta in self.state_tensors(param))

    def total_state_bytes(self, params: list[TensorMeta]) -> int:
        return sum(self.state_bytes(p) for p in params)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
