"""Shape arithmetic shared by the layer implementations."""

from __future__ import annotations


def conv2d_output_hw(
    height: int,
    width: int,
    kernel_size: int,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> tuple[int, int]:
    """Spatial output size of a 2D convolution (PyTorch semantics)."""
    effective = dilation * (kernel_size - 1) + 1
    out_h = (height + 2 * padding - effective) // stride + 1
    out_w = (width + 2 * padding - effective) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"conv output collapsed: {height}x{width} k={kernel_size} "
            f"s={stride} p={padding} d={dilation}"
        )
    return out_h, out_w


def pool2d_output_hw(
    height: int,
    width: int,
    kernel_size: int,
    stride: int | None = None,
    padding: int = 0,
) -> tuple[int, int]:
    """Spatial output size of a 2D pooling op."""
    stride = stride if stride is not None else kernel_size
    return conv2d_output_hw(height, width, kernel_size, stride, padding)


def conv2d_flops(
    batch: int,
    in_channels: int,
    out_channels: int,
    out_h: int,
    out_w: int,
    kernel_size: int,
    groups: int = 1,
) -> int:
    """Multiply-accumulate count of a conv (2 ops per MAC folded in)."""
    per_position = (in_channels // groups) * kernel_size * kernel_size
    return 2 * batch * out_channels * out_h * out_w * per_position


def linear_flops(batch_rows: int, in_features: int, out_features: int) -> int:
    return 2 * batch_rows * in_features * out_features


def make_divisible(value: float, divisor: int = 8, min_value: int | None = None) -> int:
    """Channel rounding used by the MobileNet family (width multipliers)."""
    if min_value is None:
        min_value = divisor
    rounded = max(min_value, int(value + divisor / 2) // divisor * divisor)
    if rounded < 0.9 * value:  # never round down more than 10%
        rounded += divisor
    return rounded
