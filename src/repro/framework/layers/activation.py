"""Elementwise activation layers.

All activations are ``fusible``: a GPU backend fuses them into the
preceding kernel, eliminating the separate output buffer the CPU run
materializes.  This is one of the systematic CPU-vs-GPU differences the
paper's observation (ii) covers.
"""

from __future__ import annotations

from typing import Optional

from ..module import Module
from ..plan import PlanContext


class _Elementwise(Module):
    """Shared planning for unary elementwise ops."""

    op_name = "aten::elementwise"
    #: "output" → backward needs the result (ReLU); "input" → needs the
    #: pre-activation (GELU/SiLU); None → nothing saved (view-like).
    saves = "output"
    flops_per_element = 1

    def __init__(self, inplace: bool = False, name: Optional[str] = None):
        super().__init__(name=name or type(self).__name__)
        self.inplace = inplace

    def plan(self, ctx: PlanContext) -> None:
        x = ctx.current_meta
        ctx.add(
            self.op_name,
            output=x,
            inplace=self.inplace,
            saves_input=self.saves == "input",
            saves_output=self.saves == "output",
            fusible=True,
            flops=self.flops_per_element * x.numel,
        )


class ReLU(_Elementwise):
    op_name = "aten::relu"
    saves = "output"


class GELU(_Elementwise):
    op_name = "aten::gelu"
    saves = "input"
    flops_per_element = 8


class SiLU(_Elementwise):
    op_name = "aten::silu"
    saves = "input"
    flops_per_element = 5


class Hardswish(_Elementwise):
    op_name = "aten::hardswish"
    saves = "input"
    flops_per_element = 3


class Hardsigmoid(_Elementwise):
    op_name = "aten::hardsigmoid"
    saves = "input"
    flops_per_element = 2


class Sigmoid(_Elementwise):
    op_name = "aten::sigmoid"
    saves = "output"
    flops_per_element = 4


class Tanh(_Elementwise):
    op_name = "aten::tanh"
    saves = "output"
    flops_per_element = 4


class Softmax(Module):
    """Softmax over the last dimension; saves its output for backward.

    Never in-place and never fused: the (B, H, T, T) attention-probability
    tensor it produces is the quadratic memory term of transformers.
    """

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name or "Softmax")

    def plan(self, ctx: PlanContext) -> None:
        x = ctx.current_meta
        ctx.add(
            "aten::_softmax",
            output=x,
            saves_output=True,
            flops=5 * x.numel,
        )


_ACTIVATIONS = {
    "relu": ReLU,
    "gelu": GELU,
    "silu": SiLU,
    "swish": SiLU,
    "hardswish": Hardswish,
    "hardsigmoid": Hardsigmoid,
    "sigmoid": Sigmoid,
    "tanh": Tanh,
}


def make_activation(
    kind: str, name: Optional[str] = None, inplace: bool = False
) -> Module:
    """Instantiate an activation by name (``relu``, ``gelu``, ...).

    ``inplace`` mirrors ``nn.ReLU(inplace=True)``: the op reuses its input
    buffer on every backend (torchvision CNNs use this throughout).
    """
    try:
        cls = _ACTIVATIONS[kind.lower()]
    except KeyError:
        raise ValueError(
            f"unknown activation {kind!r}; known: {sorted(_ACTIVATIONS)}"
        ) from None
    return cls(name=name, inplace=inplace)
