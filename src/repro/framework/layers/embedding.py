"""Embedding layers for transformer inputs."""

from __future__ import annotations

from typing import Optional

from ..dtypes import DType
from ..module import Module
from ..plan import PlanContext
from ..tensor import TensorMeta


class Embedding(Module):
    """Token embedding lookup: (B, T) int64 -> (B, T, dim) float."""

    def __init__(self, num_embeddings: int, dim: int, name: Optional[str] = None):
        super().__init__(name=name or "Embedding")
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = self.register_param(
            "weight", TensorMeta((num_embeddings, dim))
        )

    def plan(self, ctx: PlanContext) -> None:
        x = ctx.current_meta
        if x.dtype is not DType.int64:
            raise ValueError(f"{self.name}: expected int64 indices, got {x}")
        batch, seq = x.shape
        indices = TensorMeta((batch, seq), dtype=DType.int64)
        ctx.add(
            "aten::embedding",
            output=TensorMeta((batch, seq, self.dim)),
            extra_saved=(indices,),
            param_bytes=self.own_param_bytes(),
            flops=batch * seq * self.dim,
        )


class PositionalEmbedding(Module):
    """Learned positional embedding added to the hidden states."""

    def __init__(self, max_positions: int, dim: int, name: Optional[str] = None):
        super().__init__(name=name or "PositionalEmbedding")
        self.max_positions = max_positions
        self.dim = dim
        self.weight = self.register_param(
            "weight", TensorMeta((max_positions, dim))
        )

    def plan(self, ctx: PlanContext) -> None:
        x = ctx.current_meta
        if x.shape[-1] != self.dim:
            raise ValueError(
                f"{self.name}: expected trailing dim {self.dim}, got {x.shape}"
            )
        if x.shape[1] > self.max_positions:
            raise ValueError(
                f"{self.name}: sequence {x.shape[1]} exceeds "
                f"max positions {self.max_positions}"
            )
        ctx.add(
            "aten::add",
            output=x,
            param_bytes=self.own_param_bytes(),
            fusible=True,
            flops=x.numel,
        )
