"""Dropout — saves a byte mask the size of its input."""

from __future__ import annotations

from typing import Optional

from ..dtypes import DType
from ..module import Module
from ..plan import PlanContext
from ..tensor import TensorMeta


class Dropout(Module):
    """Training-mode dropout; p == 0 degrades to a view."""

    def __init__(self, p: float = 0.1, name: Optional[str] = None):
        super().__init__(name=name or "Dropout")
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability {p} outside [0, 1)")
        self.p = p

    def plan(self, ctx: PlanContext) -> None:
        x = ctx.current_meta
        if self.p == 0.0:
            ctx.add("aten::dropout", output=x, inplace=True, kind="view")
            return
        mask = TensorMeta(x.shape, dtype=DType.uint8)
        # eager-mode dropout materializes its output on every backend
        ctx.add(
            "aten::native_dropout",
            output=x,
            extra_saved=(mask,),
            flops=2 * x.numel,
        )
