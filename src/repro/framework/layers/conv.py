"""Convolution layers."""

from __future__ import annotations

from typing import Optional

from ..functional import conv2d_flops, conv2d_output_hw
from ..module import Module
from ..plan import PlanContext
from ..tensor import TensorMeta


class Conv2d(Module):
    """2D convolution (supports groups for depthwise convs).

    CPU backends lower convolution through an im2col buffer — a per-image
    unfolded patch matrix — which the plan exposes as forward workspace.
    GPU backends replace it with a cuDNN-style algorithm workspace (see
    ``repro.runtime.backend``); the difference between the two is one of the
    CPU→GPU behavioural gaps xMem must tolerate (§3.3 footnote 3).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        dilation: int = 1,
        bias: bool = True,
        name: Optional[str] = None,
    ):
        super().__init__(name=name or "Conv2d")
        if in_channels % groups or out_channels % groups:
            raise ValueError(
                f"channels ({in_channels}->{out_channels}) not divisible "
                f"by groups={groups}"
            )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        self.dilation = dilation
        self.weight = self.register_param(
            "weight",
            TensorMeta(
                (out_channels, in_channels // groups, kernel_size, kernel_size)
            ),
        )
        self.bias = (
            self.register_param("bias", TensorMeta((out_channels,)))
            if bias
            else None
        )

    def plan(self, ctx: PlanContext) -> None:
        x = ctx.current_meta
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected (B, {self.in_channels}, H, W), "
                f"got {x.shape}"
            )
        batch, _, height, width = x.shape
        out_h, out_w = conv2d_output_hw(
            height, width, self.kernel_size, self.stride, self.padding,
            self.dilation,
        )
        output = x.with_shape((batch, self.out_channels, out_h, out_w))
        # Per-image im2col patch matrix; 1x1 convs skip the unfold entirely.
        if self.kernel_size == 1 and self.dilation == 1:
            workspace = 0
        else:
            patch_rows = (self.in_channels // self.groups) * self.kernel_size ** 2
            workspace = patch_rows * out_h * out_w * x.dtype.itemsize
        ctx.add(
            "aten::convolution",
            output=output,
            saves_input=True,
            param_bytes=self.own_param_bytes(),
            workspace_bytes=workspace,
            backward_workspace_bytes=workspace,
            flops=conv2d_flops(
                batch,
                self.in_channels,
                self.out_channels,
                out_h,
                out_w,
                self.kernel_size,
                self.groups,
            ),
        )


class ConvBnAct(Module):
    """Conv2d + BatchNorm2d + activation — the workhorse CNN block."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: Optional[int] = None,
        groups: int = 1,
        activation: Optional[str] = "relu",
        name: Optional[str] = None,
    ):
        super().__init__(name=name or "ConvBnAct")
        from .activation import make_activation
        from .norm import BatchNorm2d

        if padding is None:
            padding = kernel_size // 2
        self.conv = self.register_child(
            Conv2d(
                in_channels,
                out_channels,
                kernel_size,
                stride=stride,
                padding=padding,
                groups=groups,
                bias=False,
                name="conv",
            )
        )
        self.bn = self.register_child(BatchNorm2d(out_channels, name="bn"))
        # torchvision conv blocks use in-place activations
        self.act = (
            self.register_child(
                make_activation(activation, name="act", inplace=True)
            )
            if activation
            else None
        )

    def plan(self, ctx: PlanContext) -> None:
        self.conv(ctx)
        self.bn(ctx)
        if self.act is not None:
            self.act(ctx)
