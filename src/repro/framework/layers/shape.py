"""Shape-manipulation layers (views — no allocation)."""

from __future__ import annotations

from typing import Optional

from ..module import Module
from ..plan import PlanContext


class Flatten(Module):
    """Flatten all dimensions after the batch dimension (a view)."""

    def plan(self, ctx: PlanContext) -> None:
        x = ctx.current_meta
        batch = x.shape[0]
        flat = x.numel // batch
        ctx.add(
            "aten::flatten",
            output=x.reshape_keep_bytes((batch, flat)),
            inplace=True,
            kind="view",
        )


class Reshape(Module):
    """Reshape to an explicit target shape (a view)."""

    def __init__(self, shape: tuple[int, ...], name: Optional[str] = None):
        super().__init__(name=name or "Reshape")
        self.shape = shape

    def plan(self, ctx: PlanContext) -> None:
        x = ctx.current_meta
        ctx.add(
            "aten::reshape",
            output=x.reshape_keep_bytes(self.shape),
            inplace=True,
            kind="view",
        )
