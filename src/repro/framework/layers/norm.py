"""Normalization layers."""

from __future__ import annotations

from typing import Optional

from ..module import Module
from ..plan import PlanContext
from ..tensor import TensorMeta


class BatchNorm2d(Module):
    """Batch normalization over (B, C, H, W); saves input + per-channel
    statistics for backward."""

    def __init__(self, num_features: int, name: Optional[str] = None):
        super().__init__(name=name or "BatchNorm2d")
        self.num_features = num_features
        self.weight = self.register_param("weight", TensorMeta((num_features,)))
        self.bias = self.register_param("bias", TensorMeta((num_features,)))

    def plan(self, ctx: PlanContext) -> None:
        x = ctx.current_meta
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"{self.name}: expected (B, {self.num_features}, H, W), "
                f"got {x.shape}"
            )
        stats = TensorMeta((2, self.num_features))
        ctx.add(
            "aten::batch_norm",
            output=x,
            saves_input=True,
            extra_saved=(stats,),
            param_bytes=self.own_param_bytes(),
            flops=4 * x.numel,
        )


class LayerNorm(Module):
    """Layer normalization over the trailing dimension."""

    def __init__(self, dim: int, name: Optional[str] = None):
        super().__init__(name=name or "LayerNorm")
        self.dim = dim
        self.weight = self.register_param("weight", TensorMeta((dim,)))
        self.bias = self.register_param("bias", TensorMeta((dim,)))

    def plan(self, ctx: PlanContext) -> None:
        x = ctx.current_meta
        if x.shape[-1] != self.dim:
            raise ValueError(
                f"{self.name}: expected trailing dim {self.dim}, got {x.shape}"
            )
        rows = x.numel // self.dim
        # mean + rstd per normalized row
        stats = TensorMeta((2, rows))
        ctx.add(
            "aten::native_layer_norm",
            output=x,
            saves_input=True,
            extra_saved=(stats,),
            param_bytes=self.own_param_bytes(),
            flops=5 * x.numel,
        )


class RMSNorm(Module):
    """RMS normalization (Llama/Qwen-style, no bias, no mean)."""

    def __init__(self, dim: int, name: Optional[str] = None):
        super().__init__(name=name or "RMSNorm")
        self.dim = dim
        self.weight = self.register_param("weight", TensorMeta((dim,)))

    def plan(self, ctx: PlanContext) -> None:
        x = ctx.current_meta
        if x.shape[-1] != self.dim:
            raise ValueError(
                f"{self.name}: expected trailing dim {self.dim}, got {x.shape}"
            )
        rows = x.numel // self.dim
        stats = TensorMeta((rows,))
        ctx.add(
            "aten::rms_norm",
            output=x,
            saves_input=True,
            extra_saved=(stats,),
            param_bytes=self.own_param_bytes(),
            flops=3 * x.numel,
        )


class GroupNorm(Module):
    """Group normalization (used by ConvNeXt-style stages)."""

    def __init__(self, num_groups: int, num_channels: int, name: Optional[str] = None):
        super().__init__(name=name or "GroupNorm")
        if num_channels % num_groups:
            raise ValueError(
                f"channels {num_channels} not divisible by groups {num_groups}"
            )
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.weight = self.register_param("weight", TensorMeta((num_channels,)))
        self.bias = self.register_param("bias", TensorMeta((num_channels,)))

    def plan(self, ctx: PlanContext) -> None:
        x = ctx.current_meta
        if x.ndim != 4 or x.shape[1] != self.num_channels:
            raise ValueError(
                f"{self.name}: expected (B, {self.num_channels}, H, W), "
                f"got {x.shape}"
            )
        stats = TensorMeta((2, x.shape[0] * self.num_groups))
        ctx.add(
            "aten::group_norm",
            output=x,
            saves_input=True,
            extra_saved=(stats,),
            param_bytes=self.own_param_bytes(),
            flops=5 * x.numel,
        )
