"""Fully connected layer."""

from __future__ import annotations

from typing import Optional

from ..functional import linear_flops
from ..module import Module
from ..plan import PlanContext
from ..tensor import TensorMeta


class Linear(Module):
    """``y = x W^T + b`` over the last dimension.

    Saves its input for the weight gradient, so every Linear pins one
    activation until its backward — the dominant activation cost in
    transformer MLP blocks.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        name: Optional[str] = None,
    ):
        super().__init__(name=name or "Linear")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = self.register_param(
            "weight", TensorMeta((out_features, in_features))
        )
        self.bias = (
            self.register_param("bias", TensorMeta((out_features,)))
            if bias
            else None
        )

    def plan(self, ctx: PlanContext) -> None:
        x = ctx.current_meta
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected last dim {self.in_features}, "
                f"got {x.shape}"
            )
        out_shape = x.shape[:-1] + (self.out_features,)
        rows = x.numel // self.in_features
        ctx.add(
            "aten::addmm" if self.bias is not None else "aten::mm",
            output=x.with_shape(out_shape),
            saves_input=True,
            param_bytes=self.own_param_bytes(),
            flops=linear_flops(rows, self.in_features, self.out_features),
        )
