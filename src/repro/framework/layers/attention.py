"""Multi-head attention — the quadratic memory term of transformers.

The plan materializes the (B, H, T, T) score and probability tensors the
way eager PyTorch attention does, because those tensors dominate
transformer activation memory and are exactly what feature-based
estimators get wrong at larger batch sizes.

Supports grouped-query attention (``num_kv_heads < num_heads``, used by
Llama-3.2 / Qwen3 / DeepSeek-R1 distills) and cross-attention
(``kv_source_op``, used by the T5 decoder).
"""

from __future__ import annotations

from typing import Optional

from ..dtypes import DType
from ..module import Module
from ..plan import PlanContext
from ..tensor import TensorMeta


class MultiHeadSelfAttention(Module):
    """Standard eager-mode multi-head attention.

    Emits: fused qkv projection, score batch-matmul, softmax, optional
    dropout on the probabilities, context batch-matmul, output projection.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        num_kv_heads: Optional[int] = None,
        dropout: float = 0.0,
        bias: bool = True,
        name: Optional[str] = None,
    ):
        super().__init__(name=name or "Attention")
        if dim % num_heads:
            raise ValueError(f"dim {dim} not divisible by heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.num_kv_heads = num_kv_heads or num_heads
        if num_heads % self.num_kv_heads:
            raise ValueError(
                f"heads {num_heads} not divisible by kv heads "
                f"{self.num_kv_heads}"
            )
        self.head_dim = dim // num_heads
        self.kv_dim = self.num_kv_heads * self.head_dim
        self.dropout = dropout
        qkv_out = dim + 2 * self.kv_dim
        self.qkv_weight = self.register_param(
            "qkv.weight", TensorMeta((qkv_out, dim))
        )
        self.out_weight = self.register_param(
            "out.weight", TensorMeta((dim, dim))
        )
        if bias:
            self.qkv_bias = self.register_param("qkv.bias", TensorMeta((qkv_out,)))
            self.out_bias = self.register_param("out.bias", TensorMeta((dim,)))
        bias_elems = (qkv_out + dim) if bias else 0
        self._qkv_param_bytes = (qkv_out * dim + (qkv_out if bias else 0)) * 4
        self._out_param_bytes = (dim * dim + (dim if bias else 0)) * 4
        del bias_elems

    def plan(self, ctx: PlanContext, kv_source_op: Optional[int] = None) -> None:
        x = ctx.current_meta
        if x.shape[-1] != self.dim:
            raise ValueError(
                f"{self.name}: expected trailing dim {self.dim}, got {x.shape}"
            )
        batch, seq_q, _ = x.shape
        seq_kv = seq_q
        heads = self.num_heads
        # 1. fused qkv projection, input saved for the weight gradient
        qkv_id = ctx.add(
            "aten::addmm",
            output=TensorMeta((batch, seq_q, self.dim + 2 * self.kv_dim)),
            saves_input=True,
            param_bytes=self._qkv_param_bytes,
            flops=2 * batch * seq_q * self.dim * (self.dim + 2 * self.kv_dim),
        )
        score_inputs: tuple[int, ...] = (qkv_id,)
        if kv_source_op is not None:
            score_inputs = (qkv_id, kv_source_op)
        # 2. scaled dot-product scores (B, H, Tq, Tkv); q and k are pinned
        #    (saved) for the backward matmuls.
        scores_id = ctx.add(
            "aten::bmm",
            output=TensorMeta((batch, heads, seq_q, seq_kv)),
            inputs=score_inputs,
            saves_input=True,
            flops=2 * batch * heads * seq_q * seq_kv * self.head_dim,
        )
        # 3. softmax over the key axis — probabilities saved for backward
        probs_id = ctx.add(
            "aten::_softmax",
            output=TensorMeta((batch, heads, seq_q, seq_kv)),
            inputs=(scores_id,),
            saves_output=True,
            flops=5 * batch * heads * seq_q * seq_kv,
        )
        if self.dropout > 0.0:
            mask = TensorMeta((batch, heads, seq_q, seq_kv), dtype=DType.uint8)
            probs_id = ctx.add(
                "aten::native_dropout",
                output=TensorMeta((batch, heads, seq_q, seq_kv)),
                inputs=(probs_id,),
                extra_saved=(mask,),
                flops=2 * batch * heads * seq_q * seq_kv,
            )
        # 4. probs @ v — probabilities and v pinned by the preceding ops
        context_id = ctx.add(
            "aten::bmm",
            output=TensorMeta((batch, seq_q, self.dim)),
            inputs=(probs_id, qkv_id),
            saves_input=True,
            flops=2 * batch * heads * seq_q * seq_kv * self.head_dim,
        )
        # 5. output projection
        ctx.add(
            "aten::addmm",
            output=TensorMeta((batch, seq_q, self.dim)),
            inputs=(context_id,),
            saves_input=True,
            param_bytes=self._out_param_bytes,
            flops=2 * batch * seq_q * self.dim * self.dim,
        )
