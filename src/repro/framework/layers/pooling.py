"""Pooling layers."""

from __future__ import annotations

from typing import Optional

from ..dtypes import DType
from ..functional import pool2d_output_hw
from ..module import Module
from ..plan import PlanContext
from ..tensor import TensorMeta


class MaxPool2d(Module):
    """Max pooling; saves int64 argmax indices for backward."""

    def __init__(
        self,
        kernel_size: int,
        stride: Optional[int] = None,
        padding: int = 0,
        name: Optional[str] = None,
    ):
        super().__init__(name=name or "MaxPool2d")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding

    def plan(self, ctx: PlanContext) -> None:
        x = ctx.current_meta
        batch, channels, height, width = x.shape
        out_h, out_w = pool2d_output_hw(
            height, width, self.kernel_size, self.stride, self.padding
        )
        output = x.with_shape((batch, channels, out_h, out_w))
        indices = TensorMeta(output.shape, dtype=DType.int64)
        ctx.add(
            "aten::max_pool2d_with_indices",
            output=output,
            extra_saved=(indices,),
            flops=x.numel,
        )


class AvgPool2d(Module):
    """Average pooling; backward needs only shapes, nothing saved."""

    def __init__(
        self,
        kernel_size: int,
        stride: Optional[int] = None,
        padding: int = 0,
        name: Optional[str] = None,
    ):
        super().__init__(name=name or "AvgPool2d")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding

    def plan(self, ctx: PlanContext) -> None:
        x = ctx.current_meta
        batch, channels, height, width = x.shape
        out_h, out_w = pool2d_output_hw(
            height, width, self.kernel_size, self.stride, self.padding
        )
        ctx.add(
            "aten::avg_pool2d",
            output=x.with_shape((batch, channels, out_h, out_w)),
            flops=x.numel,
        )


class AdaptiveAvgPool2d(Module):
    """Adaptive average pooling to a fixed output size."""

    def __init__(self, output_size: int = 1, name: Optional[str] = None):
        super().__init__(name=name or "AdaptiveAvgPool2d")
        self.output_size = output_size

    def plan(self, ctx: PlanContext) -> None:
        x = ctx.current_meta
        batch, channels = x.shape[0], x.shape[1]
        ctx.add(
            "aten::adaptive_avg_pool2d",
            output=x.with_shape(
                (batch, channels, self.output_size, self.output_size)
            ),
            flops=x.numel,
        )


class GlobalAvgPoolFlatten(Module):
    """Adaptive-1 average pool followed by flatten to (B, C)."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name or "GlobalAvgPoolFlatten")

    def plan(self, ctx: PlanContext) -> None:
        x = ctx.current_meta
        batch, channels = x.shape[0], x.shape[1]
        ctx.add(
            "aten::adaptive_avg_pool2d",
            output=x.with_shape((batch, channels, 1, 1)),
            flops=x.numel,
        )
        ctx.add(
            "aten::flatten",
            output=x.with_shape((batch, channels)),
            inplace=True,
            kind="view",
        )
