"""Layer library of the symbolic framework."""

from .activation import (
    GELU,
    Hardsigmoid,
    Hardswish,
    ReLU,
    Sigmoid,
    SiLU,
    Softmax,
    Tanh,
    make_activation,
)
from .attention import MultiHeadSelfAttention
from .conv import Conv2d, ConvBnAct
from .dropout import Dropout
from .embedding import Embedding, PositionalEmbedding
from .linear import Linear
from .norm import BatchNorm2d, GroupNorm, LayerNorm, RMSNorm
from .pooling import (
    AdaptiveAvgPool2d,
    AvgPool2d,
    GlobalAvgPoolFlatten,
    MaxPool2d,
)
from .shape import Flatten, Reshape

__all__ = [
    "AdaptiveAvgPool2d",
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "ConvBnAct",
    "Dropout",
    "Embedding",
    "Flatten",
    "GELU",
    "GlobalAvgPoolFlatten",
    "GroupNorm",
    "Hardsigmoid",
    "Hardswish",
    "LayerNorm",
    "Linear",
    "MaxPool2d",
    "MultiHeadSelfAttention",
    "PositionalEmbedding",
    "RMSNorm",
    "ReLU",
    "Reshape",
    "Sigmoid",
    "SiLU",
    "Softmax",
    "Tanh",
    "make_activation",
]
