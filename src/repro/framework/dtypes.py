"""Data types of the symbolic framework (element sizes drive all byte math)."""

from __future__ import annotations

from enum import Enum


class DType(Enum):
    """Tensor element types with their byte widths."""

    float32 = ("float32", 4)
    float16 = ("float16", 2)
    bfloat16 = ("bfloat16", 2)
    float64 = ("float64", 8)
    int64 = ("int64", 8)
    int32 = ("int32", 4)
    int8 = ("int8", 1)
    uint8 = ("uint8", 1)
    bool = ("bool", 1)

    def __init__(self, type_name: str, itemsize: int):
        self.type_name = type_name
        self.itemsize = itemsize

    def __repr__(self) -> str:
        return f"DType.{self.type_name}"


#: Default compute precision; the paper evaluates FP32 training (§6.3 notes
#: FP16 works identically once profiling data exists).
DEFAULT_DTYPE = DType.float32
