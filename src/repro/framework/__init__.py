"""Symbolic deep-learning framework: modules plan allocation sequences.

This substitutes for PyTorch in the reproduction: modules carry parameter
metadata and *plan* their forward pass as a DAG of :class:`OpSpec` records
(output sizes, saved-for-backward sets, workspaces).  The training runtime
interprets plans to generate the memory-event streams xMem consumes.
"""

from . import layers, optim
from .dtypes import DEFAULT_DTYPE, DType
from .loss import CrossEntropyLoss, MSELoss
from .module import Identity, Module, Parameter, Residual, Sequential
from .plan import ModulePlan, OpSpec, PlanContext
from .tensor import TensorMeta, TensorRole, tensor

__all__ = [
    "CrossEntropyLoss",
    "DEFAULT_DTYPE",
    "DType",
    "Identity",
    "MSELoss",
    "Module",
    "ModulePlan",
    "OpSpec",
    "Parameter",
    "PlanContext",
    "Residual",
    "Sequential",
    "TensorMeta",
    "TensorRole",
    "layers",
    "optim",
    "tensor",
]
