"""Symbolic tensors: shape/dtype metadata, no data.

xMem's input signal is the *sizes and lifetimes* of allocations, never
tensor values (paper §1 observation i), so the framework's tensors are pure
metadata.  :class:`TensorRole` labels why a tensor exists — the roles the
Memory Orchestrator reasons about in §3.3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from .dtypes import DEFAULT_DTYPE, DType


class TensorRole(str, Enum):
    """Why a tensor is alive — the §3.3 orchestration categories."""

    PARAMETER = "parameter"
    GRADIENT = "gradient"
    ACTIVATION = "activation"
    SAVED = "saved"
    OPTIMIZER_STATE = "optimizer_state"
    BATCH_DATA = "batch_data"
    TEMPORARY = "temporary"


@dataclass(frozen=True)
class TensorMeta:
    """Shape + dtype; the unit of allocation in the symbolic framework."""

    shape: tuple[int, ...]
    dtype: DType = DEFAULT_DTYPE

    def __post_init__(self) -> None:
        if any(d <= 0 for d in self.shape):
            raise ValueError(f"non-positive dimension in shape {self.shape}")

    @property
    def numel(self) -> int:
        return math.prod(self.shape) if self.shape else 1

    @property
    def nbytes(self) -> int:
        return self.numel * self.dtype.itemsize

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def with_shape(self, shape: tuple[int, ...]) -> "TensorMeta":
        return TensorMeta(shape=shape, dtype=self.dtype)

    def with_dtype(self, dtype: DType) -> "TensorMeta":
        return TensorMeta(shape=self.shape, dtype=dtype)

    def reshape_keep_bytes(self, shape: tuple[int, ...]) -> "TensorMeta":
        """Reshape asserting element count is preserved (a view, no alloc)."""
        reshaped = TensorMeta(shape=shape, dtype=self.dtype)
        if reshaped.numel != self.numel:
            raise ValueError(
                f"reshape {self.shape} -> {shape} changes element count"
            )
        return reshaped

    def __str__(self) -> str:
        dims = "x".join(str(d) for d in self.shape)
        return f"{self.dtype.type_name}[{dims}]"


def tensor(*shape: int, dtype: DType = DEFAULT_DTYPE) -> TensorMeta:
    """Convenience constructor: ``tensor(32, 128)`` -> float32[32x128]."""
    return TensorMeta(shape=tuple(shape), dtype=dtype)
