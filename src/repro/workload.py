"""Workload and device descriptions shared by estimators and evaluation.

A *test configuration* :math:`j` in the paper is (model, optimizer, batch
size, ``zero_grad`` placement); a *device* :math:`d` contributes its
capacity :math:`M^{max}_d` plus the memory that is not available to the
job: pre-existing usage :math:`M^{init}_d` and the framework's constant
footprint :math:`M^{fm}` (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .runtime.loop import POS0, POS1
from .units import GiB, MiB


@dataclass(frozen=True)
class WorkloadConfig:
    """One test configuration j: model, optimizer, batch size, loop shape."""

    model: str
    optimizer: str
    batch_size: int
    zero_grad_position: str = POS1
    set_to_none: bool = True

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {self.batch_size}")
        if self.zero_grad_position not in (POS0, POS1):
            raise ValueError(
                f"zero_grad_position must be pos0/pos1, got "
                f"{self.zero_grad_position!r}"
            )

    def with_batch_size(self, batch_size: int) -> "WorkloadConfig":
        return replace(self, batch_size=batch_size)

    def label(self) -> str:
        return (
            f"{self.model}/{self.optimizer}/bs{self.batch_size}"
            f"/{self.zero_grad_position}"
        )

    def to_key(self) -> tuple:
        """Canonical hashable identity, stable across releases.

        Field order is part of the contract: the service-layer fingerprint
        and the eval caches both key on this tuple, so changing it
        invalidates every persisted fingerprint.
        """
        return (
            self.model,
            self.optimizer,
            self.batch_size,
            self.zero_grad_position,
            self.set_to_none,
        )

    def as_dict(self) -> dict:
        """JSON-ready representation (same fields as :meth:`to_key`)."""
        return {
            "model": self.model,
            "optimizer": self.optimizer,
            "batch_size": self.batch_size,
            "zero_grad_position": self.zero_grad_position,
            "set_to_none": self.set_to_none,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WorkloadConfig":
        """Inverse of :meth:`as_dict` (round-trips exactly)."""
        return cls(
            model=payload["model"],
            optimizer=payload["optimizer"],
            batch_size=payload["batch_size"],
            zero_grad_position=payload.get("zero_grad_position", POS1),
            set_to_none=payload.get("set_to_none", True),
        )


@dataclass(frozen=True)
class DeviceSpec:
    """A GPU device d with its capacity and non-job overheads."""

    name: str
    capacity_bytes: int  # M^max
    init_bytes: int = 0  # M^init — memory already used on the device
    framework_bytes: int = 600 * MiB  # M^fm — CUDA context + framework

    def job_budget(self) -> int:
        """Memory available to the training job itself."""
        budget = self.capacity_bytes - self.init_bytes - self.framework_bytes
        if budget <= 0:
            raise ValueError(f"device {self.name} has no job budget")
        return budget

    def with_init(self, init_bytes: int) -> "DeviceSpec":
        return replace(self, init_bytes=init_bytes)

    def to_key(self) -> tuple:
        """Canonical hashable identity (see :meth:`WorkloadConfig.to_key`)."""
        return (
            self.name,
            self.capacity_bytes,
            self.init_bytes,
            self.framework_bytes,
        )

    def as_dict(self) -> dict:
        """JSON-ready representation (same fields as :meth:`to_key`)."""
        return {
            "name": self.name,
            "capacity_bytes": self.capacity_bytes,
            "init_bytes": self.init_bytes,
            "framework_bytes": self.framework_bytes,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DeviceSpec":
        """Inverse of :meth:`as_dict` (round-trips exactly)."""
        return cls(
            name=payload["name"],
            capacity_bytes=payload["capacity_bytes"],
            init_bytes=payload.get("init_bytes", 0),
            framework_bytes=payload.get("framework_bytes", 600 * MiB),
        )


#: The paper's evaluation devices (§4.1.3).
RTX_3060 = DeviceSpec(name="GeForce RTX 3060", capacity_bytes=12 * GiB)
RTX_4060 = DeviceSpec(name="GeForce RTX 4060", capacity_bytes=8 * GiB)
A100_40GB = DeviceSpec(name="NVIDIA A100", capacity_bytes=40 * GiB)

EVAL_DEVICES = (RTX_3060, RTX_4060)
