"""Routing policies: which shard(s) serve one fingerprint (sans-IO core).

Extracted from the gateway so the policies are pure, driver-independent
decision functions — no threads, no event loop, no clocks.  A policy sees
only the request fingerprint and the current per-shard loads; mutual
exclusion around stateful policies (the seeded RNG in
:class:`RandomRouting`) is the *driver's* job: all three gateway drivers
call ``select`` under their own serialization (the thread and process
gateways inside their lock, the asyncio gateway on the event loop).

Policies live entirely in the dispatching process: the process-pool
driver (:mod:`repro.service.procpool`) routes and admits in the parent
and ships only the request envelope to its workers, so ring tables and
RNG state are never pickled and never diverge across replicas.
"""

from __future__ import annotations

import bisect
import hashlib
import random
from typing import Optional, Sequence

#: virtual nodes per shard on the consistent-hash ring (smooths the
#: key-space split so a 4-shard ring is within a few percent of 25/25/25/25)
DEFAULT_VNODES = 64


def _ring_hash(token: str) -> int:
    """Stable 64-bit position on the hash ring (process-independent)."""
    return int.from_bytes(
        hashlib.sha256(token.encode("utf-8")).digest()[:8], "big"
    )


class RoutingPolicy:
    """Picks the shard(s) that serve one fingerprint.

    ``select`` returns a non-empty tuple of shard indices: the first is
    the *primary* (its future is the caller's answer); any others receive
    best-effort warm-up replicas whose results and failures are ignored.
    ``loads`` is the current queued-or-running count per shard.

    Policies may keep state (an RNG, ring tables) but must not
    synchronize: drivers serialize every ``select`` call themselves.
    """

    name = "policy"

    def select(
        self, fingerprint: str, loads: Sequence[int]
    ) -> tuple[int, ...]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class ConsistentHashRouting(RoutingPolicy):
    """Fingerprint-keyed consistent hashing: repeats share a shard.

    Classic ring construction — each shard owns ``vnodes`` pseudo-random
    arcs; a fingerprint routes to the first vnode clockwise from its own
    hash.  Cache locality is structural: identical fingerprints always
    map to the same shard, and resizing the fleet remaps only ~1/N of the
    key space (the arcs the new shard takes over).
    """

    name = "hash"

    def __init__(self, num_shards: int, vnodes: int = DEFAULT_VNODES):
        if num_shards < 1 or vnodes < 1:
            raise ValueError("need at least one shard and one vnode")
        positions = [
            (_ring_hash(f"shard-{shard}/vnode-{vnode}"), shard)
            for shard in range(num_shards)
            for vnode in range(vnodes)
        ]
        positions.sort()
        self._ring = [position for position, _ in positions]
        self._owner = [shard for _, shard in positions]

    def shard_for(self, fingerprint: str) -> int:
        index = bisect.bisect(self._ring, _ring_hash(fingerprint))
        return self._owner[index % len(self._owner)]

    def select(self, fingerprint, loads):
        return (self.shard_for(fingerprint),)


class RandomRouting(RoutingPolicy):
    """Seeded uniform routing — the no-locality baseline.

    A hot fingerprint is smeared across every shard, so each shard pays
    its own cold miss for the same key; benchmarks use this as the
    control :class:`ConsistentHashRouting` must beat on hit rate.
    """

    name = "random"

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def select(self, fingerprint, loads):
        return (self._rng.randrange(len(loads)),)


class LeastLoadedRouting(RoutingPolicy):
    """Routes to the shard with the shortest queue (ties → lowest index).

    Ignores the fingerprint entirely: best when requests rarely repeat
    (cache locality is worthless) and worst-case queueing dominates.
    """

    name = "least_loaded"

    def select(self, fingerprint, loads):
        return (min(range(len(loads)), key=lambda index: loads[index]),)


class BroadcastWarmupRouting(RoutingPolicy):
    """Wraps a primary policy and replicates every request to all shards.

    The caller's answer comes from the primary policy's shard; the other
    shards receive best-effort duplicates that populate their caches.
    Use for fleet warm-up (every shard learns the catalog), then swap the
    gateway back to the plain primary policy.
    """

    name = "broadcast"

    def __init__(self, primary: Optional[RoutingPolicy] = None):
        self.primary = primary

    def select(self, fingerprint, loads):
        if self.primary is not None:
            first = self.primary.select(fingerprint, loads)[0]
        else:
            first = _ring_hash(fingerprint) % len(loads)
        return (first,) + tuple(
            shard for shard in range(len(loads)) if shard != first
        )


POLICY_NAMES = ("broadcast", "hash", "least_loaded", "random")


def make_policy(name: str, num_shards: int, seed: int = 0) -> RoutingPolicy:
    """Build a routing policy from its CLI/benchmark name."""
    if name == "hash":
        return ConsistentHashRouting(num_shards)
    if name == "random":
        return RandomRouting(seed=seed)
    if name == "least_loaded":
        return LeastLoadedRouting()
    if name == "broadcast":
        return BroadcastWarmupRouting(ConsistentHashRouting(num_shards))
    raise ValueError(
        f"unknown routing policy {name!r}; choose from {sorted(POLICY_NAMES)}"
    )
