"""The sans-IO service core: every policy step, no execution substrate.

This module is the single source of truth for what it *means* to serve an
estimation request — fingerprinting, middleware interception, cache
population, single-flight bookkeeping, metric classification, gateway
admission/shed/settle accounting — expressed as plain method calls with
no threads, no event loop, and no blocking.  The execution drivers
(:mod:`repro.service.engine` on a thread pool,
:mod:`repro.service.aio` on an asyncio event loop) own *when* these
steps run and under what mutual exclusion; the core owns *what* happens.

Driver contract:

* :class:`ServiceCore` methods are synchronous and non-blocking.  The
  single-flight table (:class:`SingleFlight`) must only be touched under
  the driver's serialization regime — a lock for the thread driver,
  the event loop itself for asyncio.
* :class:`GatewayCore` mutating methods (``admit`` / ``settle`` /
  ``count_request`` / lifecycle flags) carry the same requirement.
* Metric recording goes through :class:`~repro.service.metrics.ServiceMetrics`,
  which is internally synchronized and safe from any driver.
"""

from __future__ import annotations

import inspect
import itertools
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from ..core.result import EstimationResult
from ..errors import (
    DeadlineExceededError,
    QuotaExceededError,
    RateLimitExceededError,
    RequestRejectedError,
    ServiceClosedError,
)
from ..trace.reader import Trace
from ..workload import DeviceSpec, WorkloadConfig
from .cache import EstimateCache
from .context import RequestContext, ServiceRequest
from .control import DEFAULT_PRIORITY, ControlPlane
from .faults import apply_fault_directive
from .fingerprint import fingerprint_request
from .metrics import ServiceMetrics, latency_histogram, percentile
from .middleware import CacheMiddleware, MiddlewareChain, ServiceMiddleware
from .routing import RoutingPolicy
from .telemetry import ledger as ledger_events
from .telemetry.ledger import AuditLedger
from .telemetry.spans import RequestTelemetry, Tracer


def compute_fingerprint(
    estimator, workload: WorkloadConfig, device: DeviceSpec
) -> str:
    """The cache/single-flight key a service derives for one request."""
    return fingerprint_request(
        workload,
        device,
        estimator_name=estimator.name,
        estimator_version=str(getattr(estimator, "version", "")),
        allocator_config=getattr(estimator, "allocator_config", None),
    )


def estimator_accepts_trace(estimator) -> bool:
    """Whether the estimator's ``estimate`` takes a pre-computed trace."""
    return "trace" in inspect.signature(estimator.estimate).parameters


def invoke_estimator(estimator, request: ServiceRequest, accepts_trace: bool):
    """Run the wrapped estimator for one request (the CPU-bound step).

    Both drivers call this from their execution substrate — a worker
    thread or an executor the event loop offloads to.  This is also the
    fault plane's application point (PR 8): a ``metadata["fault"]``
    directive stamped by the gateway fires here, on every substrate —
    including inside procpool workers, since the metadata bag rides the
    pickled request across the process boundary.
    """
    directive = request.metadata.get("fault")
    if directive:
        apply_fault_directive(directive)
    if request.trace is not None and accepts_trace:
        return estimator.estimate(
            request.workload, request.device, trace=request.trace
        )
    return estimator.estimate(request.workload, request.device)


def adopt_chain_cache(
    middlewares: Sequence[ServiceMiddleware], fallback: EstimateCache
) -> EstimateCache:
    """The cache that actually serves hits for this chain.

    ``stats()`` and the batch fast path must see the cache the chain's
    :class:`CacheMiddleware` consults; fall back to the service's own
    when the chain has none (hits are then impossible, stats just idle).
    """
    for middleware in middlewares:
        if isinstance(middleware, CacheMiddleware):
            return middleware.cache
    return fallback


class SingleFlight:
    """Fingerprint → in-flight handle, with no synchronization of its own.

    The handle is whatever the driver shares between duplicate callers —
    a ``concurrent.futures.Future`` for threads, an ``asyncio.Future``
    for the event loop.  Drivers must call these methods under their own
    mutual exclusion; the core only defines the bookkeeping.
    """

    __slots__ = ("_inflight",)

    def __init__(self):
        self._inflight: dict[str, Any] = {}

    def get(self, fingerprint: str) -> Optional[Any]:
        return self._inflight.get(fingerprint)

    def claim(self, fingerprint: str, handle: Any) -> None:
        self._inflight[fingerprint] = handle

    def release(self, fingerprint: str) -> None:
        self._inflight.pop(fingerprint, None)

    def __len__(self) -> int:
        return len(self._inflight)


@dataclass(frozen=True)
class Admission:
    """What the request hooks decided for one request.

    ``result`` non-None means the chain short-circuited (cache hit,
    synthetic answer): the result has already passed ``on_result`` for
    the outer layers and been recorded in the metrics — the driver just
    wraps it in its future type.  ``result`` None means the estimator
    must run; ``depth`` is how many layers are owed ``on_result`` /
    ``on_error`` afterwards.
    """

    result: Optional[EstimationResult]
    depth: int


class ServiceCore:
    """Driver-independent request pipeline for one estimation service.

    Owns the middleware chain, the cache handle, the metrics sink, the
    single-flight table, and the request-id sequence.  A driver turns
    one ``submit`` into::

        request, ctx = core.open_request(...)
        handle = core.inflight.get(fp)        # under driver serialization
        if handle: core.note_deduplicated(ctx); return handle
        admission = core.run_request_hooks(request, ctx)   # may raise
        if admission.result is not None: return resolved(admission.result)
        core.inflight.claim(fp, handle)       # under driver serialization
        ... run invoke_estimator() on the execution substrate ...
        result = core.finish(request, ctx, result, admission.depth)
        core.inflight.release(fp)             # under driver serialization
    """

    def __init__(
        self,
        chain: MiddlewareChain,
        cache: EstimateCache,
        metrics: ServiceMetrics,
        clock: Callable[[], float] = time.perf_counter,
        tracer: Optional[Tracer] = None,
        ledger: Optional[AuditLedger] = None,
        shard_id: Optional[int] = None,
    ):
        self.chain = chain
        self.cache = cache
        self.metrics = metrics
        self.clock = clock
        self.tracer = tracer
        self.ledger = ledger
        #: gateway-assigned position in the fleet (None standalone);
        #: stamped onto every ledger event for provenance
        self.shard_id = shard_id
        self.inflight = SingleFlight()
        self._request_ids = itertools.count(1)

    def _record_decision(
        self,
        event: str,
        cause: str,
        ctx: RequestContext,
        worker: Optional[str] = None,
        attributes: Optional[dict] = None,
    ) -> None:
        """Ledger one service-layer policy decision (no-op unledgered)."""
        if self.ledger is None:
            return
        if ctx.attempt > 1:
            # retries/failovers carry their attempt number into the
            # ledger so provenance distinguishes re-dispatched work
            attributes = {**(attributes or {}), "attempt": ctx.attempt}
        self.ledger.record(
            event,
            cause=cause,
            fingerprint=ctx.fingerprint,
            request_id=ctx.request_id,
            shard=self.shard_id,
            worker=worker,
            attributes=attributes,
        )

    def open_request(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        fingerprint: str,
        trace: Optional[Trace] = None,
        deadline: Optional[float] = None,
        metadata: Optional[dict] = None,
        tenant: str = "",
        priority: int = DEFAULT_PRIORITY,
    ) -> tuple[ServiceRequest, RequestContext]:
        """Admit one request into the pipeline and stamp its envelope."""
        self.metrics.record_request()
        request = ServiceRequest(
            workload=workload,
            device=device,
            fingerprint=fingerprint,
            trace=trace,
            metadata=dict(metadata) if metadata else {},
            tenant=tenant,
            priority=priority,
        )
        ctx = RequestContext(
            request_id=next(self._request_ids),
            submitted_at=self.clock(),
            fingerprint=fingerprint,
            deadline=deadline,
            metadata=dict(metadata) if metadata else {},
        )
        if metadata and "attempt" in metadata:
            # the resilience plane stamps the attempt number into the
            # metadata bag (it survives every substrate boundary); the
            # context carries it from here on
            ctx.attempt = int(metadata["attempt"])
        if self.tracer is not None:
            telemetry = RequestTelemetry.begin(
                self.tracer,
                fingerprint,
                ctx.request_id,
                parent_context=ctx.metadata.get("telemetry"),
            )
            ctx.telemetry = telemetry
            # the JSON-safe span context rides the metadata bags so any
            # transport (the procpool pickle boundary included) can
            # re-parent its own spans under this request
            span_context = telemetry.context()
            request.metadata["telemetry"] = span_context
            ctx.metadata["telemetry"] = span_context
        return request, ctx

    def note_deduplicated(self, ctx: RequestContext) -> None:
        """Record that this caller piggybacked on an in-flight duplicate."""
        ctx.deduplicated = True
        self.metrics.record_deduplicated()
        self._record_decision(
            ledger_events.DEDUP, "single_flight", ctx
        )
        if ctx.telemetry is not None:
            ctx.telemetry.close("ok", deduplicated=True)

    def check_deadline(self, ctx: RequestContext) -> None:
        """Reject (and count) a request whose deadline already passed.

        Drivers call this right after ``open_request`` — before even the
        single-flight lookup, so an expired caller never piggybacks on an
        in-flight duplicate and never pays for a hook.
        """
        now = self.clock()
        if ctx.expired(now):
            self.metrics.record_rejected()
            self._record_decision(
                ledger_events.DEADLINE, "expired_before_dispatch", ctx
            )
            if ctx.telemetry is not None:
                ctx.telemetry.close("deadline")
            raise DeadlineExceededError(now - ctx.deadline)

    def run_request_hooks(
        self, request: ServiceRequest, ctx: RequestContext
    ) -> Admission:
        """``on_request`` hooks + budget check, with metric classification.

        Raises the hook's own exception after recording it (throttled /
        rejected / error); a short-circuit answer is completed through
        ``on_result`` and recorded before it is returned.  Deadlines are
        enforced twice overall: the driver calls :meth:`check_deadline`
        before the dedup lookup (caller-supplied deadlines), and this
        method re-checks after the chain, before admitting a compute
        dispatch — so a budget stamped *by* a hook
        (:class:`~repro.service.middleware.DeadlineMiddleware`) still
        rejects before the estimator is paid for.  A short-circuit
        answer is exempt from the second check: it is already computed
        and costs nothing to hand back.
        """
        try:
            short, depth = self.chain.run_request(request, ctx)
        except RateLimitExceededError:
            self.metrics.record_throttled()
            self._record_decision(ledger_events.THROTTLED, "rate_limit", ctx)
            if ctx.telemetry is not None:
                ctx.telemetry.close("throttled")
            raise
        except RequestRejectedError as error:
            self.metrics.record_rejected()
            self._record_decision(
                ledger_events.REJECTED, type(error).__name__, ctx
            )
            if ctx.telemetry is not None:
                ctx.telemetry.close("rejected")
            raise
        except BaseException as error:
            self.metrics.record_error()
            self._record_decision(
                ledger_events.ERROR, type(error).__name__, ctx
            )
            if ctx.telemetry is not None:
                ctx.telemetry.close("error")
            raise
        if short is not None:
            short = self.chain.run_result(request, short, ctx, depth)
            latency = self.clock() - ctx.submitted_at
            if ctx.cache_hit:
                self.metrics.record_cache_hit(latency)
                self._record_decision(
                    ledger_events.CACHE_HIT,
                    ctx.short_circuited_by or "cache",
                    ctx,
                )
            else:
                self.metrics.record_computed(latency)
                self._record_decision(
                    ledger_events.ADMIT,
                    f"short_circuit:{ctx.short_circuited_by or 'unknown'}",
                    ctx,
                )
            if ctx.telemetry is not None:
                ctx.telemetry.close("ok", cache_hit=ctx.cache_hit)
            return Admission(result=short, depth=depth)
        now = self.clock()
        if ctx.expired(now):
            # the budget ran out inside the chain (or a hook stamped one
            # that is already hopeless): unwind the entered layers like
            # any other mid-chain rejection, then refuse the dispatch
            error = DeadlineExceededError(now - ctx.deadline)
            self.chain.run_error(request, error, ctx, depth)
            self.metrics.record_rejected()
            self._record_decision(
                ledger_events.DEADLINE, "budget_exhausted_in_chain", ctx
            )
            if ctx.telemetry is not None:
                ctx.telemetry.close("deadline")
            raise error
        self._record_decision(ledger_events.ADMIT, "compute", ctx)
        return Admission(result=None, depth=depth)

    def finish(
        self,
        request: ServiceRequest,
        ctx: RequestContext,
        result: EstimationResult,
        depth: int,
    ) -> EstimationResult:
        """Post-estimation completion: ``on_result`` hooks + accounting."""
        result = self.chain.run_result(request, result, ctx, depth)
        stages = getattr(result, "stage_seconds", None)
        sources = getattr(result, "stage_sources", None)
        if stages:
            # staged estimators report where computed time went; recorded
            # alongside record_computed (and never for cache hits) so the
            # per-stage counts reconcile with the computed counter
            self.metrics.record_stages(stages, sources)
        self.metrics.record_computed(self.clock() - ctx.submitted_at)
        worker = ctx.tags.get("worker")
        self._record_decision(
            ledger_events.COMPUTED,
            "estimator",
            ctx,
            worker=str(worker) if worker is not None else None,
        )
        store_stages = sorted(
            stage
            for stage, source in (sources or {}).items()
            if source == "store"
        )
        if store_stages:
            # stages answered by the persistent artifact store (L2) leave
            # an audit trail: cold processes inheriting warm artifacts is
            # a provenance fact, not just a latency win
            self._record_decision(
                ledger_events.ARTIFACT,
                "store_hit",
                ctx,
                attributes={"stages": store_stages},
            )
        if ctx.telemetry is not None:
            ctx.telemetry.finish_estimate(stage_seconds=stages)
            ctx.telemetry.close("ok", cache_hit=False)
        return result

    def fail(
        self,
        request: ServiceRequest,
        ctx: RequestContext,
        error: BaseException,
        depth: int,
    ) -> None:
        """Failure after admission — the estimator raised, or the driver
        could not hand the request to its substrate: unwind the entered
        ``on_error`` hooks + count it."""
        self.chain.run_error(request, error, ctx, depth)
        self.metrics.record_error()
        self._record_decision(
            ledger_events.ERROR, type(error).__name__, ctx
        )
        if ctx.telemetry is not None:
            ctx.telemetry.finish_estimate(status="error")
            ctx.telemetry.close("error", error=type(error).__name__)

    def refuse(
        self,
        request: ServiceRequest,
        ctx: RequestContext,
        error: BaseException,
        depth: int,
        cause: str = "dispatch_refused",
    ) -> None:
        """Refusal after admission but before any estimator ran — the
        driver's substrate turned the dispatch away (e.g. a pool racing
        shutdown): unwind the entered layers + count a rejection."""
        self.chain.run_error(request, error, ctx, depth)
        self.metrics.record_rejected()
        self._record_decision(ledger_events.REJECTED, cause, ctx)
        if ctx.telemetry is not None:
            ctx.telemetry.close("rejected", cause=cause)


# ----------------------------------------------------------------------
# gateway core
# ----------------------------------------------------------------------


class _ShardState:
    """Gateway-side accounting for one shard (no lock: driver-owned)."""

    __slots__ = ("pending", "routed")

    def __init__(self):
        self.pending = 0  # queued-or-running requests admitted by us
        self.routed = 0  # lifetime requests this shard was primary for


class GatewayCore:
    """Admission/shed/drain state machine for a sharded gateway.

    Pure counters and decisions: which shard a fingerprint routes to,
    whether a shard may take one more request or must shed, when the
    fleet is idle.  Mutating methods must run under the driver's
    serialization (the thread gateway's lock / the asyncio event loop);
    the driver supplies the waiting primitive ``drain()`` blocks on.
    """

    def __init__(
        self,
        num_shards: int,
        policy: RoutingPolicy,
        max_queue_depth: int,
        control: Optional[ControlPlane] = None,
    ):
        if num_shards < 1:
            raise ValueError("gateway needs at least one shard")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.policy = policy
        self.max_queue_depth = max_queue_depth
        #: multi-tenant admission policy (quota / fair share / deadline /
        #: QoS reserve — see :mod:`repro.service.control`); None = every
        #: request is admitted on queue depth alone, exactly as before
        self.control = control
        self.shards = [_ShardState() for _ in range(num_shards)]
        self.draining = False
        self.closed = False
        self.requests = 0
        self.shed = 0
        self.rejected = 0
        self.throttled = 0
        self.warmup_replicas = 0

    # -- intake gate ---------------------------------------------------
    def check_open(self) -> None:
        if self.closed or self.draining:
            raise ServiceClosedError("gateway is closed to new requests")

    def count_request(self) -> None:
        self.check_open()
        self.requests += 1

    # -- routing -------------------------------------------------------
    def loads(self) -> list[int]:
        return [shard.pending for shard in self.shards]

    def route(self, fingerprint: str) -> tuple[int, tuple[int, ...]]:
        """(primary shard, warm-up replica shards) for one fingerprint."""
        selected = self.policy.select(fingerprint, self.loads())
        return selected[0], tuple(selected[1:])

    # -- admission -----------------------------------------------------
    def admit(
        self,
        shard_index: int,
        tenant: str = "",
        priority: int = DEFAULT_PRIORITY,
        deadline_remaining: Optional[float] = None,
    ) -> None:
        """Reserve one primary slot on a shard, or shed.

        Re-checks the intake gate so a drain/close racing with a submit
        either sees the pending slot or turns the request away — never
        both reports idle and lets the request hit a closed shard.

        With a control plane configured, tenant policy is consulted
        *before* the queue-depth check: a hopeless deadline, an exhausted
        quota, or an overdrawn fair share turns the request away without
        ever burning a queue slot.  The control plane's own determinism
        contract (tick clock, peek-then-commit) means these decisions
        depend only on submission order — never on which substrate runs
        them — so the ledgered decision sequence stays byte-identical
        across all four drivers.  Untenanted traffic (``tenant=""``) on
        a control-less gateway takes exactly the pre-control-plane path.
        """
        self.check_open()
        if self.control is not None:
            try:
                self.control.admit(
                    tenant=tenant,
                    priority=priority,
                    deadline_remaining=deadline_remaining,
                )
            except QuotaExceededError:
                self.shed += 1
                raise
            except RequestRejectedError:
                # hopeless deadline or auth refusal: a rejection, not load
                self.rejected += 1
                raise
        shard = self.shards[shard_index]
        if shard.pending >= self.max_queue_depth:
            self.shed += 1
            raise RateLimitExceededError(
                retry_after_seconds=0.05 * (shard.pending + 1)
            )
        shard.pending += 1
        shard.routed += 1

    def admit_replica(self, shard_index: int) -> bool:
        """Reserve a best-effort warm-up slot; False = silently skip.

        Warm-up never sheds real traffic: a full queue or a closing
        gateway simply drops the replica.
        """
        shard = self.shards[shard_index]
        if (
            self.closed
            or self.draining
            or shard.pending >= self.max_queue_depth
        ):
            return False
        shard.pending += 1
        self.warmup_replicas += 1
        return True

    def settle(
        self,
        shard_index: int,
        rejected: bool = False,
        throttled: bool = False,
    ) -> bool:
        """Release one reserved slot; True when the fleet just went idle."""
        self.shards[shard_index].pending -= 1
        if rejected:
            self.rejected += 1
        if throttled:
            self.throttled += 1
        return self.idle()

    def idle(self) -> bool:
        return all(shard.pending == 0 for shard in self.shards)

    def pending(self) -> int:
        return sum(shard.pending for shard in self.shards)

    def snapshot(self) -> dict:
        """The gateway-level counter block of ``stats()``."""
        snapshot = {
            "policy": self.policy.name,
            "num_shards": len(self.shards),
            "max_queue_depth": self.max_queue_depth,
            "requests": self.requests,
            "shed": self.shed,
            "rejected": self.rejected,
            "throttled": self.throttled,
            "warmup_replicas": self.warmup_replicas,
            "pending": self.pending(),
            "routed_per_shard": [shard.routed for shard in self.shards],
        }
        if self.control is not None:
            snapshot["control"] = self.control.snapshot()
        return snapshot


def aggregate_shard_stats(
    shard_stats: Sequence[dict],
    latency_samples: Optional[Sequence[float]] = None,
) -> dict:
    """Fold per-shard ``service.stats()`` snapshots into fleet totals.

    Counters sum; the hit rate is recomputed from the summed numerators
    (averaging per-shard rates would weight an idle shard like a busy
    one); latency percentiles are taken over ``latency_samples`` — the
    union of every shard's reservoir — which is exact as long as no
    reservoir overflowed.  Idle shards contribute empty reservoirs, and a
    fully idle fleet yields ``None`` percentiles rather than raising, so
    dashboards can poll a fresh deployment.

    Tolerates *partial* snapshots: a shard whose substrate worker died
    mid-request (or a snapshot truncated in transit from a worker
    process) may be missing counters, the cache block, or whole
    sections — every absent field counts as zero instead of raising
    ``KeyError``, because a fleet dashboard must keep rendering the
    healthy shards while one is broken.
    """
    service_keys = (
        "requests",
        "cache_hits",
        "computed",
        "deduplicated",
        "rejected",
        "throttled",
        "errors",
    )
    cache_keys = ("hits", "misses", "evictions", "expirations", "size")
    totals = {key: 0 for key in service_keys}
    cache = {key: 0 for key in cache_keys}
    # a shard with an empty (or absent) reservoir must not poison the
    # merge: keep only real samples so the percentile math sees numbers
    samples = [s for s in (latency_samples or ()) if s is not None]
    inflight = 0
    stages: dict[str, dict] = {}
    workers: dict[str, int] = {}
    stage_sources: dict[str, int] = {}
    for snapshot in shard_stats:
        service = snapshot.get("service") or {}
        shard_cache = snapshot.get("cache") or {}
        for key in service_keys:
            totals[key] += service.get(key, 0)
        for key in cache_keys:
            cache[key] += shard_cache.get(key, 0)
        inflight += snapshot.get("inflight", 0)
        for stage, data in (service.get("stages") or {}).items():
            fleet = stages.setdefault(
                stage, {"count": 0, "total_seconds": 0.0}
            )
            fleet["count"] += data.get("count", 0)
            fleet["total_seconds"] += data.get("total_seconds", 0.0)
        for worker, count in (service.get("workers") or {}).items():
            # shards of a process gateway share one pool, so the same
            # PID legitimately shows up under several shards: sum them
            workers[worker] = workers.get(worker, 0) + count
        for key, count in (service.get("stage_sources") or {}).items():
            stage_sources[key] = stage_sources.get(key, 0) + count
    for fleet in stages.values():
        fleet["mean_seconds"] = (
            fleet["total_seconds"] / fleet["count"] if fleet["count"] else None
        )
    answered = totals["cache_hits"] + totals["computed"]
    cache_lookups = cache["hits"] + cache["misses"]
    return {
        **totals,
        "inflight": inflight,
        "cache_hit_rate": (
            totals["cache_hits"] / answered if answered else 0.0
        ),
        "cache": {
            **cache,
            "hit_rate": (
                cache["hits"] / cache_lookups if cache_lookups else 0.0
            ),
        },
        "latency_seconds": {
            "count": len(samples),
            "p50": percentile(samples, 50),
            "p95": percentile(samples, 95),
            "p99": percentile(samples, 99),
            "max": max(samples) if samples else None,
            "histogram": latency_histogram(samples),
        },
        "stages": stages,
        "workers": dict(sorted(workers.items())),
        "stage_sources": dict(sorted(stage_sources.items())),
    }
