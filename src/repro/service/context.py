"""The transport-agnostic request envelope (sans-IO core).

The service stack is split sans-IO style: every *policy* decision —
middleware interception, cache lookup, single-flight dedup, routing,
queue accounting — is expressed as pure steps over the envelope types in
this module, while the *execution substrate* (threads + locks, or an
asyncio event loop) lives in a thin driver (:mod:`repro.service.engine`,
:mod:`repro.service.aio`).  The core modules therefore never import
``threading`` or ``asyncio``; where shared state needs mutual exclusion
under a concurrent driver, the core declares a :class:`NullLock` slot and
the driver *binds* a real primitive via ``bind_lock`` (see
:class:`~repro.service.cache.EstimateCache` and the locking middlewares).

:class:`ServiceRequest` is the immutable request; :class:`RequestContext`
is the mutable per-request state threaded through every hook: identity
(``request_id``, ``fingerprint``), budget (``deadline``, ``attempt``),
placement (``shard_hint``), and outcome flags the drivers and middlewares
fill in as the request advances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, ContextManager, Optional

from ..trace.reader import Trace
from ..workload import DeviceSpec, WorkloadConfig

#: ``() -> context manager`` — what drivers pass to ``bind_lock`` (e.g.
#: ``threading.Lock``).  The asyncio driver binds nothing: its hooks run
#: on the event loop, which already serializes them.
LockFactory = Callable[[], ContextManager]


class NullLock:
    """No-op lock: the sans-IO default until a driver binds a real one.

    Single-threaded drivers (and the asyncio driver, whose hooks all run
    on the event loop) never need more; the thread driver replaces every
    ``NullLock`` slot with a ``threading.Lock`` at construction time.
    """

    __slots__ = ()

    def __enter__(self) -> "NullLock":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def __repr__(self) -> str:
        return "NullLock()"


@dataclass(frozen=True)
class ServiceRequest:
    """One estimation request as seen by the middleware chain."""

    workload: WorkloadConfig
    device: DeviceSpec
    fingerprint: str
    #: pre-computed CPU profile shared across requests (see service.batch)
    trace: Optional[Trace] = None
    metadata: dict = field(default_factory=dict)
    #: the submitting tenant ("" = untenanted traffic; see service.control)
    tenant: str = ""
    #: QoS class (0 interactive / 1 standard / 2 batch)
    priority: int = 1

    def as_dict(self) -> dict:
        """JSON-ready identity of the request (everything but the trace).

        This is the wire format the process-pool driver ships to worker
        processes: plain dicts survive any serialization substrate
        (pickle today, JSON-over-socket tomorrow).  The trace is carried
        out-of-band — it is a large binary artifact with its own
        serialization, not part of the request identity.

        ``tenant``/``priority`` ride only when set off their defaults,
        so untenanted payloads stay byte-identical to pre-control-plane
        frames (backward/forward wire compatibility).
        """
        payload = {
            "workload": self.workload.as_dict(),
            "device": self.device.as_dict(),
            "fingerprint": self.fingerprint,
            "metadata": dict(self.metadata),
        }
        if self.tenant:
            payload["tenant"] = self.tenant
        if self.priority != 1:
            payload["priority"] = self.priority
        return payload

    @classmethod
    def from_dict(
        cls, payload: dict, trace: Optional[Trace] = None
    ) -> "ServiceRequest":
        """Inverse of :meth:`as_dict` (round-trips exactly).

        ``trace`` re-attaches the out-of-band profile on the receiving
        side (the process-pool worker passes through whatever the parent
        shipped alongside the payload).
        """
        return cls(
            workload=WorkloadConfig.from_dict(payload["workload"]),
            device=DeviceSpec.from_dict(payload["device"]),
            fingerprint=payload["fingerprint"],
            trace=trace,
            metadata=dict(payload.get("metadata", {})),
            tenant=payload.get("tenant", ""),
            priority=payload.get("priority", 1),
        )


@dataclass
class RequestContext:
    """Mutable per-request state threaded through the hooks.

    ``tags`` is the middlewares' scratchpad (e.g. timing start stamps);
    ``metadata`` is the caller/driver-supplied annotation bag (trace IDs,
    tenant labels) that the core carries but never interprets.
    """

    request_id: int
    submitted_at: float
    #: the cache/single-flight/routing key (empty until the driver sets it)
    fingerprint: str = ""
    #: absolute clock value after which the request is not worth serving
    deadline: Optional[float] = None
    #: 1 on first submission; >1 when the resilience plane re-dispatched
    #: this request (gateway retries stamp it via ``metadata["attempt"]``,
    #: procpool worker-death recovery bumps it in place) — ledger events
    #: for attempt > 1 carry it as provenance
    attempt: int = 1
    #: the shard the router picked (None outside a gateway)
    shard_hint: Optional[int] = None
    cache_hit: bool = False
    deduplicated: bool = False
    short_circuited_by: Optional[str] = None
    tags: dict = field(default_factory=dict)
    metadata: dict[str, Any] = field(default_factory=dict)
    #: live tracing handle (:class:`~repro.service.telemetry.RequestTelemetry`)
    #: attached by the core when a tracer is configured.  Never serialized:
    #: the JSON-safe span context travels in ``metadata["telemetry"]``
    #: instead, and the receiving side re-opens its own spans against it.
    telemetry: Optional[Any] = field(
        default=None, compare=False, repr=False
    )

    def remaining(self, now: float) -> Optional[float]:
        """Seconds left before the deadline (None = no deadline)."""
        if self.deadline is None:
            return None
        return self.deadline - now

    def expired(self, now: float) -> bool:
        """Whether the deadline has passed at clock value ``now``."""
        return self.deadline is not None and now >= self.deadline

    def as_dict(self, now: Optional[float] = None) -> dict:
        """JSON-ready snapshot of the per-request state.

        The envelope's wire-format contract (paired with
        :meth:`ServiceRequest.as_dict`): today's process-pool driver
        keeps contexts in the parent and ships only the request, but any
        transport that forwards in-progress requests — cross-process
        retry/failover, a socket gateway — needs the whole envelope to
        round-trip, and the property tests pin that both halves do.
        ``tags`` is deliberately shallow-copied: middlewares only ever
        store scalars there (timestamps, flags), never live objects.

        ``submitted_at`` and ``deadline`` are values of the *sender's*
        monotonic clock, which means nothing on another host (or even
        another process after a reboot).  Passing ``now`` — the sender's
        current clock reading — switches to the **wire form**: the
        absolute stamps are replaced by ``age_seconds`` (how long the
        request has been alive) and ``deadline_remaining`` (budget left,
        None for no deadline), which any receiver can rebase onto its
        own clock via ``from_dict(payload, now=receiver_clock())``.
        Leave ``now`` unset only when the payload stays inside one clock
        domain (the procpool pickle boundary on a single host).
        """
        payload = {
            "request_id": self.request_id,
            "fingerprint": self.fingerprint,
            "attempt": self.attempt,
            "shard_hint": self.shard_hint,
            "cache_hit": self.cache_hit,
            "deduplicated": self.deduplicated,
            "short_circuited_by": self.short_circuited_by,
            "tags": dict(self.tags),
            "metadata": dict(self.metadata),
        }
        if now is None:
            payload["submitted_at"] = self.submitted_at
            payload["deadline"] = self.deadline
        else:
            payload["age_seconds"] = now - self.submitted_at
            payload["deadline_remaining"] = self.remaining(now)
        return payload

    @classmethod
    def from_dict(
        cls, payload: dict, now: Optional[float] = None
    ) -> "RequestContext":
        """Inverse of :meth:`as_dict` (round-trips exactly).

        A wire-form payload (``age_seconds`` / ``deadline_remaining``)
        requires ``now`` — the *receiver's* current clock reading — and
        rebases both stamps into the receiver's clock domain, preserving
        the request's age and remaining budget regardless of clock skew
        between the two hosts.  An absolute-form payload is taken as-is
        (same clock domain).
        """
        if "age_seconds" in payload or "deadline_remaining" in payload:
            if now is None:
                raise ValueError(
                    "wire-form context payload (age_seconds/"
                    "deadline_remaining) needs the receiver clock: pass "
                    "from_dict(payload, now=clock())"
                )
            submitted_at = now - payload.get("age_seconds", 0.0)
            remaining = payload.get("deadline_remaining")
            deadline = None if remaining is None else now + remaining
        else:
            submitted_at = payload["submitted_at"]
            deadline = payload.get("deadline")
        return cls(
            request_id=payload["request_id"],
            submitted_at=submitted_at,
            fingerprint=payload.get("fingerprint", ""),
            deadline=deadline,
            attempt=payload.get("attempt", 1),
            shard_hint=payload.get("shard_hint"),
            cache_hit=payload.get("cache_hit", False),
            deduplicated=payload.get("deduplicated", False),
            short_circuited_by=payload.get("short_circuited_by"),
            tags=dict(payload.get("tags", {})),
            metadata=dict(payload.get("metadata", {})),
        )
