"""The estimation service: xMem as queryable middleware (paper §1, §6).

Wraps any estimator behind a request pipeline — fingerprint-keyed
caching, validation, rate limiting, audit logging — with a concurrent
worker pool and single-flight deduplication, so schedulers and admission
controllers can query estimates at cluster rates instead of once per
blocking call.  For traffic beyond one worker pool,
:class:`~repro.service.gateway.ServiceGateway` shards the service behind
pluggable fingerprint routing, and :mod:`repro.service.traffic` supplies
deterministic load scenarios to measure it with.

Quickstart::

    from repro import RTX_3060, WorkloadConfig
    from repro.service import EstimationService

    with EstimationService() as service:
        result = service.estimate(
            WorkloadConfig("gpt2", "adamw", 8), RTX_3060
        )
        print(result.summary())
        print(service.stats()["service"]["cache_hit_rate"])
"""

from .batch import SweepCell, estimate_many, profile_workload, sweep
from .cache import CacheStats, EstimateCache
from .context import NullLock, RequestContext, ServiceRequest
from .control import (
    DEFAULT_PRIORITY,
    QOS_CLASSES,
    AuthShimMiddleware,
    ControlPlane,
    TenantConfig,
    TenantGrant,
    TokenBucket,
    qos_class,
    qos_priority,
)
from .core import (
    Admission,
    GatewayCore,
    ServiceCore,
    SingleFlight,
    aggregate_shard_stats,
)
from .engine import EstimationService, default_middlewares
from .faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    apply_fault_directive,
)
from .resilience import (
    BreakerConfig,
    CircuitBreaker,
    HedgePolicy,
    ResilienceCore,
    ResiliencePolicy,
    RetryBudget,
    RetryPolicy,
    default_resilience,
    is_transient,
)
from .fingerprint import (
    FINGERPRINT_VERSION,
    fingerprint_request,
    request_payload,
)
from .gateway import ServiceGateway
from .routing import (
    POLICY_NAMES,
    BroadcastWarmupRouting,
    ConsistentHashRouting,
    LeastLoadedRouting,
    RandomRouting,
    RoutingPolicy,
    make_policy,
)
from .metrics import ServiceMetrics, latency_histogram, percentile
from .telemetry import (
    AuditLedger,
    InMemorySpanExporter,
    JsonLinesSpanExporter,
    LedgerEvent,
    NullSpanExporter,
    Span,
    SpanExporter,
    Telemetry,
    Tracer,
    canonical_trace_trees,
    render_histogram,
    render_loadtest_report,
    render_trend_summary,
)
from .traffic import (
    CHAOS_SCENARIOS,
    SCENARIO_NAMES,
    TENANT_SCENARIOS,
    ReplayReport,
    SyntheticEstimator,
    TrafficRequest,
    TrafficTrace,
    chaos_plan,
    generate_traffic,
    make_control,
    replay,
    tenant_configs,
    workload_catalog,
)
from .aio import (
    AsyncEstimationService,
    AsyncServiceGateway,
    estimate_many_async,
    replay_async,
)
from .procpool import (
    MAX_WORKER_REDISPATCHES,
    PoolSupervisor,
    ProcEstimationService,
    ProcServiceGateway,
    default_estimator_factory,
    with_artifact_store,
)
from .wire import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    RemoteServiceError,
    WireProtocolError,
    encode_frame,
)
from .tcp import (
    AsyncTcpServiceClient,
    TcpEstimationServer,
    TcpServerThread,
    TcpServiceClient,
)
from .middleware import (
    AuditLogMiddleware,
    CacheMiddleware,
    DeadlineMiddleware,
    MiddlewareChain,
    RateLimitMiddleware,
    ServiceMiddleware,
    TimingMiddleware,
    ValidationMiddleware,
)

__all__ = [
    "Admission",
    "AsyncEstimationService",
    "AsyncServiceGateway",
    "AsyncTcpServiceClient",
    "AuditLedger",
    "AuditLogMiddleware",
    "AuthShimMiddleware",
    "BreakerConfig",
    "BroadcastWarmupRouting",
    "CHAOS_SCENARIOS",
    "CacheMiddleware",
    "CacheStats",
    "CircuitBreaker",
    "ConsistentHashRouting",
    "ControlPlane",
    "DEFAULT_PRIORITY",
    "DeadlineMiddleware",
    "EstimateCache",
    "EstimationService",
    "FAULT_KINDS",
    "FINGERPRINT_VERSION",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FrameDecoder",
    "GatewayCore",
    "HedgePolicy",
    "InMemorySpanExporter",
    "JsonLinesSpanExporter",
    "LeastLoadedRouting",
    "LedgerEvent",
    "MAX_FRAME_BYTES",
    "MAX_WORKER_REDISPATCHES",
    "MiddlewareChain",
    "NullLock",
    "NullSpanExporter",
    "POLICY_NAMES",
    "QOS_CLASSES",
    "PoolSupervisor",
    "ProcEstimationService",
    "ProcServiceGateway",
    "RandomRouting",
    "RateLimitMiddleware",
    "RemoteServiceError",
    "ReplayReport",
    "RequestContext",
    "ResilienceCore",
    "ResiliencePolicy",
    "RetryBudget",
    "RetryPolicy",
    "RoutingPolicy",
    "SCENARIO_NAMES",
    "ServiceCore",
    "ServiceGateway",
    "ServiceMetrics",
    "ServiceMiddleware",
    "ServiceRequest",
    "SingleFlight",
    "Span",
    "SpanExporter",
    "SweepCell",
    "SyntheticEstimator",
    "TENANT_SCENARIOS",
    "TcpEstimationServer",
    "TcpServerThread",
    "TcpServiceClient",
    "Telemetry",
    "TenantConfig",
    "TenantGrant",
    "TimingMiddleware",
    "TokenBucket",
    "Tracer",
    "TrafficRequest",
    "TrafficTrace",
    "ValidationMiddleware",
    "WireProtocolError",
    "aggregate_shard_stats",
    "apply_fault_directive",
    "canonical_trace_trees",
    "chaos_plan",
    "default_estimator_factory",
    "with_artifact_store",
    "default_middlewares",
    "default_resilience",
    "encode_frame",
    "estimate_many",
    "estimate_many_async",
    "fingerprint_request",
    "generate_traffic",
    "is_transient",
    "latency_histogram",
    "make_control",
    "make_policy",
    "percentile",
    "profile_workload",
    "qos_class",
    "qos_priority",
    "render_histogram",
    "render_loadtest_report",
    "render_trend_summary",
    "replay",
    "replay_async",
    "request_payload",
    "sweep",
    "tenant_configs",
    "workload_catalog",
]
