"""The estimation service: xMem as queryable middleware (paper §1, §6).

Wraps any estimator behind a request pipeline — fingerprint-keyed
caching, validation, rate limiting, audit logging — with a concurrent
worker pool and single-flight deduplication, so schedulers and admission
controllers can query estimates at cluster rates instead of once per
blocking call.

Quickstart::

    from repro import RTX_3060, WorkloadConfig
    from repro.service import EstimationService

    with EstimationService() as service:
        result = service.estimate(
            WorkloadConfig("gpt2", "adamw", 8), RTX_3060
        )
        print(result.summary())
        print(service.stats()["service"]["cache_hit_rate"])
"""

from .batch import SweepCell, estimate_many, profile_workload, sweep
from .cache import CacheStats, EstimateCache
from .engine import EstimationService, default_middlewares
from .fingerprint import (
    FINGERPRINT_VERSION,
    fingerprint_request,
    request_payload,
)
from .metrics import ServiceMetrics, percentile
from .middleware import (
    AuditLogMiddleware,
    CacheMiddleware,
    MiddlewareChain,
    RateLimitMiddleware,
    RequestContext,
    ServiceMiddleware,
    ServiceRequest,
    TimingMiddleware,
    ValidationMiddleware,
)

__all__ = [
    "AuditLogMiddleware",
    "CacheMiddleware",
    "CacheStats",
    "EstimateCache",
    "EstimationService",
    "FINGERPRINT_VERSION",
    "MiddlewareChain",
    "RateLimitMiddleware",
    "RequestContext",
    "ServiceMetrics",
    "ServiceMiddleware",
    "ServiceRequest",
    "SweepCell",
    "TimingMiddleware",
    "ValidationMiddleware",
    "default_middlewares",
    "estimate_many",
    "fingerprint_request",
    "percentile",
    "profile_workload",
    "request_payload",
    "sweep",
]
