"""The estimation service: xMem as queryable middleware (paper §1, §6).

Wraps any estimator behind a request pipeline — fingerprint-keyed
caching, validation, rate limiting, audit logging — with a concurrent
worker pool and single-flight deduplication, so schedulers and admission
controllers can query estimates at cluster rates instead of once per
blocking call.  For traffic beyond one worker pool,
:class:`~repro.service.gateway.ServiceGateway` shards the service behind
pluggable fingerprint routing, and :mod:`repro.service.traffic` supplies
deterministic load scenarios to measure it with.

Quickstart::

    from repro import RTX_3060, WorkloadConfig
    from repro.service import EstimationService

    with EstimationService() as service:
        result = service.estimate(
            WorkloadConfig("gpt2", "adamw", 8), RTX_3060
        )
        print(result.summary())
        print(service.stats()["service"]["cache_hit_rate"])
"""

from .batch import SweepCell, estimate_many, profile_workload, sweep
from .cache import CacheStats, EstimateCache
from .engine import EstimationService, default_middlewares
from .fingerprint import (
    FINGERPRINT_VERSION,
    fingerprint_request,
    request_payload,
)
from .gateway import (
    POLICY_NAMES,
    BroadcastWarmupRouting,
    ConsistentHashRouting,
    LeastLoadedRouting,
    RandomRouting,
    RoutingPolicy,
    ServiceGateway,
    aggregate_shard_stats,
    make_policy,
)
from .metrics import ServiceMetrics, percentile
from .traffic import (
    SCENARIO_NAMES,
    ReplayReport,
    SyntheticEstimator,
    TrafficRequest,
    TrafficTrace,
    generate_traffic,
    replay,
    workload_catalog,
)
from .middleware import (
    AuditLogMiddleware,
    CacheMiddleware,
    MiddlewareChain,
    RateLimitMiddleware,
    RequestContext,
    ServiceMiddleware,
    ServiceRequest,
    TimingMiddleware,
    ValidationMiddleware,
)

__all__ = [
    "AuditLogMiddleware",
    "BroadcastWarmupRouting",
    "CacheMiddleware",
    "CacheStats",
    "ConsistentHashRouting",
    "EstimateCache",
    "EstimationService",
    "FINGERPRINT_VERSION",
    "LeastLoadedRouting",
    "MiddlewareChain",
    "POLICY_NAMES",
    "RandomRouting",
    "RateLimitMiddleware",
    "ReplayReport",
    "RequestContext",
    "RoutingPolicy",
    "SCENARIO_NAMES",
    "ServiceGateway",
    "ServiceMetrics",
    "ServiceMiddleware",
    "ServiceRequest",
    "SweepCell",
    "SyntheticEstimator",
    "TimingMiddleware",
    "TrafficRequest",
    "TrafficTrace",
    "ValidationMiddleware",
    "aggregate_shard_stats",
    "default_middlewares",
    "estimate_many",
    "fingerprint_request",
    "generate_traffic",
    "make_policy",
    "percentile",
    "profile_workload",
    "replay",
    "request_payload",
    "sweep",
    "workload_catalog",
]
