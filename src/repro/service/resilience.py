"""Resilience policies: retry/backoff, circuit breaking, hedging.

The recovery side of the fault plane (:mod:`repro.service.faults`),
expressed — like every other policy in this stack — as sans-IO decision
objects the drivers consult.  Nothing here sleeps, spawns, or schedules:
:class:`RetryPolicy` *computes* a backoff delay, :class:`CircuitBreaker`
*answers* ``allow()``, :class:`ResilienceCore` *chooses* a shard.  The
gateway shells own the timers (``threading.Timer`` on the thread/procpool
substrate, ``loop.call_later`` on asyncio) and call back in.

Determinism is a design axis, not an accident.  Breakers default to
*deferred* mode: attempt outcomes are buffered and applied — sorted by
the gateway submission sequence that produced them — only when the
gateway goes idle (a wave boundary in every replay harness).  State
transitions, and therefore every re-route decision, then depend only on
the request stream and the fault plan, never on completion
interleaving.  Backoff jitter is a hash of ``(fingerprint, attempt)``
rather than a PRNG draw, so retry schedules replay exactly.  Pass
``deferred=False`` for a live breaker that reacts mid-wave when
reproducibility is not required.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from concurrent.futures.process import BrokenProcessPool

from ..errors import (
    ConnectionLostError,
    InjectedFaultError,
    RateLimitExceededError,
    RequestRejectedError,
)

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BreakerConfig",
    "CircuitBreaker",
    "HedgePolicy",
    "ResilienceCore",
    "ResiliencePolicy",
    "RetryBudget",
    "RetryPolicy",
    "default_resilience",
    "is_transient",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

#: Transient failures worth another attempt.  Rejections
#: (:class:`RequestRejectedError`, which includes deadline misses) are
#: excluded — re-sending an invalid or expired request cannot succeed.
_TRANSIENT_ERRORS = (
    InjectedFaultError,
    ConnectionLostError,
    BrokenProcessPool,
    RateLimitExceededError,
)


def is_transient(error: BaseException) -> bool:
    """Whether a failure says something recoverable happened.

    Transient failures are worth retrying and count against the shard's
    circuit breaker; rejections (validation, deadline) are terminal and
    say nothing about shard health.
    """
    if isinstance(error, RequestRejectedError):
        return False
    return isinstance(error, _TRANSIENT_ERRORS)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic, fingerprint-keyed jitter."""

    #: total attempts including the first (3 = first + two retries)
    max_attempts: int = 3
    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.1
    #: jitter fraction in [0, 1]: delay *= 1 + jitter * u(fingerprint)
    jitter: float = 0.5

    def retryable(self, error: BaseException) -> bool:
        return is_transient(error)

    def delay(self, fingerprint: str, attempt: int) -> float:
        """Backoff before ``attempt`` (2 = first retry).

        Jitter decorrelates retry herds without a PRNG: the uniform
        draw is a hash of ``(fingerprint, attempt)``, so the same
        request retries on the same schedule in every run.
        """
        step = max(0, attempt - 2)
        base = min(self.max_delay, self.base_delay * self.multiplier**step)
        token = hashlib.sha256(
            f"{fingerprint}#{attempt}".encode("utf-8")
        ).digest()
        uniform = int.from_bytes(token[:8], "big") / 2**64
        return base * (1.0 + self.jitter * uniform)


class RetryBudget:
    """Global retry-budget: retries may not exceed a fraction of traffic.

    Classic ratio-plus-burst shape: at most ``burst + ratio * requests``
    retries total.  A binding budget is reactively fair but *not*
    replay-deterministic (spend order follows completion order), so the
    determinism tests run without one; the chaos defaults keep it
    generous enough to never bind under planned fault rates.
    """

    __slots__ = ("ratio", "burst", "requests", "spent", "denied")

    def __init__(self, ratio: float = 0.2, burst: int = 16):
        self.ratio = ratio
        self.burst = burst
        self.requests = 0
        self.spent = 0
        self.denied = 0

    def note_request(self) -> None:
        self.requests += 1

    def allow(self) -> bool:
        if self.spent < self.burst + self.ratio * self.requests:
            return True
        self.denied += 1
        return False

    def spend(self) -> None:
        self.spent += 1

    def snapshot(self) -> dict:
        return {
            "ratio": self.ratio,
            "burst": self.burst,
            "spent": self.spent,
            "denied": self.denied,
        }


@dataclass(frozen=True)
class BreakerConfig:
    """Knobs for one per-shard :class:`CircuitBreaker`."""

    #: consecutive failures that trip CLOSED -> OPEN
    failure_threshold: int = 4
    #: gateway submissions an OPEN breaker sits out before HALF_OPEN
    cooldown_ticks: int = 24
    #: buffer outcomes and apply at idle boundaries (deterministic) vs.
    #: apply immediately on each completion (reactive)
    deferred: bool = True


class CircuitBreaker:
    """Per-shard health: CLOSED -> OPEN -> HALF_OPEN -> CLOSED.

    Time is measured in gateway submission *ticks*, not wall-clock —
    the cooldown of an open breaker elapses as traffic flows, which is
    both deterministic and load-proportional.  HALF_OPEN admits exactly
    one probe; its outcome closes or re-opens the circuit.
    """

    __slots__ = (
        "config",
        "state",
        "_consecutive",
        "_cooldown_left",
        "_probe_inflight",
        "_buffer",
        "opens",
        "closes",
    )

    def __init__(self, config: BreakerConfig):
        self.config = config
        self.state = BREAKER_CLOSED
        self._consecutive = 0
        self._cooldown_left = 0
        self._probe_inflight = False
        self._buffer: list[tuple[int, bool]] = []
        self.opens = 0
        self.closes = 0

    def allow(self) -> bool:
        """May a request be dispatched to this shard right now?"""
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_HALF_OPEN and not self._probe_inflight:
            self._probe_inflight = True
            return True
        return False

    def record(self, seq: int, ok: bool) -> Optional[str]:
        """Note an attempt outcome; returns a transition name if live.

        In deferred mode the outcome is buffered until :meth:`sync`;
        ``seq`` (the gateway submission sequence) is the sort key that
        makes the deferred application order run-independent.
        """
        if self.config.deferred:
            self._buffer.append((seq, ok))
            return None
        return self._apply(ok)

    def sync(self) -> list[str]:
        """Apply buffered outcomes in submission order (deferred mode)."""
        if not self._buffer:
            return []
        self._buffer.sort(key=lambda item: item[0])
        transitions = []
        for _, ok in self._buffer:
            transition = self._apply(ok)
            if transition is not None:
                transitions.append(transition)
        self._buffer.clear()
        return transitions

    def tick(self) -> Optional[str]:
        """One gateway submission elapsed; cool an open breaker down."""
        if self.state == BREAKER_OPEN:
            self._cooldown_left -= 1
            if self._cooldown_left <= 0:
                self.state = BREAKER_HALF_OPEN
                self._probe_inflight = False
                return BREAKER_HALF_OPEN
        return None

    def _apply(self, ok: bool) -> Optional[str]:
        if ok:
            self._consecutive = 0
            if self.state == BREAKER_HALF_OPEN:
                self.state = BREAKER_CLOSED
                self._probe_inflight = False
                self.closes += 1
                return BREAKER_CLOSED
            return None
        self._consecutive += 1
        if self.state == BREAKER_CLOSED:
            if self._consecutive >= self.config.failure_threshold:
                self._trip()
                return BREAKER_OPEN
        elif self.state == BREAKER_HALF_OPEN:
            self._trip()
            return BREAKER_OPEN
        return None

    def _trip(self) -> None:
        self.state = BREAKER_OPEN
        self._cooldown_left = self.config.cooldown_ticks
        self._probe_inflight = False
        self._consecutive = 0
        self.opens += 1


@dataclass(frozen=True)
class HedgePolicy:
    """When and how to dispatch a duplicate of a slow request.

    Fixed ``after_seconds`` when set; otherwise the threshold is the
    ``percentile`` of observed shard latencies (never below
    ``floor_seconds``, so cold starts do not hedge everything).
    """

    after_seconds: Optional[float] = None
    percentile: float = 95.0
    floor_seconds: float = 0.005
    max_hedges: int = 1

    def threshold(self, samples: list[float]) -> float:
        if self.after_seconds is not None:
            return self.after_seconds
        if not samples:
            return self.floor_seconds
        ordered = sorted(samples)
        rank = max(
            0, min(len(ordered) - 1, int(len(ordered) * self.percentile / 100.0))
        )
        return max(self.floor_seconds, ordered[rank])


@dataclass(frozen=True)
class ResiliencePolicy:
    """The policy bundle a gateway is constructed with.

    Every member is optional: ``retry=None`` disables retries,
    ``breaker=None`` disables circuit breaking (and re-routing),
    ``hedge=None`` disables hedged dispatch, ``budget=None`` removes the
    global retry cap.  A gateway constructed without any
    ``ResiliencePolicy`` at all runs the exact pre-resilience code path.
    """

    retry: Optional[RetryPolicy] = field(default_factory=RetryPolicy)
    budget: Optional[RetryBudget] = None
    breaker: Optional[BreakerConfig] = field(default_factory=BreakerConfig)
    hedge: Optional[HedgePolicy] = None


def default_resilience(deferred: bool = True) -> ResiliencePolicy:
    """The chaos-lane default: retries + breakers, no hedging.

    ``deferred`` picks breaker mode — keep the default for reproducible
    replays; pass ``False`` for substrates without clean wave boundaries.
    """
    return ResiliencePolicy(
        retry=RetryPolicy(),
        budget=RetryBudget(ratio=1.0, burst=64),
        breaker=BreakerConfig(deferred=deferred),
        hedge=None,
    )


class ResilienceCore:
    """Per-gateway resilience state: one breaker per shard + counters.

    All mutation must happen under the driver's serialization point (the
    gateway lock / the event loop) — this object is sans-IO and adds no
    locking, like :class:`~repro.service.core.GatewayCore` itself.
    """

    def __init__(self, num_shards: int, policy: ResiliencePolicy):
        self.policy = policy
        self.num_shards = num_shards
        self.breakers: list[Optional[CircuitBreaker]] = [
            CircuitBreaker(policy.breaker) if policy.breaker else None
            for _ in range(num_shards)
        ]
        self.counters = {
            "retries": 0,
            "reroutes": 0,
            "hedges": 0,
            "hedge_wins": 0,
            "hedge_losers": 0,
            "breaker_opens": 0,
            "breaker_closes": 0,
            "shed_open_circuit": 0,
            "shed_on_drain": 0,
        }

    # -- routing ---------------------------------------------------------

    def tick(self) -> list[tuple[int, str]]:
        """Advance breaker cooldowns by one submission; returns transitions."""
        transitions = []
        for shard, breaker in enumerate(self.breakers):
            if breaker is not None:
                transition = breaker.tick()
                if transition is not None:
                    transitions.append((shard, transition))
        if self.policy.budget is not None:
            self.policy.budget.note_request()
        return transitions

    def shard_allowed(self, shard: int) -> bool:
        breaker = self.breakers[shard]
        return breaker is None or breaker.allow()

    def choose_shard(self, primary: int) -> tuple[Optional[int], bool]:
        """Route around open circuits: ``(target, was_rerouted)``.

        Deterministic scan order from the primary; ``(None, True)`` when
        every shard's breaker refuses — the caller sheds with
        :class:`~repro.errors.CircuitOpenError`.
        """
        if self.shard_allowed(primary):
            return primary, False
        for offset in range(1, self.num_shards):
            candidate = (primary + offset) % self.num_shards
            if self.shard_allowed(candidate):
                self.counters["reroutes"] += 1
                return candidate, True
        return None, True

    def retry_target(self, current: int, attempt: int) -> Optional[int]:
        """Where attempt ``attempt`` should go after a failure on ``current``.

        Prefers moving off the failed shard (scan starts one past it),
        falling back to the failed shard itself only if it is the sole
        healthy one.
        """
        for offset in range(1, self.num_shards + 1):
            candidate = (current + offset) % self.num_shards
            if self.shard_allowed(candidate):
                return candidate
        return None

    def hedge_target(self, current: int) -> Optional[int]:
        """A healthy shard other than ``current`` for a hedged duplicate."""
        for offset in range(1, self.num_shards):
            candidate = (current + offset) % self.num_shards
            if self.shard_allowed(candidate):
                return candidate
        return None

    # -- outcomes --------------------------------------------------------

    def record_outcome(self, shard: int, seq: int, ok: bool) -> Optional[str]:
        breaker = self.breakers[shard]
        if breaker is None:
            return None
        transition = breaker.record(seq, ok)
        self._count_transition(transition)
        return transition

    def sync(self) -> list[tuple[int, str]]:
        """Apply deferred breaker outcomes (call at idle boundaries)."""
        transitions = []
        for shard, breaker in enumerate(self.breakers):
            if breaker is not None:
                for transition in breaker.sync():
                    self._count_transition(transition)
                    transitions.append((shard, transition))
        return transitions

    def _count_transition(self, transition: Optional[str]) -> None:
        if transition == BREAKER_OPEN:
            self.counters["breaker_opens"] += 1
        elif transition == BREAKER_CLOSED:
            self.counters["breaker_closes"] += 1

    # -- retry decisions -------------------------------------------------

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        retry = self.policy.retry
        if retry is None or attempt >= retry.max_attempts:
            return False
        if not retry.retryable(error):
            return False
        budget = self.policy.budget
        return budget is None or budget.allow()

    def spend_retry(self) -> None:
        self.counters["retries"] += 1
        if self.policy.budget is not None:
            self.policy.budget.spend()

    # -- reporting -------------------------------------------------------

    def breaker_states(self) -> list[Optional[str]]:
        return [
            breaker.state if breaker is not None else None
            for breaker in self.breakers
        ]

    def snapshot(self) -> dict:
        snap = dict(self.counters)
        snap["breaker_states"] = self.breaker_states()
        if self.policy.budget is not None:
            snap["budget"] = self.policy.budget.snapshot()
        return snap
