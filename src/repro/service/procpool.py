"""The process-pool execution driver over the sans-IO service core.

Third substrate, same policy.  The thread driver (:mod:`.engine`) and the
asyncio driver (:mod:`.aio`) both execute estimation under one GIL, so a
CPU-bound estimator — the simulate-stage-dominated cold path of the real
pipeline — cannot scale past one core no matter how many workers the
pool has.  :class:`ProcEstimationService` keeps every *policy* step
inline in the parent process (fingerprinting, middleware hooks, cache
lookup and population, single-flight dedup, metrics — all driven through
the identical :class:`~repro.service.core.ServiceCore`) and dispatches
only the cache-miss estimator invocation to a pool of worker processes.

Division of labour:

* **parent** — owns the cache, the chain, the single-flight table, and
  the metrics.  Hooks run on the submitting thread; completion hooks
  (``on_result`` → cache population → accounting) run on the pool's
  callback thread, under the ``threading.Lock`` primitives this driver
  binds onto the core, exactly like the thread driver's worker side.
* **workers** — each process builds its estimator **once**, via the
  pool initializer (:func:`_init_worker`), from a picklable factory.
  Stage caches (:class:`~repro.core.pipeline.PipelineCache`) therefore
  warm *inside* each worker and persist across requests.  A worker only
  ever sees the pickle-safe request payload
  (:meth:`~repro.service.context.ServiceRequest.as_dict` + the optional
  shared trace) and returns ``(worker_pid, result)``.

Cross-process metrics: the result objects come back carrying their
``stage_seconds`` breakdown (``compare=False``, so byte-identity with
the other drivers is preserved), and the parent merges them through the
existing :meth:`~repro.service.metrics.ServiceMetrics.record_stages` /
:func:`~repro.service.core.aggregate_shard_stats` path — a fleet
dashboard cannot tell which substrate produced the numbers.  Per-worker
request counts are additionally tracked via
:meth:`~repro.service.metrics.ServiceMetrics.record_worker`.

:class:`ProcServiceGateway` shards the service exactly like the thread
gateway — same :class:`~repro.service.core.GatewayCore` admission/shed/
drain state machine, same routing policies (which stay in the parent and
are never pickled) — but all shards share **one** process pool, so the
process count is bounded by ``pool_workers`` rather than
``shards × workers``.

Start method: ``forkserver`` where the platform offers it (workers fork
from a clean single-threaded server process — the parent here is
multi-threaded by design, so plain ``fork`` risks inheriting a held
lock), then ``fork``, then ``spawn`` — overridable via ``mp_context``.
Except under plain ``fork``, the estimator factory must be picklable: a
module-level function or a :func:`functools.partial` over an importable
callable (``partial(XMemEstimator, iterations=2, curve=False)``), not a
lambda.
"""

from __future__ import annotations

import inspect
import multiprocessing
import os
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from typing import Callable, Optional, Sequence

from ..core.estimator import XMemEstimator
from ..errors import ServiceClosedError
from ..trace.reader import Trace
from ..workload import DeviceSpec, WorkloadConfig
from .batch import estimate_many as _estimate_many
from .cache import EstimateCache
from .context import RequestContext, ServiceRequest
from .core import (
    ServiceCore,
    adopt_chain_cache,
    compute_fingerprint,
    estimator_accepts_trace,
    invoke_estimator,
)
from .faults import FaultPlan
from .gateway import (
    DEFAULT_MAX_QUEUE_DEPTH,
    DEFAULT_NUM_SHARDS,
    SyncGatewayShell,
)
from .metrics import ServiceMetrics
from .middleware import (
    MiddlewareChain,
    ServiceMiddleware,
    default_middlewares,
)
from .resilience import ResiliencePolicy
from .routing import RoutingPolicy
from .telemetry import ledger as ledger_events
from .telemetry.spans import worker_estimate_spans

__all__ = [
    "DEFAULT_POOL_WORKERS",
    "MAX_WORKER_REDISPATCHES",
    "PoolSupervisor",
    "ProcEstimationService",
    "ProcServiceGateway",
    "default_estimator_factory",
    "with_artifact_store",
]

DEFAULT_POOL_WORKERS = 4

#: How many times one request may be re-dispatched after worker deaths
#: before its failure surfaces to the caller.  A request that kills
#: every worker it touches (a poison pill) must not rebuild pools
#: forever.
MAX_WORKER_REDISPATCHES = 2

#: Factory the drivers fall back to: the real pipeline, curve-less (the
#: serving tier reads peaks; skipping curve materialization keeps the
#: result payload small on the wire).  Module-level so it pickles.
default_estimator_factory = partial(XMemEstimator, curve=False)


def with_artifact_store(
    factory: Callable[[], object], artifact_store
) -> Callable[[], object]:
    """Bind a persistent artifact-store *path* into a picklable factory.

    The store itself holds a sqlite connection and cannot cross the
    process boundary — the path (a plain string) can, riding the
    ``initargs`` pickle into :func:`_init_worker`, where each worker's
    estimator opens its own connection to the shared file.  Raises
    ``TypeError`` up front when the factory cannot accept the knob
    (e.g. the synthetic loadtest estimator), rather than failing inside
    every worker process.
    """
    if artifact_store is None:
        return factory
    path = os.fspath(artifact_store)
    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):
        parameters = None  # builtins/opaque callables: let it ride
    if parameters is not None:
        accepts = "artifact_store" in parameters or any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in parameters.values()
        )
        if not accepts:
            raise TypeError(
                f"estimator factory {factory!r} does not accept "
                "artifact_store="
            )
    return partial(factory, artifact_store=path)


# ----------------------------------------------------------------------
# worker side (runs in the pool processes)
# ----------------------------------------------------------------------

#: Per-process estimator, built once by :func:`_init_worker`.  Module
#: globals are the standard idiom for pool-worker state: the initializer
#: runs before any work item, and every subsequent task in this process
#: reuses the same instance — which is what lets stage caches warm.
_WORKER_ESTIMATOR = None
_WORKER_ACCEPTS_TRACE = False


def _init_worker(factory: Callable[[], object]) -> None:
    """Pool initializer: construct this process's estimator exactly once."""
    global _WORKER_ESTIMATOR, _WORKER_ACCEPTS_TRACE
    _WORKER_ESTIMATOR = factory()
    _WORKER_ACCEPTS_TRACE = estimator_accepts_trace(_WORKER_ESTIMATOR)


def _worker_estimate(payload: dict, trace: Optional[Trace]):
    """Run one cache-miss estimation inside a worker process.

    ``payload`` is the pickle-safe envelope
    (:meth:`ServiceRequest.as_dict`); the trace rides alongside because
    it is a large out-of-band artifact, not request identity.  Returns
    ``(pid, result, span_payloads)`` so the parent can attribute work to
    workers and re-attach the worker-side spans to the request's trace.

    When the envelope's metadata bag carries a span context (the parent
    had tracing enabled), the worker times the estimate and builds the
    ``estimate`` span plus its ``stage:*`` children locally, shipping
    them back as plain dicts — tracing crosses the pickle boundary the
    same way the request does.  Without a span context this is free.
    """
    request = ServiceRequest.from_dict(payload, trace=trace)
    fault = request.metadata.get("fault")
    if fault and fault.get("kind") == "worker_kill":
        # the injected fault this substrate can make *real*: die exactly
        # like a segfault/OOM-killed worker would — no cleanup, no
        # exception, just a vanished process.  The parent sees
        # BrokenProcessPool and exercises the recovery path.
        os._exit(1)
    span_context = request.metadata.get("telemetry")
    started = time.perf_counter() if span_context else 0.0
    result = invoke_estimator(
        _WORKER_ESTIMATOR, request, _WORKER_ACCEPTS_TRACE
    )
    pid = multiprocessing.current_process().pid
    span_payloads = None
    if span_context:
        span_payloads = [
            span.as_dict()
            for span in worker_estimate_spans(
                span_context,
                pid,
                started,
                time.perf_counter(),
                stage_seconds=getattr(result, "stage_seconds", None),
            )
        ]
    return pid, result, span_payloads


def _resolve_context(mp_context: Optional[str]):
    """The multiprocessing context for a pool.

    Default preference: ``forkserver`` (workers fork from a clean,
    single-threaded server — immune to the classic fork-while-threaded
    deadlock, since this driver is multi-threaded by design: caller
    threads plus the pool's callback thread, all holding locks), then
    ``fork`` (platforms without forkserver), then ``spawn``.  Pass
    ``mp_context="fork"`` explicitly to trade that safety for the
    cheapest possible worker start-up on a single-threaded parent.
    """
    if mp_context is not None:
        return multiprocessing.get_context(mp_context)
    methods = multiprocessing.get_all_start_methods()
    for method in ("forkserver", "fork"):
        if method in methods:
            return multiprocessing.get_context(method)
    return multiprocessing.get_context("spawn")


def make_pool(
    max_workers: int,
    estimator_factory: Callable[[], object],
    mp_context: Optional[str] = None,
) -> ProcessPoolExecutor:
    """A worker pool whose processes each own one warmed estimator."""
    if max_workers < 1:
        raise ValueError("process pool needs at least one worker")
    return ProcessPoolExecutor(
        max_workers=max_workers,
        mp_context=_resolve_context(mp_context),
        initializer=_init_worker,
        initargs=(estimator_factory,),
    )


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------


class PoolSupervisor:
    """Owns a process pool and replaces it after a worker death.

    A :class:`~concurrent.futures.process.BrokenProcessPool` condemns the
    whole executor: every queued and in-flight future fails and no new
    work is accepted.  The supervisor is the single place a pool gets
    swapped for a fresh one, so N shards sharing one pool (the gateway
    arrangement) race their recoveries safely: ``replace`` is
    identity-checked under a lock — the first caller rebuilds, the rest
    observe the already-fresh pool and just re-dispatch onto it.
    """

    def __init__(
        self,
        max_workers: int,
        estimator_factory: Callable[[], object],
        mp_context: Optional[str] = None,
    ):
        self.max_workers = max_workers
        self.estimator_factory = estimator_factory
        self.mp_context = mp_context
        self._lock = threading.Lock()
        self._pool = make_pool(max_workers, estimator_factory, mp_context)
        self.generation = 0
        self.rebuilds = 0
        self._closed = False

    def current(self) -> ProcessPoolExecutor:
        """The live pool to dispatch onto."""
        with self._lock:
            return self._pool

    def replace(self, broken: ProcessPoolExecutor) -> ProcessPoolExecutor:
        """Swap ``broken`` for a fresh pool; idempotent per generation.

        Returns the pool to re-dispatch onto.  Only the caller holding
        the *current* broken pool triggers a rebuild — late arrivals
        (other shards whose futures failed off the same dead worker)
        get the replacement that already exists.
        """
        with self._lock:
            if self._closed:
                return self._pool
            if self._pool is broken:
                self._pool = make_pool(
                    self.max_workers, self.estimator_factory, self.mp_context
                )
                self.generation += 1
                self.rebuilds += 1
                broken.shutdown(wait=False)
            return self._pool

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._closed = True
            self._pool.shutdown(wait=wait)

    def snapshot(self) -> dict:
        return {
            "pool_workers": self.max_workers,
            "pool_generation": self.generation,
            "pool_rebuilds": self.rebuilds,
        }


class ProcEstimationService:
    """Serves estimation requests with estimator work in child processes.

    Mirrors :class:`~repro.service.engine.EstimationService`'s surface
    (``submit`` / ``estimate`` / ``estimate_many`` / ``stats`` /
    ``drain`` / ``close`` / context manager) and its behaviour —
    byte-identical results, synchronous rejections, single-flight
    dedup — but takes an ``estimator_factory`` instead of an estimator
    instance: the factory is shipped to each worker process, while the
    parent keeps one *template* instance for fingerprinting and the bulk
    planner's shared-profile work.

    ``executor`` lets a gateway share one pool across shards; the
    service then does not own (and will not shut down) the pool.
    """

    def __init__(
        self,
        estimator_factory: Optional[Callable[[], object]] = None,
        middlewares: Optional[Sequence[ServiceMiddleware]] = None,
        cache: Optional[EstimateCache] = None,
        max_workers: int = DEFAULT_POOL_WORKERS,
        metrics: Optional[ServiceMetrics] = None,
        mp_context: Optional[str] = None,
        executor: Optional[ProcessPoolExecutor] = None,
        telemetry=None,
        supervisor: Optional[PoolSupervisor] = None,
        artifact_store=None,
    ):
        if executor is None and supervisor is None and max_workers < 1:
            raise ValueError("service needs at least one worker")
        self.estimator_factory = (
            estimator_factory
            if estimator_factory is not None
            else default_estimator_factory
        )
        if artifact_store is not None:
            # every worker (and the parent template) opens the same store
            # file: a 4-worker sweep warms one cache instead of four
            self.estimator_factory = with_artifact_store(
                self.estimator_factory, artifact_store
            )
        # the template never estimates; it answers fingerprint inputs
        # (name/version/allocator config), `accepts_trace`, and the bulk
        # planner's profile calls — all parent-side concerns
        self.estimator = self.estimator_factory()
        self.cache = cache if cache is not None else EstimateCache()
        if middlewares is None:
            middlewares = default_middlewares(self.cache)
        else:
            self.cache = adopt_chain_cache(middlewares, self.cache)
        self.chain = MiddlewareChain(middlewares)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        # completion hooks run on the pool's callback thread while new
        # submissions run hooks on caller threads: bind real locks, the
        # same regime as the thread driver
        self.cache.bind_lock(threading.Lock)
        self.chain.bind_lock(threading.Lock)
        self.telemetry = telemetry
        self.core = ServiceCore(
            self.chain,
            self.cache,
            self.metrics,
            tracer=telemetry.tracer if telemetry is not None else None,
            ledger=telemetry.ledger if telemetry is not None else None,
        )
        # three substrate arrangements, in precedence order: a shared
        # supervisor (gateway shards — worker-death recovery enabled and
        # coordinated across shards), a bare executor (caller-owned, no
        # recovery: the service cannot rebuild a pool it does not own),
        # or an internal supervisor (standalone service, recovery on)
        self._raw_executor = executor if supervisor is None else None
        self._supervisor = supervisor
        self._owns_executor = executor is None and supervisor is None
        if self._owns_executor:
            self._supervisor = PoolSupervisor(
                max_workers, self.estimator_factory, mp_context
            )
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._dispatched = 0  # estimator invocations in flight in the pool
        self._draining = False
        self._closed = False
        self._accepts_trace = estimator_accepts_trace(self.estimator)

    # ------------------------------------------------------------------
    # public API (mirrors EstimationService)
    # ------------------------------------------------------------------
    @property
    def _executor(self) -> ProcessPoolExecutor:
        """The pool to dispatch onto right now (post-recovery aware)."""
        if self._supervisor is not None:
            return self._supervisor.current()
        return self._raw_executor

    @property
    def accepts_trace(self) -> bool:
        """Whether the wrapped estimator can reuse a pre-computed trace."""
        return self._accepts_trace

    def fingerprint(
        self, workload: WorkloadConfig, device: DeviceSpec
    ) -> str:
        """The cache/single-flight key this service uses for a request."""
        return compute_fingerprint(self.estimator, workload, device)

    def submit(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace] = None,
        fingerprint: Optional[str] = None,
        deadline: Optional[float] = None,
        metadata: Optional[dict] = None,
        tenant: str = "",
        priority: int = 1,
    ) -> Future:
        """Enqueue one request; returns a future of the EstimationResult.

        Same contract as the thread driver: synchronous raise on hook
        rejection or an already-expired deadline, shared future for
        identical in-flight requests, estimator failures through the
        future.  Only the cache-miss estimator call crosses the process
        boundary.
        """
        if self._closed or self._draining:
            raise ServiceClosedError("service is closed")
        fp = (
            fingerprint
            if fingerprint is not None
            else self.fingerprint(workload, device)
        )
        request, ctx = self.core.open_request(
            workload,
            device,
            fp,
            trace=trace,
            deadline=deadline,
            metadata=metadata,
            tenant=tenant,
            priority=priority,
        )
        # an already-expired deadline is rejected before the dedup lookup:
        # piggybacking would hand the caller a result it declared useless
        self.core.check_deadline(ctx)
        with self._lock:
            inflight = self.core.inflight.get(fp)
        if inflight is not None:
            self.core.note_deduplicated(ctx)
            return inflight
        # hooks run outside the lock: cache/rate-limit state is internally
        # locked, and a hook may call back into stats() without deadlock
        admission = self.core.run_request_hooks(request, ctx)
        if admission.result is not None:
            future: Future = Future()
            future.set_result(admission.result)
            return future
        refused = False
        with self._lock:
            # re-check the intake gate under the lock: a drain() racing
            # with this submit has either already seen our _dispatched
            # slot (and waits for us) or flipped _draining first (and we
            # refuse loudly) — drain can never report quiescence while a
            # gated-in request is still on its way to the pool
            if self._closed or self._draining:
                refused = True
            else:
                # another thread may have registered this fingerprint
                # while our hooks ran
                inflight = self.core.inflight.get(fp)
                if inflight is not None:
                    self.core.note_deduplicated(ctx)
                    return inflight
                future = Future()
                self.core.inflight.claim(fp, future)
                self._dispatched += 1
        if refused:
            # the hooks already ran for this request: unwind the entered
            # layers and classify the outcome (core.refuse = on_error
            # hooks + the rejected counter + the ledger entry) so
            # counters keep reconciling — outside the lock, because
            # hooks must never run under it
            error = ServiceClosedError("service is closed")
            self.core.refuse(
                request, ctx, error, admission.depth, cause="drain_race"
            )
            raise error
        pool = self._executor
        try:
            inner = pool.submit(
                _worker_estimate, request.as_dict(), request.trace
            )
        except BaseException as error:
            # the pool broke or shut down between the gate and here:
            # release the single-flight slot so nothing piggybacks on a
            # future no worker will ever resolve, and unwind the entered
            # middleware layers (core.fail = on_error hooks + the error
            # counter) so the audit trail and counters keep reconciling
            with self._idle:
                self.core.inflight.release(fp)
                self._dispatched -= 1
                self._idle.notify_all()
            self.core.fail(request, ctx, error, admission.depth)
            future.set_exception(error)
            return future
        inner.add_done_callback(
            partial(self._on_done, request, ctx, future, admission.depth, pool)
        )
        return future

    def estimate(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace] = None,
    ):
        """Blocking request — the drop-in for ``estimator.estimate()``."""
        return self.submit(workload, device, trace=trace).result()

    def estimate_many(
        self,
        requests: Sequence[tuple[WorkloadConfig, DeviceSpec]],
        share_profiles: bool = True,
        return_exceptions: bool = False,
    ) -> list:
        """Bulk API; results in request order (see :mod:`.batch`).

        Shared-profile planning (:func:`~repro.service.batch.plan_shared_traces`)
        runs in the parent — one profile per repeated workload — and the
        trace is shipped to whichever worker handles each request.
        """
        return _estimate_many(
            self,
            requests,
            share_profiles=share_profiles,
            return_exceptions=return_exceptions,
        )

    def stats(self) -> dict:
        """Service metrics + cache counters in one JSON-ready snapshot."""
        with self._lock:
            inflight = len(self.core.inflight)
        return {
            "service": self.metrics.as_dict(),
            "cache": self.cache.stats().as_dict(),
            "inflight": inflight,
        }

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting requests and wait for in-flight estimations.

        Returns True when every dispatched estimation settled within
        ``timeout`` (None = wait forever).  No result is lost: futures
        already handed out resolve normally.  Idempotent; ``submit``
        raises afterwards.
        """
        with self._idle:
            self._draining = True
            return self._idle.wait_for(
                lambda: self._dispatched == 0, timeout=timeout
            )

    def close(self, wait: bool = True) -> None:
        """Drain (when ``wait``) and release the pool, if this service
        owns it (a gateway-shared pool is the gateway's to close)."""
        if wait:
            self.drain()
        self._draining = True
        self._closed = True
        if self._owns_executor:
            self._supervisor.shutdown(wait=wait)

    def __enter__(self) -> "ProcEstimationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # completion (runs on the pool's callback thread)
    # ------------------------------------------------------------------
    def _on_done(
        self,
        request: ServiceRequest,
        ctx: RequestContext,
        future: Future,
        depth: int,
        pool: ProcessPoolExecutor,
        inner: Future,
    ) -> None:
        redispatched = False
        try:
            try:
                worker_pid, result, span_payloads = inner.result()
            except BrokenProcessPool as error:
                # a worker died mid-request — the injected ``worker_kill``
                # or a real crash.  Rebuild the pool (identity-checked:
                # shards sharing it race here) and re-dispatch, unless
                # this request already used up its redispatch budget
                if self._redispatch(request, ctx, future, depth, pool):
                    redispatched = True
                    return
                self.core.fail(request, ctx, error, depth)
                with self._idle:
                    self.core.inflight.release(request.fingerprint)
                future.set_exception(error)
                return
            try:
                ctx.tags["worker"] = worker_pid
                if ctx.telemetry is not None and span_payloads:
                    # re-attach the worker-side estimate/stage spans,
                    # translated onto the parent clock (they arrive in
                    # the worker's perf_counter domain)
                    ctx.telemetry.attach_spans(
                        span_payloads, rebase_to=self.core.clock()
                    )
                result = self.core.finish(request, ctx, result, depth)
                # attribution only after finish: a result an on_result
                # hook rejects is classified as an error, and the
                # per-worker counts must keep summing to `computed`
                self.metrics.record_worker(worker_pid)
            except BaseException as error:
                self.core.fail(request, ctx, error, depth)
                with self._idle:
                    self.core.inflight.release(request.fingerprint)
                future.set_exception(error)
                return
            with self._idle:
                self.core.inflight.release(request.fingerprint)
            future.set_result(result)
        finally:
            if not redispatched:
                with self._idle:
                    self._dispatched -= 1
                    if self._dispatched == 0:
                        self._idle.notify_all()

    def _redispatch(
        self,
        request: ServiceRequest,
        ctx: RequestContext,
        future: Future,
        depth: int,
        broken: ProcessPoolExecutor,
    ) -> bool:
        """Re-run a request whose worker died; True when re-dispatched.

        The in-flight bookkeeping is untouched on success: the request
        keeps its single-flight slot, its ``_dispatched`` count, and its
        caller-facing future — only the substrate underneath changed.
        Any injected fault directive is stripped before the re-run (the
        kill already happened; the directive must not chase the retry),
        and the attempt number is bumped so ledger events carry the
        recovery provenance.
        """
        if self._supervisor is None:
            return False  # caller-owned pool: not ours to rebuild
        hops = ctx.tags.get("worker_redispatches", 0)
        if hops >= MAX_WORKER_REDISPATCHES:
            return False
        pool = self._supervisor.replace(broken)
        ctx.tags["worker_redispatches"] = hops + 1
        ctx.attempt += 1
        request.metadata.pop("fault", None)
        request.metadata["attempt"] = ctx.attempt
        if self.core.ledger is not None:
            self.core.ledger.record(
                ledger_events.RETRY,
                cause="worker_death",
                fingerprint=request.fingerprint,
                request_id=ctx.request_id,
                shard=self.core.shard_id,
                attributes={"layer": "service", "attempt": ctx.attempt},
            )
        try:
            inner = pool.submit(
                _worker_estimate, request.as_dict(), request.trace
            )
        except BaseException:
            return False  # the fresh pool refused too; surface the break
        inner.add_done_callback(
            partial(self._on_done, request, ctx, future, depth, pool)
        )
        return True


class ProcServiceGateway(SyncGatewayShell):
    """Routes estimation requests across N shards over one process pool.

    The gateway shell — routing under the lock, admit/shed/settle,
    warm-up replicas, condition-variable ``drain()``, fleet ``stats()``
    — is inherited verbatim from
    :class:`~repro.service.gateway.SyncGatewayShell` (the thread
    gateway's shell): the decisions are byte-for-byte the same.  What
    this class adds is the substrate: per-shard parent-side
    caches/metrics over a **single shared pool** of worker processes
    doing the estimator work.  Routing policies and their state stay in
    the parent; nothing about the policy layer is ever pickled.
    """

    def __init__(
        self,
        num_shards: int = DEFAULT_NUM_SHARDS,
        estimator_factory: Optional[Callable[[], object]] = None,
        policy: Optional[RoutingPolicy] = None,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
        pool_workers: int = DEFAULT_POOL_WORKERS,
        mp_context: Optional[str] = None,
        telemetry=None,
        resilience: Optional[ResiliencePolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        artifact_store=None,
        control=None,
    ):
        if num_shards < 1:
            raise ValueError("gateway needs at least one shard")
        factory = (
            estimator_factory
            if estimator_factory is not None
            else default_estimator_factory
        )
        if artifact_store is not None:
            factory = with_artifact_store(factory, artifact_store)
        self._supervisor = PoolSupervisor(pool_workers, factory, mp_context)
        self.pool_workers = pool_workers
        try:
            shards = tuple(
                ProcEstimationService(
                    estimator_factory=factory, supervisor=self._supervisor
                )
                for _ in range(num_shards)
            )
        except BaseException:
            self._supervisor.shutdown(wait=False)
            raise
        self._init_shell(
            shards,
            policy,
            max_queue_depth,
            telemetry=telemetry,
            resilience=resilience,
            fault_plan=fault_plan,
            control=control,
        )

    @property
    def _executor(self) -> ProcessPoolExecutor:
        """The shared pool right now (changes after worker-death rebuilds)."""
        return self._supervisor.current()

    def _shutdown_substrate(self, wait: bool) -> None:
        """The shards share the pool, so the gateway owns its shutdown."""
        self._supervisor.shutdown(wait=wait)

    def _snapshot_extra(self) -> dict:
        return self._supervisor.snapshot()
