"""Service-level metrics: counters, latency percentiles, throughput.

One :class:`ServiceMetrics` instance is owned by each
:class:`~repro.service.engine.EstimationService`; every counter mutation
is lock-protected so worker threads can report concurrently.  The
snapshot is plain JSON (``as_dict`` / ``to_json``) so it can feed
dashboards or the CLI directly.
"""

from __future__ import annotations

import json
import threading
import time
from bisect import bisect_left
from collections import deque
from typing import Callable, Mapping, Optional, Sequence

#: Latency samples kept for percentile computation (ring buffer).
DEFAULT_LATENCY_WINDOW = 4096

#: Log-scale histogram bucket upper edges (seconds): 100µs … 10s.  The
#: final rendered bucket is the implicit overflow (> the last edge).
DEFAULT_LATENCY_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def latency_histogram(
    samples: Sequence[float],
    bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
) -> dict:
    """Bucketed counts for a latency reservoir.

    Returns ``{"bounds": [...], "counts": [...]}`` where ``counts`` has
    one entry per bound (samples ``<=`` that upper edge, exclusive of
    earlier edges) plus a final overflow bucket.  This is computed once
    here so the report renderer, ledger summaries, and fleet merges all
    share one derivation instead of re-binning raw reservoirs.
    """
    edges = list(bounds)
    counts = [0] * (len(edges) + 1)
    for sample in samples:
        counts[bisect_left(edges, sample)] += 1
    return {"bounds": edges, "counts": counts}


def percentile(samples: Sequence[float], q: float) -> Optional[float]:
    """Linear-interpolated percentile; q in [0, 100]; None when empty.

    The quantile is validated before the empty-reservoir check so a bad
    ``q`` fails loudly even when an idle shard contributes no samples —
    fleet merges must not mask caller bugs behind ``None``.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not samples:
        return None
    ordered = sorted(samples)
    position = (q / 100) * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


class ServiceMetrics:
    """Thread-safe counters + latency reservoir for one service."""

    def __init__(
        self,
        latency_window: int = DEFAULT_LATENCY_WINDOW,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self._clock = clock
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=latency_window)
        self.requests = 0
        self.cache_hits = 0
        self.computed = 0
        self.deduplicated = 0
        self.rejected = 0
        self.throttled = 0
        self.errors = 0
        # per-pipeline-stage wall-clock accounting (profile/analyze/
        # orchestrate/simulate), reported by computed estimates
        self.stage_seconds: dict[str, float] = {}
        self.stage_counts: dict[str, int] = {}
        # artifact provenance per stage, keyed "stage:source" (source is
        # memory / store / compute) — makes persistent-store hits visible
        # in the same fleet-aggregated snapshot as the timings
        self.stage_source_counts: dict[str, int] = {}
        # computed-request counts per execution-substrate worker (the
        # process driver records worker PIDs; thread/asyncio drivers
        # leave this empty — one process, nothing to attribute)
        self.worker_requests: dict[str, int] = {}
        self._first_at: Optional[float] = None
        self._last_at: Optional[float] = None

    def record_request(self) -> None:
        with self._lock:
            now = self._clock()
            if self._first_at is None:
                self._first_at = now
            self._last_at = now
            self.requests += 1

    def record_cache_hit(self, latency_seconds: float) -> None:
        with self._lock:
            self.cache_hits += 1
            self._latencies.append(latency_seconds)
            self._last_at = self._clock()

    def record_computed(self, latency_seconds: float) -> None:
        with self._lock:
            self.computed += 1
            self._latencies.append(latency_seconds)
            self._last_at = self._clock()

    def record_deduplicated(self) -> None:
        with self._lock:
            self.deduplicated += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_throttled(self) -> None:
        with self._lock:
            self.throttled += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_stages(
        self,
        stage_seconds: Mapping[str, float],
        stage_sources: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Accumulate one estimate's per-stage latency breakdown (and,
        when provided, each stage artifact's provenance)."""
        with self._lock:
            for stage, seconds in stage_seconds.items():
                self.stage_seconds[stage] = (
                    self.stage_seconds.get(stage, 0.0) + float(seconds)
                )
                self.stage_counts[stage] = self.stage_counts.get(stage, 0) + 1
            if stage_sources:
                for stage, source in stage_sources.items():
                    key = f"{stage}:{source}"
                    self.stage_source_counts[key] = (
                        self.stage_source_counts.get(key, 0) + 1
                    )

    def record_worker(self, worker_id) -> None:
        """Attribute one computed estimate to an execution-substrate
        worker (a process PID for the process-pool driver)."""
        key = str(worker_id)
        with self._lock:
            self.worker_requests[key] = self.worker_requests.get(key, 0) + 1

    def latency_samples(self) -> list[float]:
        """A copy of the latency reservoir (newest-last), for aggregation.

        The gateway merges every shard's reservoir before computing fleet
        percentiles — exact, unlike averaging per-shard percentiles.
        """
        with self._lock:
            return list(self._latencies)

    def as_dict(self) -> dict:
        """One JSON-ready snapshot of everything the service counted."""
        with self._lock:
            samples = list(self._latencies)
            answered = self.cache_hits + self.computed
            elapsed = (
                (self._last_at - self._first_at)
                if self._first_at is not None and self._last_at is not None
                else 0.0
            )
            return {
                "requests": self.requests,
                "cache_hits": self.cache_hits,
                "computed": self.computed,
                "deduplicated": self.deduplicated,
                "rejected": self.rejected,
                "throttled": self.throttled,
                "errors": self.errors,
                "cache_hit_rate": (
                    self.cache_hits / answered if answered else 0.0
                ),
                "throughput_rps": (
                    answered / elapsed if elapsed > 0 else None
                ),
                "latency_seconds": {
                    "count": len(samples),
                    "p50": percentile(samples, 50),
                    "p95": percentile(samples, 95),
                    "p99": percentile(samples, 99),
                    "max": max(samples) if samples else None,
                    "histogram": latency_histogram(samples),
                },
                "stages": {
                    stage: {
                        "count": self.stage_counts.get(stage, 0),
                        "total_seconds": total,
                        "mean_seconds": (
                            total / self.stage_counts[stage]
                            if self.stage_counts.get(stage)
                            else None
                        ),
                    }
                    for stage, total in sorted(self.stage_seconds.items())
                },
                "workers": dict(sorted(self.worker_requests.items())),
                "stage_sources": dict(
                    sorted(self.stage_source_counts.items())
                ),
            }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), indent=indent)
