"""Bulk estimation APIs that exploit shared work across requests.

The expensive stage of an xMem estimate is the CPU profiling run, and it
depends only on the *workload* — not the device or allocator config.  A
sweep of one workload over N devices therefore needs one profile, not N.
``estimate_many`` groups requests by workload, profiles each group once,
and hands the shared trace to the service (whose estimator replays it per
device); ``sweep`` builds the (model x batch size x device) grid the
paper's capacity-planning scenarios ask for.

The planning step (:func:`plan_shared_traces`) is driver-agnostic: it
only needs the service surface (``fingerprint`` / ``cache`` /
``estimator``), so :func:`repro.service.aio.estimate_many_async` reuses
it for the asyncio driver and
:meth:`repro.service.procpool.ProcEstimationService.estimate_many` for
the process driver — one planner, three substrates.  Under the process
driver the profile is computed once in the parent and shipped (pickled)
to whichever worker handles each request of the group, so N workers
never profile the same workload N times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.result import EstimationResult
from ..runtime.loop import TrainLoopConfig
from ..runtime.profiler import DEFAULT_PROFILE_ITERATIONS, profile_on_cpu
from ..trace.reader import Trace
from ..workload import DeviceSpec, WorkloadConfig
from .engine import EstimationService


def profile_workload(
    service: EstimationService, workload: WorkloadConfig
) -> Trace:
    """One CPU profile of ``workload``, matching the wrapped estimator's
    own profiling parameters so estimates stay byte-identical.

    A staged estimator profiles through its own pipeline, so the shared
    trace lands in (or comes from) the stage cache — the bulk fast path
    and the per-request stage caches reuse one artifact.
    """
    pipeline = getattr(service.estimator, "pipeline", None)
    if pipeline is not None:
        return pipeline.profile(workload)
    iterations = getattr(
        service.estimator, "iterations", DEFAULT_PROFILE_ITERATIONS
    )
    return profile_on_cpu(
        workload.model,
        batch_size=workload.batch_size,
        optimizer=workload.optimizer,
        loop=TrainLoopConfig(
            iterations=iterations,
            zero_grad_position=workload.zero_grad_position,
            set_to_none=workload.set_to_none,
        ),
        iterations=iterations,
    )


def plan_shared_traces(
    service,
    requests: Sequence[tuple[WorkloadConfig, DeviceSpec]],
) -> dict[tuple, Trace]:
    """Profile each workload that appears in >= 2 non-cached requests.

    ``service`` is any driver exposing ``fingerprint`` / ``cache`` /
    ``estimator`` — the thread service or the asyncio one.
    """
    pending: dict[tuple, list[tuple[WorkloadConfig, DeviceSpec]]] = {}
    for workload, device in requests:
        if service.fingerprint(workload, device) in service.cache:
            continue
        pending.setdefault(workload.to_key(), []).append((workload, device))
    traces: dict[tuple, Trace] = {}
    for key, group in pending.items():
        if len(group) < 2:
            continue
        try:
            traces[key] = profile_workload(service, group[0][0])
        except Exception:
            # an unprofilable workload (unknown model, bad optimizer) is
            # not this fast path's problem: leave the group trace-less so
            # each request fails — or is rejected — individually
            continue
    return traces


def estimate_many(
    service: EstimationService,
    requests: Sequence[tuple[WorkloadConfig, DeviceSpec]],
    share_profiles: bool = True,
    return_exceptions: bool = False,
) -> list:
    """Estimate every (workload, device) pair; results in request order.

    With ``share_profiles`` (and a trace-capable estimator), workloads
    repeated across devices are profiled once up front.  With
    ``return_exceptions``, failures come back in-place instead of raising
    on the first bad request.  ``service`` is any synchronous driver
    exposing ``submit`` futures — the thread service or the process one.
    """
    traces: dict[tuple, Trace] = {}
    if share_profiles and service.accepts_trace:
        traces = plan_shared_traces(service, requests)
    futures = []
    for workload, device in requests:
        try:
            futures.append(
                service.submit(
                    workload, device, trace=traces.get(workload.to_key())
                )
            )
        except Exception as error:
            if not return_exceptions:
                raise
            futures.append(error)
    results = []
    for item in futures:
        if isinstance(item, Exception):
            results.append(item)
            continue
        try:
            results.append(item.result())
        except Exception as error:
            if not return_exceptions:
                raise
            results.append(error)
    return results


@dataclass(frozen=True)
class SweepCell:
    """One grid point of a sweep: the request plus its outcome."""

    workload: WorkloadConfig
    device: DeviceSpec
    result: Optional[EstimationResult]
    error: Optional[Exception] = None

    @property
    def fits(self) -> Optional[bool]:
        if self.result is None:
            return None
        return not self.result.predicts_oom()

    def as_dict(self) -> dict:
        cell = {
            "workload": self.workload.as_dict(),
            "device": self.device.name,
        }
        if self.result is not None:
            cell["estimated_peak_bytes"] = self.result.peak_bytes
            cell["predicts_oom"] = self.result.predicts_oom()
        if self.error is not None:
            cell["error"] = str(self.error)
        return cell


def sweep(
    service: EstimationService,
    models: Sequence[str],
    batch_sizes: Sequence[int],
    devices: Sequence[DeviceSpec],
    optimizer: str = "adam",
    zero_grad_position: Optional[str] = None,
) -> list[SweepCell]:
    """Estimate the full (model x batch size x device) grid.

    Each (model, batch size) workload is profiled at most once across all
    devices.  Per-cell failures are captured, not raised: capacity planning
    should see the whole grid even when one corner is invalid.
    """
    workloads = [
        WorkloadConfig(
            model=model,
            optimizer=optimizer,
            batch_size=batch_size,
            **(
                {}
                if zero_grad_position is None
                else {"zero_grad_position": zero_grad_position}
            ),
        )
        for model in models
        for batch_size in batch_sizes
    ]
    requests = [(w, d) for w in workloads for d in devices]
    outcomes = estimate_many(service, requests, return_exceptions=True)
    cells = []
    for (workload, device), outcome in zip(requests, outcomes):
        if isinstance(outcome, Exception):
            cells.append(
                SweepCell(
                    workload=workload, device=device, result=None, error=outcome
                )
            )
        else:
            cells.append(
                SweepCell(workload=workload, device=device, result=outcome)
            )
    return cells
