"""The thread-pool execution driver over the sans-IO service core.

:class:`EstimationService` wraps any :class:`~repro.core.base.Estimator`
behind the request pipeline defined by
:class:`~repro.service.core.ServiceCore`:

1. the request is fingerprinted (:mod:`repro.service.fingerprint`);
2. if an identical request is already in flight, the caller piggybacks on
   its future (**single-flight deduplication** — concurrent duplicates
   cost one estimation, not N);
3. otherwise the middleware chain's ``on_request`` hooks run in order
   (cache lookup, validation, rate limiting, ...); a short-circuit
   answers immediately;
4. misses dispatch to a ``ThreadPoolExecutor`` worker, which runs the
   estimator and then the ``on_result`` hooks (populating the cache).

Every policy decision above lives in the core; this module only supplies
the execution substrate — worker threads, ``concurrent.futures.Future``
handles, and the ``threading.Lock`` primitives it binds onto the core's
shared state (cache, locking middlewares, single-flight table).  The
asyncio driver (:mod:`repro.service.aio`) drives the identical core from
an event loop instead.

``estimate()`` is the blocking convenience wrapper; ``submit()`` returns
a ``concurrent.futures.Future`` so schedulers can fan out.  Results are
the estimator's own objects, untouched — byte-identical to calling the
estimator directly.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Optional, Sequence

from ..core.base import Estimator
from ..core.estimator import XMemEstimator
from ..errors import ServiceClosedError
from ..trace.reader import Trace
from ..workload import DeviceSpec, WorkloadConfig
from .cache import EstimateCache
from .context import RequestContext, ServiceRequest
from .core import (
    ServiceCore,
    adopt_chain_cache,
    compute_fingerprint,
    estimator_accepts_trace,
    invoke_estimator,
)
from .metrics import ServiceMetrics
from .middleware import (
    MiddlewareChain,
    ServiceMiddleware,
    default_middlewares,
)

DEFAULT_MAX_WORKERS = 4


class EstimationService:
    """Serves estimation requests through a middleware chain and a pool."""

    def __init__(
        self,
        estimator: Optional[Estimator] = None,
        middlewares: Optional[Sequence[ServiceMiddleware]] = None,
        cache: Optional[EstimateCache] = None,
        max_workers: int = DEFAULT_MAX_WORKERS,
        metrics: Optional[ServiceMetrics] = None,
        telemetry=None,
    ):
        """``telemetry`` is an optional
        :class:`~repro.service.telemetry.Telemetry` bundle (tracer +
        ledger); the default ``None`` keeps the request path span-free
        and ledger-free at zero cost."""
        if max_workers < 1:
            raise ValueError("service needs at least one worker")
        self.estimator = estimator if estimator is not None else XMemEstimator()
        self.cache = cache if cache is not None else EstimateCache()
        if middlewares is None:
            middlewares = default_middlewares(self.cache)
        else:
            # stats() and the batch fast path must see the cache that
            # actually serves hits: adopt the chain's, if it has one
            self.cache = adopt_chain_cache(middlewares, self.cache)
        self.chain = MiddlewareChain(middlewares)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        # thread driver: bind real locks onto the sans-IO core's shared
        # state — hooks run concurrently on caller and worker threads
        self.cache.bind_lock(threading.Lock)
        self.chain.bind_lock(threading.Lock)
        self.telemetry = telemetry
        self.core = ServiceCore(
            self.chain,
            self.cache,
            self.metrics,
            tracer=telemetry.tracer if telemetry is not None else None,
            ledger=telemetry.ledger if telemetry is not None else None,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="xmem-service"
        )
        self._lock = threading.Lock()
        self._closed = False
        self._accepts_trace = estimator_accepts_trace(self.estimator)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def accepts_trace(self) -> bool:
        """Whether the wrapped estimator can reuse a pre-computed trace."""
        return self._accepts_trace

    def fingerprint(
        self, workload: WorkloadConfig, device: DeviceSpec
    ) -> str:
        """The cache/single-flight key this service uses for a request."""
        return compute_fingerprint(self.estimator, workload, device)

    def submit(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace] = None,
        fingerprint: Optional[str] = None,
        deadline: Optional[float] = None,
        metadata: Optional[dict] = None,
        tenant: str = "",
        priority: int = 1,
    ) -> Future:
        """Enqueue one request; returns a future of the EstimationResult.

        Raises synchronously when an ``on_request`` hook rejects the
        request (validation failure, rate limit) or the ``deadline`` —
        an absolute ``time.perf_counter()`` value — has already passed;
        estimator failures surface through the future.  Identical
        concurrent requests share one future (their middlewares run once,
        for the first caller).  ``fingerprint``, when given, must equal
        ``self.fingerprint(...)`` for the pair — the gateway passes the
        one it already routed on so the canonical payload is hashed once
        per request, not twice.
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        fp = (
            fingerprint
            if fingerprint is not None
            else self.fingerprint(workload, device)
        )
        request, ctx = self.core.open_request(
            workload,
            device,
            fp,
            trace=trace,
            deadline=deadline,
            metadata=metadata,
            tenant=tenant,
            priority=priority,
        )
        # an already-expired deadline is rejected before the dedup lookup:
        # piggybacking would hand the caller a result it declared useless
        self.core.check_deadline(ctx)
        with self._lock:
            inflight = self.core.inflight.get(fp)
        if inflight is not None:
            self.core.note_deduplicated(ctx)
            return inflight
        # hooks run outside the lock: cache/rate-limit state is internally
        # locked, and a hook may call back into stats() without deadlock
        admission = self.core.run_request_hooks(request, ctx)
        if admission.result is not None:
            future: Future = Future()
            future.set_result(admission.result)
            return future
        with self._lock:
            # re-check: another thread may have registered this
            # fingerprint while our hooks ran (it already paid its own
            # trip through the chain, so piggybacking now is safe)
            inflight = self.core.inflight.get(fp)
            if inflight is not None:
                self.core.note_deduplicated(ctx)
                return inflight
            future = Future()
            self.core.inflight.claim(fp, future)
        try:
            self._executor.submit(
                self._run, request, ctx, future, admission.depth
            )
        except BaseException as error:
            # e.g. the pool shut down between the _closed check and here:
            # release the single-flight slot so nothing piggybacks on a
            # future no worker will ever resolve, and unwind the entered
            # middleware layers (core.fail = on_error hooks + the error
            # counter) so the audit trail and counters keep reconciling
            with self._lock:
                self.core.inflight.release(fp)
            self.core.fail(request, ctx, error, admission.depth)
            future.set_exception(error)
        return future

    def estimate(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace] = None,
    ):
        """Blocking request — the drop-in for ``estimator.estimate()``."""
        return self.submit(workload, device, trace=trace).result()

    def stats(self) -> dict:
        """Service metrics + cache counters in one JSON-ready snapshot."""
        with self._lock:
            inflight = len(self.core.inflight)
        return {
            "service": self.metrics.as_dict(),
            "cache": self.cache.stats().as_dict(),
            "inflight": inflight,
        }

    def close(self, wait: bool = True) -> None:
        self._closed = True
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "EstimationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _run(
        self,
        request: ServiceRequest,
        ctx: RequestContext,
        future: Future,
        depth: int,
    ) -> None:
        try:
            if ctx.telemetry is not None:
                ctx.telemetry.begin_estimate()
            result = invoke_estimator(
                self.estimator, request, self._accepts_trace
            )
            result = self.core.finish(request, ctx, result, depth)
        except BaseException as error:
            self.core.fail(request, ctx, error, depth)
            with self._lock:
                self.core.inflight.release(request.fingerprint)
            future.set_exception(error)
            return
        with self._lock:
            self.core.inflight.release(request.fingerprint)
        future.set_result(result)
