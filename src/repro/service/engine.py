"""The estimation service: middleware chain + concurrent request engine.

:class:`EstimationService` wraps any :class:`~repro.core.base.Estimator`
behind a request pipeline:

1. the request is fingerprinted (:mod:`repro.service.fingerprint`);
2. if an identical request is already in flight, the caller piggybacks on
   its future (**single-flight deduplication** — concurrent duplicates
   cost one estimation, not N);
3. otherwise the middleware chain's ``on_request`` hooks run in order
   (cache lookup, validation, rate limiting, ...); a short-circuit
   answers immediately;
4. misses dispatch to a ``ThreadPoolExecutor`` worker, which runs the
   estimator and then the ``on_result`` hooks (populating the cache).

``estimate()`` is the blocking convenience wrapper; ``submit()`` returns
a ``concurrent.futures.Future`` so schedulers can fan out.  Results are
the estimator's own objects, untouched — byte-identical to calling the
estimator directly.
"""

from __future__ import annotations

import inspect
import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Optional, Sequence

from ..core.base import Estimator
from ..core.estimator import XMemEstimator
from ..errors import (
    RateLimitExceededError,
    RequestRejectedError,
    ServiceClosedError,
)
from ..trace.reader import Trace
from ..workload import DeviceSpec, WorkloadConfig
from .cache import EstimateCache
from .fingerprint import fingerprint_request
from .metrics import ServiceMetrics
from .middleware import (
    CacheMiddleware,
    MiddlewareChain,
    RequestContext,
    ServiceMiddleware,
    ServiceRequest,
    TimingMiddleware,
    ValidationMiddleware,
)

DEFAULT_MAX_WORKERS = 4


def default_middlewares(cache: EstimateCache) -> tuple[ServiceMiddleware, ...]:
    """The standard stack: timing outermost, then validation, then cache."""
    return (TimingMiddleware(), ValidationMiddleware(), CacheMiddleware(cache))


class EstimationService:
    """Serves estimation requests through a middleware chain and a pool."""

    def __init__(
        self,
        estimator: Optional[Estimator] = None,
        middlewares: Optional[Sequence[ServiceMiddleware]] = None,
        cache: Optional[EstimateCache] = None,
        max_workers: int = DEFAULT_MAX_WORKERS,
        metrics: Optional[ServiceMetrics] = None,
    ):
        if max_workers < 1:
            raise ValueError("service needs at least one worker")
        self.estimator = estimator if estimator is not None else XMemEstimator()
        self.cache = cache if cache is not None else EstimateCache()
        if middlewares is None:
            middlewares = default_middlewares(self.cache)
        else:
            # stats() and the batch fast path must see the cache that
            # actually serves hits: adopt the chain's, if it has one
            for middleware in middlewares:
                if isinstance(middleware, CacheMiddleware):
                    self.cache = middleware.cache
                    break
        self.chain = MiddlewareChain(middlewares)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="xmem-service"
        )
        self._lock = threading.Lock()
        self._inflight: dict[str, Future] = {}
        self._request_ids = itertools.count(1)
        self._closed = False
        self._accepts_trace = "trace" in inspect.signature(
            self.estimator.estimate
        ).parameters

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def accepts_trace(self) -> bool:
        """Whether the wrapped estimator can reuse a pre-computed trace."""
        return self._accepts_trace

    def fingerprint(
        self, workload: WorkloadConfig, device: DeviceSpec
    ) -> str:
        """The cache/single-flight key this service uses for a request."""
        return fingerprint_request(
            workload,
            device,
            estimator_name=self.estimator.name,
            estimator_version=str(getattr(self.estimator, "version", "")),
            allocator_config=getattr(self.estimator, "allocator_config", None),
        )

    def submit(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace] = None,
        fingerprint: Optional[str] = None,
    ) -> Future:
        """Enqueue one request; returns a future of the EstimationResult.

        Raises synchronously when an ``on_request`` hook rejects the
        request (validation failure, rate limit); estimator failures
        surface through the future.  Identical concurrent requests share
        one future (their middlewares run once, for the first caller).
        ``fingerprint``, when given, must equal ``self.fingerprint(...)``
        for the pair — the gateway passes the one it already routed on so
        the canonical payload is hashed once per request, not twice.
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        self.metrics.record_request()
        fp = (
            fingerprint
            if fingerprint is not None
            else self.fingerprint(workload, device)
        )
        request = ServiceRequest(
            workload=workload, device=device, fingerprint=fp, trace=trace
        )
        ctx = RequestContext(
            request_id=next(self._request_ids),
            submitted_at=time.perf_counter(),
        )
        with self._lock:
            inflight = self._inflight.get(fp)
        if inflight is not None:
            ctx.deduplicated = True
            self.metrics.record_deduplicated()
            return inflight
        # hooks run outside the lock: cache/rate-limit state is internally
        # locked, and a hook may call back into stats() without deadlock
        try:
            short, depth = self.chain.run_request(request, ctx)
        except RateLimitExceededError:
            self.metrics.record_throttled()
            raise
        except RequestRejectedError:
            self.metrics.record_rejected()
            raise
        except BaseException:
            self.metrics.record_error()
            raise
        if short is not None:
            short = self.chain.run_result(request, short, ctx, depth)
            latency = time.perf_counter() - ctx.submitted_at
            if ctx.cache_hit:
                self.metrics.record_cache_hit(latency)
            else:
                self.metrics.record_computed(latency)
            future: Future = Future()
            future.set_result(short)
            return future
        with self._lock:
            # re-check: another thread may have registered this
            # fingerprint while our hooks ran (it already paid its own
            # trip through the chain, so piggybacking now is safe)
            inflight = self._inflight.get(fp)
            if inflight is not None:
                ctx.deduplicated = True
                self.metrics.record_deduplicated()
                return inflight
            future = Future()
            self._inflight[fp] = future
        try:
            self._executor.submit(self._run, request, ctx, future, depth)
        except BaseException as error:
            # e.g. the pool shut down between the _closed check and here:
            # release the single-flight slot so nothing piggybacks on a
            # future no worker will ever resolve
            with self._lock:
                self._inflight.pop(fp, None)
            self.metrics.record_error()
            future.set_exception(error)
        return future

    def estimate(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace] = None,
    ):
        """Blocking request — the drop-in for ``estimator.estimate()``."""
        return self.submit(workload, device, trace=trace).result()

    def stats(self) -> dict:
        """Service metrics + cache counters in one JSON-ready snapshot."""
        with self._lock:
            inflight = len(self._inflight)
        return {
            "service": self.metrics.as_dict(),
            "cache": self.cache.stats().as_dict(),
            "inflight": inflight,
        }

    def close(self, wait: bool = True) -> None:
        self._closed = True
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "EstimationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _run(
        self,
        request: ServiceRequest,
        ctx: RequestContext,
        future: Future,
        depth: int,
    ) -> None:
        try:
            result = self._invoke_estimator(request)
            result = self.chain.run_result(request, result, ctx, depth)
        except BaseException as error:
            self.chain.run_error(request, error, ctx, depth)
            self.metrics.record_error()
            with self._lock:
                self._inflight.pop(request.fingerprint, None)
            future.set_exception(error)
            return
        stages = getattr(result, "stage_seconds", None)
        if stages:
            # staged estimators report where computed time went; recorded
            # alongside record_computed (and never for cache hits) so the
            # per-stage counts reconcile with the computed counter
            self.metrics.record_stages(stages)
        self.metrics.record_computed(time.perf_counter() - ctx.submitted_at)
        with self._lock:
            self._inflight.pop(request.fingerprint, None)
        future.set_result(result)

    def _invoke_estimator(self, request: ServiceRequest):
        if request.trace is not None and self._accepts_trace:
            return self.estimator.estimate(
                request.workload, request.device, trace=request.trace
            )
        return self.estimator.estimate(request.workload, request.device)
