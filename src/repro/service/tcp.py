"""Asyncio TCP transport over the sans-IO service core.

The fourth execution substrate: where the thread, asyncio, and process
drivers all run the policy core in one process, this module puts a real
socket between caller and core.  :class:`TcpEstimationServer` is a thin
shell over :class:`~repro.service.aio.AsyncServiceGateway` — it owns
*only* connection lifecycle and the frame codec
(:mod:`repro.service.wire`); every policy decision (routing, admission,
cache, dedup, deadline, telemetry) still happens in the gateway, so a
TCP replay is byte-identical to an in-process one.  This mirrors how
fastmcp layers interchangeable transports over one middleware server:
the server object is transport-blind, the transport is policy-blind.

Pieces:

* :class:`TcpEstimationServer` — asyncio streams server exposing the
  ``ping`` / ``estimate`` / ``estimate_many`` / ``stats`` / ``drain``
  ops.  One coroutine per connection reads frames in arrival order and
  runs the gateway's *synchronous* submit step inline — admission,
  routing, and ledger decisions therefore happen in exact request order,
  which is what keeps canonical ledger sequences identical to the
  in-process drivers.  Only the *await* of each result runs in a spawned
  task, so slow estimates never block the read loop.  Malformed frames
  are answered with a connection-level error frame and a clean close;
  they never take the server down.
* :class:`TcpServiceClient` — blocking client with the driver ``submit``
  surface (returns :class:`concurrent.futures.Future`), so the existing
  :func:`~repro.service.traffic.replay` drives it unchanged.
* :class:`AsyncTcpServiceClient` — the awaitable mirror, matching
  :func:`~repro.service.aio.replay_async`.
* :class:`TcpServerThread` — gateway + server on a private event loop in
  a daemon thread, for in-process loadtests and tests.

Deadlines cross the wire as *remaining budget* and are rebased onto the
server's clock (see :mod:`repro.service.wire`); results come back
curve-less but otherwise exact.  Traces do not cross the wire at all —
a CPU profile is a host-local artifact, so serving-tier estimators
profile (or synthesize) server-side.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from concurrent.futures import Future
from typing import Callable, Optional, Sequence

from ..errors import ConnectionLostError, ServiceClosedError
from ..trace.reader import Trace
from ..workload import DeviceSpec, WorkloadConfig
from .aio import AsyncServiceGateway
from .wire import (
    MAX_FRAME_BYTES,
    OP_DRAIN,
    OP_ESTIMATE,
    OP_ESTIMATE_MANY,
    OP_PING,
    OP_STATS,
    FrameDecoder,
    WireProtocolError,
    encode_frame,
    error_from_wire,
    error_response,
    ok_response,
    result_from_wire,
    result_to_wire,
    validate_request_message,
)

__all__ = [
    "AsyncTcpServiceClient",
    "TcpEstimationServer",
    "TcpServerThread",
    "TcpServiceClient",
]

_READ_CHUNK = 64 * 1024


def _decode_estimate_payload(
    message: dict, now: float
) -> tuple[
    WorkloadConfig,
    DeviceSpec,
    Optional[float],
    Optional[dict],
    str,
    int,
]:
    """Pull (workload, device, rebased deadline, metadata, tenant,
    priority) out of one op.

    Raises :class:`WireProtocolError` on a structurally bad payload —
    the caller answers it *per request* (the frame itself was valid, so
    the connection is not poisoned).  ``tenant``/``priority`` are
    optional on the wire (absent = untenanted standard traffic), so
    pre-control-plane clients keep working unchanged.
    """
    request = message["request"]
    try:
        workload = WorkloadConfig.from_dict(request["workload"])
        device = DeviceSpec.from_dict(request["device"])
    except (KeyError, TypeError, ValueError) as error:
        raise WireProtocolError(
            f"malformed estimate payload: {error!r}"
        ) from error
    metadata = request.get("metadata")
    if metadata is not None and not isinstance(metadata, dict):
        raise WireProtocolError("'metadata' must be an object or null")
    tenant = request.get("tenant", "")
    if not isinstance(tenant, str):
        raise WireProtocolError("'tenant' must be a string")
    priority = request.get("priority", 1)
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise WireProtocolError("'priority' must be an integer")
    remaining = message.get("deadline_remaining")
    # rebase: the client sent budget-left on *its* clock; the deadline
    # the core enforces must live on *this* host's clock
    deadline = None if remaining is None else now + remaining
    return workload, device, deadline, metadata or None, tenant, priority


class TcpEstimationServer:
    """Serves the wire ops over TCP, one handler coroutine per connection.

    ``clock`` must be the same clock the gateway's cores use for deadline
    checks (``time.perf_counter`` by default everywhere) — rebased wire
    deadlines are expressed in it.  The server never closes the gateway:
    the owner that built the gateway shuts it down.
    """

    def __init__(
        self,
        gateway: AsyncServiceGateway,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.gateway = gateway
        self.host = host
        self.port = port
        self.max_frame_bytes = max_frame_bytes
        self._clock = clock
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections = 0
        self._protocol_errors = 0
        self._injected_drops = 0

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolves ``port=0`` after ``start``."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def connections_served(self) -> int:
        return self._connections

    @property
    def protocol_errors(self) -> int:
        """Connections dropped for framing/schema violations (diagnostic)."""
        return self._protocol_errors

    @property
    def injected_drops(self) -> int:
        """Connections aborted by the fault plan (``connection_drop``)."""
        return self._injected_drops

    async def start(self) -> "TcpEstimationServer":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        return self

    async def aclose(self) -> None:
        """Stop accepting connections and close the listening socket."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def __aenter__(self) -> "TcpEstimationServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        decoder = FrameDecoder(self.max_frame_bytes)
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break  # orderly client disconnect
                try:
                    messages = decoder.feed(data)
                except WireProtocolError as error:
                    # unframeable stream: answer once at connection level
                    # (id null), then close — there is no resynchronizing
                    # a length-prefixed stream after a bad header
                    self._protocol_errors += 1
                    await self._send(
                        writer, write_lock, error_response(None, error)
                    )
                    break
                ok = True
                for message in messages:
                    if not self._handle_message(
                        message, writer, write_lock, tasks
                    ):
                        ok = False
                        break
                if not ok:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # mid-request disconnect: in-flight work settles below
        finally:
            # let spawned responders settle (their writes tolerate a dead
            # socket) so gateway accounting is quiescent when the peer
            # observes the close — tests and drains rely on that
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                # CancelledError: loop teardown raced the close handshake
                # — the socket is gone either way, exit quietly
                pass

    def _handle_message(
        self,
        message: dict,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        tasks: set,
    ) -> bool:
        """Dispatch one decoded frame; False = close the connection.

        Runs synchronously on the loop inside the read loop, so gateway
        submit order == frame arrival order (the determinism contract).
        """

        def spawn(coro) -> None:
            task = asyncio.get_running_loop().create_task(coro)
            tasks.add(task)
            task.add_done_callback(tasks.discard)

        try:
            op, msg_id = validate_request_message(message)
        except WireProtocolError as error:
            # schema violation (unknown op / bad id): the peer speaks a
            # different protocol — answer at connection level and close
            self._protocol_errors += 1
            spawn(self._send(writer, write_lock, error_response(None, error)))
            return False
        if op == OP_PING:
            spawn(self._send(writer, write_lock, ok_response(msg_id)))
        elif op == OP_STATS:
            payload = ok_response(msg_id, stats=self.gateway.stats())
            spawn(self._send(writer, write_lock, payload))
        elif op == OP_DRAIN:
            spawn(
                self._drain_and_respond(
                    msg_id, message.get("timeout"), writer, write_lock
                )
            )
        elif op == OP_ESTIMATE:
            injector = getattr(self.gateway, "_injector", None)
            if injector is not None and injector.take_connection_drop():
                # the fault plan scheduled a connection drop at this
                # submission index: consume the index *before* the
                # gateway sees the request (keeping plan indices aligned
                # with in-process drivers, where the same index is a
                # gateway-side no-op) and kill the connection the hard
                # way — abort sends RST, so the peer sees an abrupt
                # reset, not an orderly close
                self._injected_drops += 1
                writer.transport.abort()
                return False
            outcome = self._begin_estimate(message, msg_id)
            if isinstance(outcome, dict):  # rejected before enqueue
                spawn(self._send(writer, write_lock, outcome))
            else:
                spawn(
                    self._await_and_respond(
                        msg_id, outcome, writer, write_lock
                    )
                )
        elif op == OP_ESTIMATE_MANY:
            outcomes = [
                self._begin_estimate(
                    {"request": item, "deadline_remaining": None}, msg_id
                )
                for item in message["requests"]
            ]
            spawn(
                self._await_many_and_respond(
                    msg_id, outcomes, writer, write_lock
                )
            )
        return True

    def _begin_estimate(self, message: dict, msg_id: int):
        """Run the synchronous half of one submit, inline and in order.

        Returns the gateway future on admission, or a ready error
        response payload when the request was refused before enqueue
        (validation reject, shed, closed, malformed payload) — the
        connection stays open either way.
        """
        try:
            (
                workload,
                device,
                deadline,
                metadata,
                tenant,
                priority,
            ) = _decode_estimate_payload(message, self._clock())
        except WireProtocolError as error:
            return error_response(msg_id, error)
        try:
            return self.gateway.submit(
                workload,
                device,
                deadline=deadline,
                metadata=metadata,
                tenant=tenant,
                priority=priority,
            )
        except Exception as error:
            return error_response(msg_id, error)

    async def _await_and_respond(
        self, msg_id: int, future, writer, write_lock
    ) -> None:
        try:
            result = await future
        except Exception as error:
            payload = error_response(msg_id, error)
        else:
            payload = ok_response(msg_id, result=result_to_wire(result))
        await self._send(writer, write_lock, payload)

    async def _await_many_and_respond(
        self, msg_id: int, outcomes: list, writer, write_lock
    ) -> None:
        entries = []
        for outcome in outcomes:
            if isinstance(outcome, dict):  # pre-resolved error response
                entries.append({"ok": False, "error": outcome["error"]})
                continue
            try:
                result = await outcome
            except Exception as error:
                entries.append(error_response(None, error))
                entries[-1].pop("id")
            else:
                entries.append({"ok": True, "result": result_to_wire(result)})
        await self._send(
            writer, write_lock, ok_response(msg_id, results=entries)
        )

    async def _drain_and_respond(
        self, msg_id: int, timeout, writer, write_lock
    ) -> None:
        drained = await self.gateway.drain(timeout)
        await self._send(
            writer, write_lock, ok_response(msg_id, drained=drained)
        )

    async def _send(self, writer, write_lock, payload: dict) -> None:
        """Write one frame; concurrent responders never interleave bytes.

        A peer that vanished mid-request is not an error: its estimate
        already settled the gateway accounting, the response just has
        nowhere to go.
        """
        try:
            frame = encode_frame(payload, self.max_frame_bytes)
        except WireProtocolError as error:
            # the response itself would not frame (oversized/unencodable
            # detail) — tell the client *something* rather than leaving
            # its future hanging
            frame = encode_frame(
                error_response(payload.get("id"), error),
                self.max_frame_bytes,
            )
        async with write_lock:
            if writer.is_closing():
                return
            try:
                writer.write(frame)
                await writer.drain()
            except (ConnectionError, OSError):
                pass


# ----------------------------------------------------------------------
# blocking client
# ----------------------------------------------------------------------


class TcpServiceClient:
    """Blocking TCP client with the in-process drivers' submit surface.

    ``submit`` writes one frame and returns a
    :class:`concurrent.futures.Future`; a reader thread resolves pending
    futures as response frames arrive (matched by message id, so
    responses may come back out of order).  Wire errors are reconstructed
    as their local exception types — a shed raises
    :class:`~repro.errors.RateLimitExceededError` from ``future.result()``
    exactly as the thread gateway raises it from ``submit`` — so
    :func:`~repro.service.traffic.replay` drives this client unchanged.

    ``deadline`` is an absolute value of *this client's* ``clock``;
    the remaining budget is computed at send time and rebased by the
    server (the skew-proof wire form — see :mod:`repro.service.wire`).

    Connection loss is *typed*: when the server (or the network) kills
    the connection mid-call, every in-flight future fails with
    :class:`~repro.errors.ConnectionLostError` carrying the pending
    request ids — callers can tell "the server dropped me" from a
    deliberate :meth:`close` (plain ``ConnectionError``) and know
    exactly which requests are in limbo.  With ``reconnect=True`` the
    *next* ``submit`` transparently re-dials with exponential backoff;
    already-failed futures are never resent (the server may or may not
    have executed them — resubmission is the caller's decision).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 30.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        clock: Callable[[], float] = time.perf_counter,
        reconnect: bool = False,
        reconnect_attempts: int = 4,
        reconnect_backoff: float = 0.02,
    ):
        self.timeout = timeout
        self.max_frame_bytes = max_frame_bytes
        self._clock = clock
        self._host = host
        self._port = port
        self._reconnect = reconnect
        self._reconnect_attempts = reconnect_attempts
        self._reconnect_backoff = reconnect_backoff
        self.reconnects = 0
        self._sock = socket.create_connection((host, port), timeout=timeout)
        # the reader thread blocks in recv indefinitely; per-op timeouts
        # are enforced by the waiters on their futures instead
        self._sock.settimeout(None)
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._dial_lock = threading.Lock()
        self._pending: dict[int, tuple[str, Future]] = {}
        self._next_id = 0
        self._closed = False
        self._connection_lost: Optional[Exception] = None
        self._reader = self._start_reader(self._sock)

    def _start_reader(self, sock: socket.socket) -> threading.Thread:
        # the reader captures its socket: after a reconnect swaps
        # self._sock, a lingering old reader must keep draining the old
        # socket, never the new one
        reader = threading.Thread(
            target=self._read_loop,
            args=(sock,),
            name="tcp-client-reader",
            daemon=True,
        )
        reader.start()
        return reader

    # ------------------------------------------------------------------
    # driver surface
    # ------------------------------------------------------------------
    def submit(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace] = None,
        deadline: Optional[float] = None,
        metadata: Optional[dict] = None,
        tenant: str = "",
        priority: int = 1,
    ) -> Future:
        """Send one estimate request; returns a future of the result."""
        if trace is not None:
            raise ValueError(
                "traces are host-local CPU profiles and do not cross the "
                "wire; the server profiles (or synthesizes) on its side"
            )
        message = {
            "op": OP_ESTIMATE,
            "request": {
                "workload": workload.as_dict(),
                "device": device.as_dict(),
            },
            "deadline_remaining": (
                None if deadline is None else deadline - self._clock()
            ),
        }
        if metadata:
            message["request"]["metadata"] = dict(metadata)
        # tenant/priority ride only off their defaults so untenanted
        # frames stay byte-identical to pre-control-plane clients
        if tenant:
            message["request"]["tenant"] = tenant
        if priority != 1:
            message["request"]["priority"] = priority
        return self._request(OP_ESTIMATE, message)

    def estimate(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        deadline: Optional[float] = None,
    ):
        """Blocking request — the drop-in for ``service.estimate()``."""
        return self.submit(workload, device, deadline=deadline).result(
            self.timeout
        )

    def estimate_many(
        self,
        requests: Sequence[tuple[WorkloadConfig, DeviceSpec]],
        return_exceptions: bool = False,
    ) -> list:
        """Bulk request over one frame; results in request order."""
        message = {
            "op": OP_ESTIMATE_MANY,
            "requests": [
                {"workload": w.as_dict(), "device": d.as_dict()}
                for w, d in requests
            ],
        }
        entries = self._request(OP_ESTIMATE_MANY, message).result(
            self.timeout
        )
        results = []
        for entry in entries:
            if entry.get("ok"):
                results.append(result_from_wire(entry["result"]))
                continue
            error = error_from_wire(entry.get("error", {}))
            if not return_exceptions:
                raise error
            results.append(error)
        return results

    def stats(self) -> dict:
        """The server gateway's stats snapshot (one round trip)."""
        return self._request(OP_STATS, {"op": OP_STATS}).result(self.timeout)

    def ping(self) -> float:
        """Round-trip one empty frame; returns seconds taken."""
        started = self._clock()
        self._request(OP_PING, {"op": OP_PING}).result(self.timeout)
        return self._clock() - started

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Ask the server gateway to drain; True when it went idle."""
        message = {"op": OP_DRAIN, "timeout": timeout}
        # the server may legitimately take the whole drain timeout before
        # answering; a None client timeout still means wait forever
        wait = (
            None
            if self.timeout is None
            else self.timeout + (timeout if timeout is not None else 0.0)
        )
        return self._request(OP_DRAIN, message).result(wait)

    def close(self) -> None:
        """Close the socket; outstanding futures fail with ConnectionError."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        self._reader.join(timeout=5.0)
        self._fail_pending(ConnectionError("client closed"))

    def __enter__(self) -> "TcpServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _request(self, op: str, message: dict) -> Future:
        with self._state_lock:
            lost = None if self._closed else self._connection_lost
        if lost is not None:
            if not self._reconnect:
                raise ConnectionLostError(
                    (), f"connection lost and reconnect is off: {lost}"
                )
            self._redial()
        try:
            return self._send_once(op, message)
        except ConnectionLostError:
            # the connection died between our check and the send (or was
            # aborted mid-handshake): one redial, one resend — the
            # request never reached the server's gateway, so resending
            # cannot double-execute it
            if not self._reconnect:
                raise
            self._redial()
            return self._send_once(op, message)

    def _send_once(self, op: str, message: dict) -> Future:
        future: Future = Future()
        with self._state_lock:
            if self._closed:
                raise ServiceClosedError("client is closed")
            msg_id = self._next_id
            self._next_id += 1
            self._pending[msg_id] = (op, future)
        message["id"] = msg_id
        frame = encode_frame(message, self.max_frame_bytes)
        try:
            with self._send_lock:
                self._sock.sendall(frame)
        except OSError as error:
            lost_error = ConnectionLostError(
                (msg_id,), f"send failed: {error}"
            )
            with self._state_lock:
                self._pending.pop(msg_id, None)
                if self._connection_lost is None:
                    self._connection_lost = lost_error
            raise lost_error from error
        return future

    def _redial(self) -> None:
        """Re-establish the connection with exponential backoff.

        Serialized so concurrent submits after a drop dial once: the
        winner swaps in the fresh socket + reader, the rest observe the
        cleared ``_connection_lost`` flag and proceed.
        """
        with self._dial_lock:
            with self._state_lock:
                if self._closed:
                    raise ServiceClosedError("client is closed")
                if self._connection_lost is None:
                    return  # another submit already reconnected
            delay = self._reconnect_backoff
            last_error: Optional[Exception] = None
            for attempt in range(self._reconnect_attempts):
                if attempt:
                    time.sleep(delay)
                    delay *= 2
                try:
                    sock = socket.create_connection(
                        (self._host, self._port), timeout=self.timeout
                    )
                except OSError as error:
                    last_error = error
                    continue
                sock.settimeout(None)
                old = self._sock
                with self._state_lock:
                    self._sock = sock
                    self._connection_lost = None
                old.close()
                self._reader = self._start_reader(sock)
                self.reconnects += 1
                return
            raise ConnectionLostError(
                (),
                f"reconnect failed after {self._reconnect_attempts} "
                f"attempts: {last_error}",
            )

    def _read_loop(self, sock: socket.socket) -> None:
        decoder = FrameDecoder(self.max_frame_bytes)
        failure: Optional[Exception] = None
        try:
            while True:
                data = sock.recv(_READ_CHUNK)
                if not data:
                    break
                for message in decoder.feed(data):
                    if not self._handle_response(message):
                        return  # connection-level error: loop is done
        except OSError:
            pass  # closed under us (client close or peer reset)
        except WireProtocolError as error:
            failure = error
        with self._state_lock:
            if self._closed:
                return  # deliberate close(): close() fails pending itself
            pending_ids = tuple(sorted(self._pending))
            if failure is None:
                # the server (or the network) dropped us mid-call: typed,
                # with the ids of every request now in limbo
                failure = ConnectionLostError(
                    pending_ids, "server closed connection"
                )
            self._connection_lost = failure
        self._fail_pending(failure)

    def _handle_response(self, message: dict) -> bool:
        msg_id = message.get("id")
        if msg_id is None:
            # connection-level error frame: the server is about to close;
            # every outstanding request dies with the reconstructed error
            self._fail_pending(error_from_wire(message.get("error", {})))
            return False
        with self._state_lock:
            entry = self._pending.pop(msg_id, None)
        if entry is None:
            return True  # duplicate/unknown id: nothing to resolve
        op, future = entry
        if not message.get("ok"):
            future.set_exception(error_from_wire(message.get("error", {})))
            return True
        try:
            if op == OP_ESTIMATE:
                future.set_result(result_from_wire(message["result"]))
            elif op == OP_ESTIMATE_MANY:
                future.set_result(message["results"])
            elif op == OP_STATS:
                future.set_result(message["stats"])
            elif op == OP_DRAIN:
                future.set_result(message.get("drained", False))
            else:
                future.set_result(True)
        except (KeyError, WireProtocolError) as error:
            future.set_exception(
                WireProtocolError(f"malformed {op} response: {error!r}")
            )
        return True

    def _fail_pending(self, error: Exception) -> None:
        with self._state_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for _op, future in pending:
            if not future.done():
                future.set_exception(error)


# ----------------------------------------------------------------------
# async client
# ----------------------------------------------------------------------


class AsyncTcpServiceClient:
    """Awaitable TCP client mirroring the async drivers' surface.

    ``submit`` is synchronous and returns an :class:`asyncio.Future`
    (frames go out through the stream writer's buffer), matching
    :meth:`~repro.service.aio.AsyncServiceGateway.submit` closely enough
    that :func:`~repro.service.aio.replay_async` drives it unchanged —
    ``stats()`` is the one awaitable difference, which the replayer
    already accommodates.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self._reader = reader
        self._writer = writer
        self.max_frame_bytes = max_frame_bytes
        self._clock = clock
        self._pending: dict[int, tuple[str, asyncio.Future]] = {}
        self._next_id = 0
        self._closed = False
        self._read_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        clock: Callable[[], float] = time.perf_counter,
    ) -> "AsyncTcpServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(
            reader, writer, max_frame_bytes=max_frame_bytes, clock=clock
        )

    # ------------------------------------------------------------------
    # driver surface
    # ------------------------------------------------------------------
    def submit(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace] = None,
        deadline: Optional[float] = None,
        metadata: Optional[dict] = None,
        tenant: str = "",
        priority: int = 1,
    ) -> "asyncio.Future":
        """Send one estimate request; returns a future of the result."""
        if trace is not None:
            raise ValueError(
                "traces are host-local CPU profiles and do not cross the "
                "wire; the server profiles (or synthesizes) on its side"
            )
        message = {
            "op": OP_ESTIMATE,
            "request": {
                "workload": workload.as_dict(),
                "device": device.as_dict(),
            },
            "deadline_remaining": (
                None if deadline is None else deadline - self._clock()
            ),
        }
        if metadata:
            message["request"]["metadata"] = dict(metadata)
        # tenant/priority ride only off their defaults so untenanted
        # frames stay byte-identical to pre-control-plane clients
        if tenant:
            message["request"]["tenant"] = tenant
        if priority != 1:
            message["request"]["priority"] = priority
        return self._request(OP_ESTIMATE, message)

    async def estimate(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        deadline: Optional[float] = None,
    ):
        """Awaitable request — the drop-in for ``service.estimate()``."""
        return await self.submit(workload, device, deadline=deadline)

    async def stats(self) -> dict:
        return await self._request(OP_STATS, {"op": OP_STATS})

    async def ping(self) -> float:
        started = self._clock()
        await self._request(OP_PING, {"op": OP_PING})
        return self._clock() - started

    async def drain(self, timeout: Optional[float] = None) -> bool:
        return await self._request(
            OP_DRAIN, {"op": OP_DRAIN, "timeout": timeout}
        )

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._read_task.cancel()
        try:
            await self._read_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._fail_pending(ConnectionError("client closed"))

    async def __aenter__(self) -> "AsyncTcpServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _request(self, op: str, message: dict) -> "asyncio.Future":
        if self._closed:
            raise ServiceClosedError("client is closed")
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        msg_id = self._next_id
        self._next_id += 1
        self._pending[msg_id] = (op, future)
        message["id"] = msg_id
        self._writer.write(encode_frame(message, self.max_frame_bytes))
        return future

    async def _read_loop(self) -> None:
        decoder = FrameDecoder(self.max_frame_bytes)
        failure: Optional[Exception] = None
        try:
            while True:
                data = await self._reader.read(_READ_CHUNK)
                if not data:
                    break
                for message in decoder.feed(data):
                    if not self._handle_response(message):
                        return
        except asyncio.CancelledError:
            raise
        except WireProtocolError as error:
            failure = error
        except (ConnectionError, OSError):
            pass
        if self._closed:
            return  # deliberate aclose(): it fails pending itself
        if failure is None:
            failure = ConnectionLostError(
                tuple(sorted(self._pending)), "server closed connection"
            )
        self._fail_pending(failure)

    def _handle_response(self, message: dict) -> bool:
        msg_id = message.get("id")
        if msg_id is None:
            self._fail_pending(error_from_wire(message.get("error", {})))
            return False
        entry = self._pending.pop(msg_id, None)
        if entry is None:
            return True
        op, future = entry
        if future.done():
            return True
        if not message.get("ok"):
            future.set_exception(error_from_wire(message.get("error", {})))
            return True
        try:
            if op == OP_ESTIMATE:
                future.set_result(result_from_wire(message["result"]))
            elif op == OP_ESTIMATE_MANY:
                future.set_result(message["results"])
            elif op == OP_STATS:
                future.set_result(message["stats"])
            elif op == OP_DRAIN:
                future.set_result(message.get("drained", False))
            else:
                future.set_result(True)
        except (KeyError, WireProtocolError) as error:
            future.set_exception(
                WireProtocolError(f"malformed {op} response: {error!r}")
            )
        return True

    def _fail_pending(self, error: Exception) -> None:
        pending = list(self._pending.values())
        self._pending.clear()
        for _op, future in pending:
            if not future.done():
                future.set_exception(error)


# ----------------------------------------------------------------------
# in-process server harness
# ----------------------------------------------------------------------


class TcpServerThread:
    """Gateway + TCP server on a private event loop in a daemon thread.

    The in-process deployment mode: loadtests and tests get a real
    socket without a second process.  The gateway is constructed *inside*
    the loop thread (its ``asyncio.Event`` must bind to that loop), from
    the factory the caller supplies; ``stop()`` drains and closes both
    server and gateway on the loop, then joins the thread.
    """

    def __init__(
        self,
        gateway_factory: Callable[[], AsyncServiceGateway],
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self._gateway_factory = gateway_factory
        self._host = host
        self._port = port
        self._max_frame_bytes = max_frame_bytes
        self._clock = clock
        self.gateway: Optional[AsyncServiceGateway] = None
        self.server: Optional[TcpEstimationServer] = None
        self.address: Optional[tuple[str, int]] = None
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="tcp-server-loop", daemon=True
        )

    def start(self) -> tuple[str, int]:
        """Boot the loop thread; returns the bound (host, port)."""
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise RuntimeError(
                "TCP server failed to start"
            ) from self._startup_error
        assert self.address is not None
        return self.address

    def stop(self) -> None:
        """Drain + close server and gateway, then join the loop thread."""
        if not self._thread.is_alive():
            return
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30.0)

    def __enter__(self) -> "TcpServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    _loop: Optional[asyncio.AbstractEventLoop] = None

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            self.gateway = self._gateway_factory()
            self.server = TcpEstimationServer(
                self.gateway,
                host=self._host,
                port=self._port,
                max_frame_bytes=self._max_frame_bytes,
                clock=self._clock,
            )
            await self.server.start()
            self.address = self.server.address
        except BaseException as error:
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()
        await self.server.aclose()
        await self.gateway.aclose()
