"""Deterministic, seeded fault-injection plane (chaos as data).

Resilience code that is only exercised by real outages is untested code.
This module makes failure *schedulable*: a :class:`FaultPlan` is an
immutable table of :class:`FaultSpec` entries keyed by the global
request-submission index, and a :class:`FaultInjector` walks that table
as the gateway admits traffic.  Because the plan is pure data derived
from a seed, every chaos run is exactly reproducible — the property the
determinism tests and :mod:`benchmarks.bench_chaos` assert.

The plane is sans-IO like the rest of the stack: the injector only
*decides* (``next_index`` + ``directive_for``); each substrate *applies*
the decision where its failure mode physically lives:

``estimator_error`` / ``latency_spike`` / ``shard_blackout``
    Stamped into ``request.metadata["fault"]`` by the gateway and applied
    inside :func:`repro.service.core.invoke_estimator` — the one
    estimator-invocation point shared by all drivers, including the
    procpool worker processes (the directive rides the pickled metadata
    bag across the process boundary).
``worker_kill``
    Applied in the procpool worker before estimation (``os._exit``); on
    substrates without killable workers it degrades to an
    :class:`~repro.errors.InjectedFaultError`.
``connection_drop``
    Applied by :class:`~repro.service.tcp.TcpEstimationServer`, which
    consumes the planned index *before* the request reaches the gateway
    and aborts the connection; on in-process substrates there is no
    connection to drop, so the directive is a planned no-op (the index is
    still consumed, keeping plans aligned across drivers).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..errors import InjectedFaultError, ShardBlackoutError

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "apply_fault_directive",
]

#: Fault vocabulary.  Point faults hit one submission index; window
#: faults (``shard_blackout``) cover ``[start, stop)`` on one shard.
FAULT_KINDS = (
    "estimator_error",
    "latency_spike",
    "shard_blackout",
    "worker_kill",
    "connection_drop",
)

_POINT_KINDS = frozenset(
    {"estimator_error", "latency_spike", "worker_kill", "connection_drop"}
)


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Point faults set ``index``; ``shard_blackout`` sets the half-open
    submission-index window ``[start, stop)`` plus the target ``shard``.
    """

    kind: str
    index: Optional[int] = None
    start: Optional[int] = None
    stop: Optional[int] = None
    shard: Optional[int] = None
    latency_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if self.kind in _POINT_KINDS:
            if self.index is None or self.index < 0:
                raise ValueError(f"{self.kind} needs a submission index >= 0")
        else:  # shard_blackout
            if self.start is None or self.stop is None or self.shard is None:
                raise ValueError("shard_blackout needs start, stop and shard")
            if not 0 <= self.start < self.stop:
                raise ValueError("blackout window must satisfy 0 <= start < stop")
        if self.kind == "latency_spike" and self.latency_seconds <= 0.0:
            raise ValueError("latency_spike needs latency_seconds > 0")

    def as_dict(self) -> dict:
        payload: dict = {"kind": self.kind}
        for key in ("index", "start", "stop", "shard"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        if self.latency_seconds:
            payload["latency_seconds"] = self.latency_seconds
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        return cls(
            kind=payload["kind"],
            index=payload.get("index"),
            start=payload.get("start"),
            stop=payload.get("stop"),
            shard=payload.get("shard"),
            latency_seconds=payload.get("latency_seconds", 0.0),
        )


@dataclass(frozen=True)
class FaultPlan:
    """Immutable fault schedule over the global submission-index stream.

    Pure data, cheap to hash/compare, JSON round-trippable, and — when
    built via :meth:`seeded` — fully determined by the seed.  Lookups
    are O(1) per request via the precomputed point-fault table.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0
    #: index -> point spec (built in __post_init__; later specs win)
    _points: dict = field(default_factory=dict, repr=False, compare=False)
    _blackouts: tuple = field(default=(), repr=False, compare=False)

    def __post_init__(self) -> None:
        points: dict[int, FaultSpec] = {}
        blackouts = []
        for spec in self.specs:
            if spec.kind in _POINT_KINDS:
                points[spec.index] = spec
            else:
                blackouts.append(spec)
        object.__setattr__(self, "_points", points)
        object.__setattr__(self, "_blackouts", tuple(blackouts))

    def __len__(self) -> int:
        return len(self.specs)

    def directive_for(self, index: int, shard: int) -> Optional[dict]:
        """The fault directive for submission ``index`` landing on ``shard``.

        Blackout windows dominate point faults: a shard that is down is
        down regardless of what else was planned for the request.  The
        returned dict is JSON/pickle-safe — it travels in the request
        metadata bag across any substrate.
        """
        for spec in self._blackouts:
            if spec.shard == shard and spec.start <= index < spec.stop:
                return {"kind": "shard_blackout", "shard": shard}
        spec = self._points.get(index)
        if spec is None or spec.kind == "connection_drop":
            # connection drops are consumed at the transport layer, never
            # inside a dispatched request
            return None
        if spec.shard is not None and spec.shard != shard:
            return None
        directive: dict = {"kind": spec.kind}
        if spec.latency_seconds:
            directive["latency_seconds"] = spec.latency_seconds
        return directive

    def window_directive(self, index: int, shard: int) -> Optional[dict]:
        """Only the *window* faults (blackouts) covering this dispatch.

        Retries and hedges consult this instead of :meth:`directive_for`:
        point faults are one-shot (they fired at first dispatch and do
        not chase the request across attempts), but a blackout window is
        a property of the destination shard — a retry routed back into
        it still fails.
        """
        for spec in self._blackouts:
            if spec.shard == shard and spec.start <= index < spec.stop:
                return {"kind": "shard_blackout", "shard": shard}
        return None

    def is_connection_drop(self, index: int) -> bool:
        spec = self._points.get(index)
        return spec is not None and spec.kind == "connection_drop"

    def blackout_windows(self) -> tuple[FaultSpec, ...]:
        return self._blackouts

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "specs": [spec.as_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        return cls(
            specs=tuple(
                FaultSpec.from_dict(item) for item in payload.get("specs", ())
            ),
            seed=payload.get("seed", 0),
        )

    @classmethod
    def from_specs(
        cls, specs: Iterable[FaultSpec], seed: int = 0
    ) -> "FaultPlan":
        return cls(specs=tuple(specs), seed=seed)

    @classmethod
    def seeded(
        cls,
        seed: int,
        num_requests: int,
        num_shards: int,
        *,
        error_rate: float = 0.02,
        latency_rate: float = 0.02,
        latency_seconds: float = 0.02,
        worker_kills: int = 0,
        connection_drops: int = 0,
        blackouts: int = 0,
        blackout_span: int = 0,
    ) -> "FaultPlan":
        """Generate a reproducible plan from a seed.

        Point faults are drawn per-index with the given rates; blackout
        windows are placed at seeded offsets.  Two calls with the same
        arguments yield identical plans on every platform (only
        ``random.Random`` — never OS entropy — is consulted).
        """
        rng = random.Random(seed)
        specs: list[FaultSpec] = []
        for index in range(num_requests):
            roll = rng.random()
            if roll < error_rate:
                specs.append(FaultSpec(kind="estimator_error", index=index))
            elif roll < error_rate + latency_rate:
                specs.append(
                    FaultSpec(
                        kind="latency_spike",
                        index=index,
                        latency_seconds=latency_seconds,
                    )
                )
        taken = {spec.index for spec in specs}
        free = [i for i in range(num_requests) if i not in taken]
        rng.shuffle(free)
        for _ in range(worker_kills):
            if not free:
                break
            specs.append(FaultSpec(kind="worker_kill", index=free.pop()))
        for _ in range(connection_drops):
            if not free:
                break
            specs.append(FaultSpec(kind="connection_drop", index=free.pop()))
        span = blackout_span or max(1, num_requests // 4)
        for _ in range(blackouts):
            if num_requests <= span:
                start = 0
            else:
                start = rng.randrange(0, num_requests - span)
            specs.append(
                FaultSpec(
                    kind="shard_blackout",
                    start=start,
                    stop=start + span,
                    shard=rng.randrange(num_shards),
                )
            )
        specs.sort(key=lambda s: (s.kind, s.index or 0, s.start or 0))
        return cls(specs=tuple(specs), seed=seed)


class FaultInjector:
    """Walks a :class:`FaultPlan` as traffic arrives; owns the index.

    One injector serves one gateway run.  ``next_index`` must be called
    under whatever already serializes request admission (the gateway
    lock, the event loop) — the injector adds no locking of its own, in
    keeping with the sans-IO discipline.  ``counts`` tallies what
    actually fired, for chaos reports.
    """

    __slots__ = ("plan", "counts", "_cursor")

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.counts: dict[str, int] = {}
        self._cursor = 0

    @property
    def cursor(self) -> int:
        return self._cursor

    def next_index(self) -> int:
        """Consume and return the next global submission index."""
        index = self._cursor
        self._cursor += 1
        return index

    def directive_for(self, index: int, shard: int) -> Optional[dict]:
        directive = self.plan.directive_for(index, shard)
        if directive is not None:
            self.counts[directive["kind"]] = (
                self.counts.get(directive["kind"], 0) + 1
            )
        return directive

    def peek_window(self, index: int, shard: int) -> Optional[dict]:
        """Blackout coverage of a retry/hedge destination (no counting).

        Point faults are one-shot and already counted at first dispatch;
        only window faults follow the request across attempts.
        """
        if index is None:
            return None
        return self.plan.window_directive(index, shard)

    def take_connection_drop(self) -> bool:
        """Consume the next index iff it is a planned connection drop.

        Called by the TCP server *before* handing a request to the
        gateway, so dropped requests still consume exactly one plan
        index — keeping index streams aligned with in-process drivers,
        where the gateway consumes the same index as a no-op.
        """
        if self.plan.is_connection_drop(self._cursor):
            self._cursor += 1
            self.counts["connection_drop"] = (
                self.counts.get("connection_drop", 0) + 1
            )
            return True
        return False

    def snapshot(self) -> dict:
        return {
            "seed": self.plan.seed,
            "planned": len(self.plan),
            "cursor": self._cursor,
            "injected": dict(sorted(self.counts.items())),
        }


def apply_fault_directive(directive: Optional[dict]) -> None:
    """Apply an in-request fault directive at the estimator boundary.

    Called from :func:`repro.service.core.invoke_estimator` on every
    substrate (including inside procpool workers).  ``latency_spike``
    sleeps then proceeds; error kinds raise; transport-level kinds that
    slipped through are ignored.
    """
    if not directive:
        return
    kind = directive.get("kind")
    if kind == "latency_spike":
        import time

        time.sleep(float(directive.get("latency_seconds", 0.0)))
    elif kind == "shard_blackout":
        raise ShardBlackoutError(int(directive.get("shard", -1)))
    elif kind in ("estimator_error", "worker_kill"):
        # worker_kill only reaches here on substrates without killable
        # workers; it degrades to a plain injected estimator failure
        raise InjectedFaultError(kind)
