"""Observability for the serving stack: spans, ledger, reporting.

Three cooperating pieces, all stdlib-only:

- **Tracing** (:mod:`.spans`, :mod:`.exporters`) — every request yields
  a tree of named, timed spans (middleware hooks, estimator invocation,
  pipeline stages, gateway routing) exported through an
  OpenTelemetry-flavored :class:`~.exporters.SpanExporter`.
- **Audit ledger** (:mod:`.ledger`) — every policy decision
  (admit/shed/dedup/cache-hit/throttle/deadline) is recorded durably
  with its cause and provenance, queryable after the fact.
- **Reporting** (:mod:`.report`) — renders latency histograms,
  shard-heat tables, ledger summaries, and CI benchmark trends.

:class:`Telemetry` bundles one tracer + one ledger for handing to a
service or gateway: pass paths to capture durably, nothing to keep
everything in memory, and leave drivers telemetry-free (the default)
for zero overhead.
"""

from __future__ import annotations

from typing import Optional

from .exporters import (
    InMemorySpanExporter,
    JsonLinesSpanExporter,
    NullSpanExporter,
    SpanExporter,
)
from .ledger import (
    ADMIT,
    BREAKER,
    CACHE_HIT,
    COMPUTED,
    DEADLINE,
    DEDUP,
    ERROR,
    FAULT,
    HEDGE,
    REJECTED,
    REROUTE,
    RESILIENCE_EVENTS,
    RETRY,
    SHED,
    THROTTLED,
    WARMUP,
    AuditLedger,
    LedgerEvent,
)
from .report import (
    render_histogram,
    render_loadtest_report,
    render_shard_heat,
    render_trend_summary,
)
from .spans import (
    RequestTelemetry,
    Span,
    Tracer,
    canonical_trace_trees,
    stage_spans,
    worker_estimate_spans,
)

__all__ = [
    "Telemetry",
    "Span",
    "Tracer",
    "RequestTelemetry",
    "canonical_trace_trees",
    "stage_spans",
    "worker_estimate_spans",
    "SpanExporter",
    "InMemorySpanExporter",
    "JsonLinesSpanExporter",
    "NullSpanExporter",
    "AuditLedger",
    "LedgerEvent",
    "ADMIT",
    "SHED",
    "DEDUP",
    "CACHE_HIT",
    "COMPUTED",
    "THROTTLED",
    "DEADLINE",
    "REJECTED",
    "ERROR",
    "WARMUP",
    "RETRY",
    "HEDGE",
    "BREAKER",
    "REROUTE",
    "FAULT",
    "RESILIENCE_EVENTS",
    "render_histogram",
    "render_loadtest_report",
    "render_shard_heat",
    "render_trend_summary",
]


class Telemetry:
    """One tracer + one ledger, ready to hand to a service or gateway.

    The default captures both in memory (tests, reports); pass
    ``spans_path`` / ``ledger_path`` for durable JSON-lines capture.
    A single instance is safely shared by a gateway and all its shards —
    both primitives are thread-safe — which is what makes fleet-wide
    traces and a fleet-wide decision ledger possible.
    """

    def __init__(
        self,
        spans_path: Optional[str] = None,
        ledger_path: Optional[str] = None,
        exporter: Optional[SpanExporter] = None,
        max_ledger_events: Optional[int] = None,
        detail: str = "standard",
    ):
        """``detail="full"`` adds a span per middleware hook (see
        :class:`~.spans.Tracer`); the ``standard`` default keeps the
        per-request span count at the level the overhead gate covers."""
        if exporter is None:
            exporter = (
                JsonLinesSpanExporter(spans_path)
                if spans_path
                else InMemorySpanExporter()
            )
        self.exporter = exporter
        self.tracer = Tracer(exporter, detail=detail)
        self.ledger = AuditLedger(
            max_events=max_ledger_events, path=ledger_path
        )

    def spans(self):
        """In-memory spans, when the exporter keeps them (else [])."""
        return getattr(self.exporter, "spans", [])

    def close(self) -> None:
        """Flush and close any file-backed capture (idempotent)."""
        self.exporter.shutdown()
        self.ledger.close()
