"""Durable audit/provenance ledger for policy decisions.

Every admit/shed/dedup/cache-hit/throttle/deadline/reject decision the
serving stack takes is recorded as one immutable :class:`LedgerEvent`
with its *cause*, request fingerprint, shard id, and (when a process
worker computed the answer) worker pid.  The ledger answers the two
questions the ad-hoc audit middleware could not: "what happened to
request X" (``events(fingerprint=...)``) and "did two drivers make the
same decisions" (:meth:`AuditLedger.decision_sequence`).

Durability is JSON-lines: pass ``path=`` and every event is appended as
it is recorded, and :meth:`AuditLedger.load` rebuilds a ledger from the
capture after the process is gone.

Determinism: global ``seq`` numbers are assigned in arrival order, which
is substrate-dependent (thread completions interleave with admissions).
``decision_sequence`` therefore canonicalises: it groups by shard and
layer and orders by per-request causality, under which all three drivers
produce *identical* sequences for the same seeded scenario — the
cross-driver identity tests and the telemetry benchmark assert exactly
that.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

__all__ = [
    "LedgerEvent",
    "AuditLedger",
    "ADMIT",
    "SHED",
    "DEDUP",
    "CACHE_HIT",
    "COMPUTED",
    "THROTTLED",
    "DEADLINE",
    "REJECTED",
    "ERROR",
    "WARMUP",
    "QUOTA",
    "AUTH",
    "RETRY",
    "HEDGE",
    "BREAKER",
    "REROUTE",
    "FAULT",
    "ARTIFACT",
    "RESILIENCE_EVENTS",
]

#: Shared by every attribute-less event — never mutate.
_NO_ATTRS: dict = {}

#: Event names — the closed vocabulary of policy decisions.
ADMIT = "admit"
SHED = "shed"
DEDUP = "dedup"
CACHE_HIT = "cache_hit"
COMPUTED = "computed"
THROTTLED = "throttled"
DEADLINE = "deadline"
REJECTED = "rejected"
ERROR = "error"
WARMUP = "warmup"
#: Control-plane decisions (PR 10): a tenant's quota or fair share shed
#: the request, or the auth shim refused it — recorded at the gateway
#: layer with the deterministic gateway submission sequence as
#: ``request_id`` (quota) or at the service layer (auth middleware).
QUOTA = "quota"
AUTH = "auth"
#: Resilience-plane decisions (PR 8): recorded at the gateway layer with
#: the deterministic gateway submission sequence as ``request_id``.
RETRY = "retry"
HEDGE = "hedge"
BREAKER = "breaker"
REROUTE = "reroute"
FAULT = "fault"
#: A pipeline stage was answered by the persistent artifact store (PR 9):
#: provenance for results assembled from cross-process cached artifacts.
ARTIFACT = "artifact"

#: The events whose canonical order is asserted replay-deterministic —
#: see :meth:`AuditLedger.resilience_sequence`.  ``hedge`` is excluded:
#: hedges fire on wall-clock latency thresholds, which is exactly the
#: kind of timing the determinism invariant factors out.
RESILIENCE_EVENTS = frozenset({RETRY, BREAKER, REROUTE, FAULT})


@dataclass(slots=True)
class LedgerEvent:
    """One policy decision, with provenance.

    Treat as immutable once recorded — not declared ``frozen`` because a
    frozen dataclass pays ``object.__setattr__`` per field on every
    construction, and the ledger records on the request hot path.
    """

    seq: int
    ts: float
    event: str
    cause: str
    fingerprint: str
    request_id: int
    shard: Optional[int] = None
    worker: Optional[str] = None
    attributes: dict[str, Any] = field(default_factory=dict, compare=False)

    def as_dict(self) -> dict:
        """JSON-ready wire format (round-trips via :meth:`from_dict`)."""
        return {
            "seq": self.seq,
            "ts": self.ts,
            "event": self.event,
            "cause": self.cause,
            "fingerprint": self.fingerprint,
            "request_id": self.request_id,
            "shard": self.shard,
            "worker": self.worker,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LedgerEvent":
        """Inverse of :meth:`as_dict` (round-trips exactly)."""
        return cls(
            seq=payload["seq"],
            ts=payload["ts"],
            event=payload["event"],
            cause=payload["cause"],
            fingerprint=payload["fingerprint"],
            request_id=payload["request_id"],
            shard=payload.get("shard"),
            worker=payload.get("worker"),
            attributes=dict(payload.get("attributes", {})),
        )

    @property
    def layer(self) -> str:
        """Which stack layer decided: ``gateway`` or ``service``."""
        return self.attributes.get("layer", "service")


class AuditLedger:
    """Append-only, thread-safe record of every policy decision.

    ``max_events`` bounds memory (oldest evicted first, like the old
    audit middleware's ring); ``path`` additionally appends each event
    to a JSON-lines file as it is recorded, making the ledger durable
    across process exit.
    """

    def __init__(
        self,
        max_events: Optional[int] = None,
        path: Optional[str] = None,
        clock=time.perf_counter,
    ):
        self._lock = threading.Lock()
        self._events: deque[LedgerEvent] = deque(maxlen=max_events)
        self._clock = clock
        # itertools.count: lock-free unique seq under the GIL; the lock
        # only guards the optional file handle (see record)
        self._seqs = itertools.count(1)
        self.path = path
        self._handle = None

    def record(
        self,
        event: str,
        *,
        cause: str,
        fingerprint: str,
        request_id: int,
        shard: Optional[int] = None,
        worker: Optional[str] = None,
        attributes: Optional[dict] = None,
    ) -> LedgerEvent:
        """Append one decision; returns the sealed event.

        The ledger takes ownership of ``attributes`` (no defensive
        copy) — callers pass fresh literals on the hot path.  Events
        without attributes share one empty dict (events are
        treat-as-immutable, and a fresh dict per event is measurable GC
        pressure at request rates).
        """
        entry = LedgerEvent(
            seq=next(self._seqs),
            ts=self._clock(),
            event=event,
            cause=cause,
            fingerprint=fingerprint,
            request_id=request_id,
            shard=shard,
            worker=worker,
            attributes=attributes if attributes is not None else _NO_ATTRS,
        )
        # deque.append is GIL-atomic; only the file tail needs the lock
        self._events.append(entry)
        if self.path is not None:
            line = json.dumps(entry.as_dict(), sort_keys=True) + "\n"
            with self._lock:
                if self._handle is None:
                    self._handle = open(self.path, "a", encoding="utf-8")
                self._handle.write(line)
        return entry

    def events(
        self,
        fingerprint: Optional[str] = None,
        event: Optional[str] = None,
        shard: Optional[int] = None,
    ) -> list[LedgerEvent]:
        """Query the ledger, oldest-first, on any provenance axis."""
        with self._lock:
            snapshot = list(self._events)
        return [
            entry
            for entry in snapshot
            if (fingerprint is None or entry.fingerprint == fingerprint)
            and (event is None or entry.event == event)
            and (shard is None or entry.shard == shard)
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def resilience_sequence(self) -> list[tuple]:
        """Canonical order of resilience-plane decisions only.

        Retry/breaker/re-route/fault events are keyed by the gateway
        submission sequence (assigned under the driver's serialization
        point), so — unlike the full ledger, whose shard-level request
        ids depend on completion interleaving once retries re-dispatch —
        this filtered sequence is identical across runs of the same
        seeded fault plan.  The determinism property test and
        ``bench_chaos`` assert on exactly this view.  Returns
        ``(event, cause, request_id, shard)`` tuples.
        """
        with self._lock:
            snapshot = list(self._events)
        ordered = sorted(
            (e for e in snapshot if e.event in RESILIENCE_EVENTS),
            key=lambda entry: (
                entry.request_id,
                entry.event,
                entry.shard if entry.shard is not None else -1,
                entry.seq,
            ),
        )
        return [
            (entry.event, entry.cause, entry.request_id, entry.shard)
            for entry in ordered
        ]

    def decision_sequence(self) -> list[tuple]:
        """The canonical, substrate-independent decision order.

        Sorted by (shard, layer, request_id, seq): within one request on
        one shard, events are causally ordered by ``seq`` (admission
        before completion); across requests the ordering is by the
        deterministic per-shard request id.  Arrival-interleaving — the
        only thing that differs between thread, asyncio, and process
        execution — is factored out, so identical policy behaviour
        yields identical sequences.  Returns
        ``(event, cause, fingerprint, shard)`` tuples.
        """
        with self._lock:
            snapshot = list(self._events)
        ordered = sorted(
            snapshot,
            key=lambda entry: (
                entry.shard if entry.shard is not None else -1,
                entry.layer,
                entry.request_id,
                entry.seq,
            ),
        )
        return [
            (entry.event, entry.cause, entry.fingerprint, entry.shard)
            for entry in ordered
        ]

    def summary(self) -> dict:
        """Event counts by name — the report's decision table."""
        with self._lock:
            snapshot = list(self._events)
        counts: dict[str, int] = {}
        for entry in snapshot:
            counts[entry.event] = counts.get(entry.event, 0) + 1
        return dict(sorted(counts.items()))

    def flush(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    @classmethod
    def load(cls, path: str) -> "AuditLedger":
        """Rebuild a (read-only) ledger from a JSON-lines capture."""
        ledger = cls()
        events: list[LedgerEvent] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    events.append(LedgerEvent.from_dict(json.loads(line)))
        with ledger._lock:
            ledger._events.extend(events)
            top = max((entry.seq for entry in events), default=0)
            ledger._seqs = itertools.count(top + 1)
        return ledger

    def extend(self, events: Iterable[LedgerEvent]) -> None:
        """Bulk-append pre-sealed events (merging captures for reports)."""
        with self._lock:
            top = 0
            for entry in events:
                self._events.append(entry)
                if entry.seq > top:
                    top = entry.seq
            if top:
                self._seqs = itertools.count(top + 1)
