"""Span exporters: where closed spans go.

OpenTelemetry-flavored but dependency-free: an exporter is anything with
``export(span)`` and ``shutdown()``.  The tracer hands each span over
exactly once, when it closes.  Three implementations cover the needs of
tests (:class:`InMemorySpanExporter`), durable capture
(:class:`JsonLinesSpanExporter`), and zero-overhead opt-out
(:class:`NullSpanExporter`).
"""

from __future__ import annotations

import json
import threading
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .spans import Span

__all__ = [
    "SpanExporter",
    "InMemorySpanExporter",
    "JsonLinesSpanExporter",
    "NullSpanExporter",
]


class SpanExporter:
    """Protocol base: receives every closed span exactly once."""

    def export(self, span: "Span") -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def shutdown(self) -> None:
        """Flush and release resources (idempotent)."""


class InMemorySpanExporter(SpanExporter):
    """Collects spans in a list — the test and report workhorse.

    Lock-free: ``list.append`` (and the snapshot copy) are atomic under
    the GIL, and export sits on every request's hot path.
    """

    def __init__(self):
        self._spans: list["Span"] = []

    def export(self, span: "Span") -> None:
        self._spans.append(span)

    @property
    def spans(self) -> list["Span"]:
        """A snapshot copy, in export (close) order."""
        return list(self._spans)

    def clear(self) -> None:
        self._spans.clear()


class JsonLinesSpanExporter(SpanExporter):
    """Appends one JSON object per span to a file — durable capture.

    The file handle opens lazily on first export so constructing a
    telemetry stack never touches the filesystem unless spans flow.
    """

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._handle = None

    def export(self, span: "Span") -> None:
        line = json.dumps(span.as_dict(), sort_keys=True)
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")

    def shutdown(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    @classmethod
    def read(cls, path: str) -> list["Span"]:
        """Load spans back from a JSON-lines capture."""
        from .spans import Span

        spans = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    spans.append(Span.from_dict(json.loads(line)))
        return spans


class NullSpanExporter(SpanExporter):
    """Discards everything — tracing machinery with no capture cost."""

    def export(self, span: "Span") -> None:
        return None
