"""Human-readable rendering of telemetry: histograms, heat, trends.

Everything here is pure string formatting over JSON-shaped inputs — the
renderers take the dicts that :meth:`ServiceMetrics.as_dict`, the
gateway snapshot, the :class:`~.ledger.AuditLedger`, and
``benchmarks/check_regression.py`` already produce, so they can run on
live objects or on captures loaded back from disk (and are unit-tested
as plain functions, like the regression gate itself).
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = [
    "render_histogram",
    "render_shard_heat",
    "render_loadtest_report",
    "render_trend_summary",
]

#: Width of the bar column in rendered histograms.
BAR_WIDTH = 40


def _format_bound(seconds: float) -> str:
    if seconds == float("inf"):
        return "+inf"
    if seconds >= 1.0:
        return f"{seconds:g}s"
    return f"{seconds * 1e3:g}ms"


def render_histogram(
    histogram: dict, title: str = "latency", width: int = BAR_WIDTH
) -> str:
    """ASCII bar chart of a ``{"bounds": [...], "counts": [...]}`` dict.

    ``bounds`` are upper edges (the final count is the overflow bucket);
    empty leading/trailing buckets are elided so the interesting range
    fills the chart.
    """
    bounds = list(histogram.get("bounds", ()))
    counts = list(histogram.get("counts", ()))
    if not counts or not any(counts):
        return f"{title}: no samples"
    edges = [_format_bound(bound) for bound in bounds] + ["+inf"]
    first = next(i for i, count in enumerate(counts) if count)
    last = max(i for i, count in enumerate(counts) if count)
    peak = max(counts)
    total = sum(counts)
    lines = [f"{title} ({total} samples):"]
    for index in range(first, last + 1):
        count = counts[index]
        bar = "#" * max(1 if count else 0, round(count / peak * width))
        lines.append(f"  <= {edges[index]:>8}  {count:>6}  {bar}")
    return "\n".join(lines)


def render_shard_heat(shards: Sequence[dict], routed: Optional[dict] = None) -> str:
    """Per-shard load table: routed, answered, hit rate, p95.

    ``shards`` is the gateway snapshot's per-shard stats list (each entry
    a ``ServiceMetrics.as_dict`` payload, possibly nested under
    ``"service"``); ``routed`` the gateway's routed-per-shard counter
    (a list indexed by shard, or a dict keyed by shard index).
    """
    lines = [
        f"{'shard':>5}{'routed':>8}{'requests':>10}{'hits':>7}"
        f"{'hit rate':>10}{'p95 ms':>9}"
    ]
    for index, entry in enumerate(shards):
        stats = entry.get("service", entry)
        latency = stats.get("latency_seconds", {})
        p95 = latency.get("p95")
        routed_count = ""
        if isinstance(routed, (list, tuple)):
            routed_count = routed[index] if index < len(routed) else 0
        elif routed is not None:
            routed_count = routed.get(str(index), routed.get(index, 0))
        lines.append(
            f"{index:>5}{routed_count!s:>8}{stats.get('requests', 0):>10}"
            f"{stats.get('cache_hits', 0):>7}"
            f"{stats.get('cache_hit_rate', 0.0):>9.1%}"
            f"{(f'{p95 * 1e3:.2f}' if p95 is not None and p95 == p95 else '-'):>9}"
        )
    return "\n".join(lines)


def render_loadtest_report(
    run: dict, ledger=None, spans: Optional[Sequence] = None
) -> str:
    """The full ``loadtest --report`` panel for one replay run.

    ``run`` carries ``scenario``/``policy``/``driver`` plus the
    :class:`~repro.service.traffic.ReplayReport`; ``ledger`` and
    ``spans`` (when telemetry was enabled) add the decision summary and
    span accounting.
    """
    report = run["report"]
    stats = report.stats
    aggregate = stats.get("aggregate", {})
    gateway = stats.get("gateway", {})
    header = (
        f"=== {run['scenario']} / {run.get('policy', '?')} policy / "
        f"{run.get('driver', '?')} driver ==="
    )
    lines = [
        header,
        f"requests {report.num_requests}  answered {report.answered}  "
        f"shed {report.shed}  rejected {report.rejected}  "
        f"errors {report.errors}",
        f"throughput {report.throughput_rps:,.0f} req/s  "
        f"cache hit rate {aggregate.get('cache_hit_rate', 0.0):.1%}",
    ]
    histogram = aggregate.get("latency_seconds", {}).get("histogram")
    if histogram:
        lines.append("")
        lines.append(render_histogram(histogram, title="latency"))
    shards = stats.get("shards")
    if shards:
        lines.append("")
        lines.append("shard heat:")
        lines.append(
            render_shard_heat(shards, gateway.get("routed_per_shard"))
        )
    tenants = getattr(report, "tenants", None)
    if tenants:
        lines.append("")
        lines.append("per-tenant:")
        for name in sorted(tenants):
            bucket = tenants[name]
            lines.append(
                f"  {name:<14} submitted {bucket['submitted']:>5}  "
                f"answered {bucket['answered']:>5}  "
                f"quota-shed {bucket['quota_shed']:>4}  "
                f"shed {bucket['shed']:>4}  "
                f"rejected {bucket['rejected']:>4}  "
                f"p99 {report.tenant_latency_ms(name, 99):.2f} ms"
            )
    if ledger is not None:
        lines.append("")
        lines.append("ledger decisions:")
        for event, count in ledger.summary().items():
            lines.append(f"  {event:<12} {count:>6}")
    if spans is not None:
        by_name: dict[str, tuple[int, float]] = {}
        for span in spans:
            duration = span.duration or 0.0
            count, total = by_name.get(span.name, (0, 0.0))
            by_name[span.name] = (count + 1, total + duration)
        lines.append("")
        lines.append(f"spans ({len(spans)} exported):")
        top = sorted(
            by_name.items(), key=lambda item: item[1][1], reverse=True
        )[:10]
        for name, (count, total) in top:
            lines.append(
                f"  {name:<24} x{count:<6} {total * 1e3:9.2f} ms total"
            )
    return "\n".join(lines)


def render_trend_summary(trend: dict) -> str:
    """Render ``check_regression.py``'s trend JSON as a readable table.

    CI uploads this next to the raw trend so a regression is legible
    from the artifact listing without re-deriving deltas by hand.
    """
    lines = ["# Benchmark trend", ""]
    baseline_grid = trend.get("baseline_grid")
    current_grid = trend.get("current_grid")
    if baseline_grid or current_grid:
        lines.append(f"grid: {baseline_grid} -> {current_grid}")
        lines.append("")
    if trend.get("skipped"):
        lines.append(f"SKIPPED: {trend['skipped']}")
        return "\n".join(lines)
    lines.append(
        f"{'metric':<28}{'baseline':>12}{'current':>12}"
        f"{'delta':>9}{'verdict':>9}"
    )
    for name, entry in sorted(trend.get("metrics", {}).items()):
        if not isinstance(entry, dict):
            # hand-edited or truncated trend files happen; a malformed
            # entry loses its row, not the whole report
            lines.append(f"{name:<28}{'(malformed entry — skipped)':>42}")
            continue
        delta = entry.get("delta")
        delta_text = f"{delta:+.1%}" if delta is not None else "n/a"
        lines.append(
            f"{name:<28}{entry.get('baseline', 'n/a')!s:>12}"
            f"{entry.get('current', 'n/a')!s:>12}"
            f"{delta_text:>9}{entry.get('verdict', '?'):>9}"
        )
    lines.append("")
    regressions = trend.get("regressions") or []
    if regressions:
        lines.append(f"REGRESSIONS: {', '.join(regressions)}")
    else:
        lines.append("ok: all metrics within tolerance")
    return "\n".join(lines)
