"""Span-style structured tracing for the serving stack.

A :class:`Span` is one named, timed operation inside one request: the
request itself (the *root* span), each middleware ``on_request`` hook,
the estimator invocation, a pipeline stage, a gateway routing decision.
Spans form a tree per *trace* (one trace = one request as the caller saw
it, gateway hops included) via ``trace_id``/``parent_id``, mirroring the
OpenTelemetry data model without the dependency: plain objects, a
:class:`Tracer` that numbers and exports them, and a JSON-ready
``as_dict``/``from_dict`` wire format that survives the same pickle
boundary as the request envelope.

Clock domains: span times come from the clock of the process that opened
the span (``time.perf_counter`` by default), so *durations* are always
meaningful while absolute values are only comparable within one process.
The process-pool driver re-bases worker-side spans onto the parent clock
when it re-attaches them (:meth:`RequestTelemetry.attach_spans`), so an
exported trace is monotone even across the pickle boundary.

Determinism: span *names and nesting* are pure functions of the policy
decisions taken for a request — the cross-driver tests assert the same
scenario yields the same :func:`canonical_trace_trees` under threads,
asyncio, and processes.  Ids and timestamps are substrate-dependent and
excluded from those comparisons.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

__all__ = [
    "Span",
    "Tracer",
    "RequestTelemetry",
    "canonical_trace_trees",
    "stage_spans",
    "worker_estimate_spans",
]

#: Root-span name every driver uses for one service-level request.
REQUEST_SPAN = "request"
#: Span name for the estimator invocation (any substrate).
ESTIMATE_SPAN = "estimate"
#: Span-name prefix for pipeline stages (``stage:profile`` ...).
STAGE_PREFIX = "stage:"
#: Span-name prefix for middleware ``on_request`` hooks.
MIDDLEWARE_PREFIX = "middleware:"
#: Root-span name for one gateway-level request (routing + queueing).
GATEWAY_SPAN = "gateway"


@dataclass(slots=True)
class Span:
    """One named, timed operation; a node of a per-request trace tree."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    start: float = 0.0
    end: Optional[float] = None
    status: str = "ok"
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        """Seconds between open and close (None while still open)."""
        if self.end is None:
            return None
        return self.end - self.start

    def shift(self, delta: float) -> None:
        """Translate this span into another clock domain (see module doc)."""
        self.start += delta
        if self.end is not None:
            self.end += delta

    def as_dict(self) -> dict:
        """JSON-ready wire format (round-trips via :meth:`from_dict`)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Inverse of :meth:`as_dict` (round-trips exactly)."""
        return cls(
            name=payload["name"],
            trace_id=payload["trace_id"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            start=payload.get("start", 0.0),
            end=payload.get("end"),
            status=payload.get("status", "ok"),
            attributes=dict(payload.get("attributes", {})),
        )


class Tracer:
    """Opens, closes, and exports spans for one service or fleet.

    Thread-safe (the id counter and the exporter hand-off are locked), so
    one tracer can be shared by a gateway and all its shards — which is
    exactly how a fleet gets one coherent span stream.  ``exporter`` is
    any :class:`~repro.service.telemetry.exporters.SpanExporter`; spans
    are exported when they *close*.
    """

    def __init__(
        self,
        exporter=None,
        clock: Callable[[], float] = time.perf_counter,
        detail: str = "standard",
    ):
        if detail not in ("standard", "full"):
            raise ValueError(
                f"detail={detail!r}; choose 'standard' or 'full'"
            )
        if exporter is None:
            from .exporters import InMemorySpanExporter

            exporter = InMemorySpanExporter()
        self.exporter = exporter
        self.clock = clock
        #: ``standard`` traces request/estimate/gateway spans; ``full``
        #: adds a span per middleware hook.  Standard is the default
        #: because hook spans triple the span count on the hot path —
        #: the overhead benchmark gates the standard configuration.
        self.detail = detail
        # itertools.count: next() is a single bytecode under the GIL, so
        # ids stay unique across threads without a lock on the hot path
        self._ids = itertools.count(1)

    def _new_id(self) -> str:
        # zero-padded so lexicographic order == creation order
        return f"s{next(self._ids):08d}"

    def start_trace(
        self,
        trace_id: str,
        name: str = REQUEST_SPAN,
        parent_id: Optional[str] = None,
        attributes: Optional[dict] = None,
    ) -> Span:
        """Open the root span of a new trace (or join ``parent_id``).

        The tracer takes ownership of ``attributes`` (no defensive copy)
        — callers pass fresh literals on the hot path.
        """
        return Span(
            name=name,
            trace_id=trace_id,
            span_id=self._new_id(),
            parent_id=parent_id,
            start=self.clock(),
            attributes=attributes if attributes is not None else {},
        )

    def start_span(
        self,
        name: str,
        parent: Optional[Span] = None,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        start: Optional[float] = None,
        attributes: Optional[dict] = None,
    ) -> Span:
        """Open a child span (of ``parent``, or of explicit ids).

        Takes ownership of ``attributes``, like :meth:`start_trace`.
        """
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        return Span(
            name=name,
            trace_id=trace_id or "local",
            span_id=self._new_id(),
            parent_id=parent_id,
            start=self.clock() if start is None else start,
            attributes=attributes if attributes is not None else {},
        )

    def end(self, span: Span, status: str = "ok", **attributes) -> Span:
        """Close a span (idempotent) and hand it to the exporter."""
        if span.end is not None:
            return span
        span.end = self.clock()
        span.status = status
        if attributes:
            span.attributes.update(attributes)
        self.exporter.export(span)
        return span

    def export(self, span: Span) -> None:
        """Export an already-closed span (worker-side re-attachment)."""
        self.exporter.export(span)


class RequestTelemetry:
    """The live tracing handle threaded through one request's context.

    Carried on :attr:`~repro.service.context.RequestContext.telemetry`
    (never serialized — the JSON-safe *span context* travels in the
    ``metadata`` bag instead, see :meth:`context`).  Owns the root span
    and the optional estimate span, and is the one place that knows how
    to lay pipeline-stage spans under the estimate — parent-side for the
    thread/asyncio drivers, re-attached from the worker for processes.
    """

    __slots__ = ("tracer", "root", "estimate", "stages_attached")

    def __init__(self, tracer: Tracer, root: Span):
        self.tracer = tracer
        self.root = root
        self.estimate: Optional[Span] = None
        self.stages_attached = False

    @classmethod
    def begin(
        cls,
        tracer: Tracer,
        fingerprint: str,
        request_id: int,
        parent_context: Optional[dict] = None,
    ) -> "RequestTelemetry":
        """Open the root request span, joining a caller's trace if the
        metadata bag shipped one (``{"trace_id", "span_id"}``)."""
        if parent_context:
            trace_id = parent_context["trace_id"]
            parent_id = parent_context.get("span_id")
        else:
            trace_id = f"{fingerprint[:12]}-{request_id}"
            parent_id = None
        # built in one shot (not via start_trace) — this runs on every
        # traced request, so skip the helper-call chain
        root = Span(
            name=REQUEST_SPAN,
            trace_id=trace_id,
            span_id=tracer._new_id(),
            parent_id=parent_id,
            start=tracer.clock(),
            attributes={"fingerprint": fingerprint, "request_id": request_id},
        )
        return cls(tracer, root)

    def context(self) -> dict:
        """The JSON/pickle-safe span context for the metadata bag."""
        return {"trace_id": self.root.trace_id, "span_id": self.root.span_id}

    def child(
        self, name: str, attributes: Optional[dict] = None
    ) -> Span:
        """Open a span under the root (middleware hooks, estimate)."""
        return self.tracer.start_span(
            name, parent=self.root, attributes=attributes
        )

    def end(self, span: Span, status: str = "ok", **attributes) -> None:
        self.tracer.end(span, status=status, **attributes)

    def begin_estimate(self, **attributes) -> Span:
        """Open the estimator-invocation span (thread/asyncio drivers)."""
        self.estimate = self.child(ESTIMATE_SPAN, attributes or None)
        return self.estimate

    def finish_estimate(
        self, stage_seconds: Optional[dict] = None, status: str = "ok"
    ) -> None:
        """Close the estimate span and lay stage spans under it.

        No-op for requests whose estimate never ran parent-side (cache
        hits; the process driver, whose worker ships its own spans).
        """
        if self.estimate is None:
            return
        self.tracer.end(self.estimate, status=status)
        if stage_seconds and not self.stages_attached:
            for span in stage_spans(
                stage_seconds,
                trace_id=self.estimate.trace_id,
                parent_id=self.estimate.span_id,
                end=self.estimate.end,
                make_id=self.tracer._new_id,
            ):
                self.tracer.export(span)
            self.stages_attached = True

    def attach_spans(
        self, payloads: Sequence[dict], rebase_to: Optional[float] = None
    ) -> None:
        """Re-attach spans that crossed a process boundary as dicts.

        ``rebase_to`` translates the foreign clock domain so the latest
        worker timestamp lands at the given parent-clock value (the
        moment the result arrived) — durations are preserved exactly.
        """
        spans = [Span.from_dict(payload) for payload in payloads]
        if rebase_to is not None and spans:
            latest = max(
                span.end if span.end is not None else span.start
                for span in spans
            )
            delta = rebase_to - latest
            for span in spans:
                span.shift(delta)
        for span in spans:
            self.tracer.export(span)
        self.stages_attached = True

    def close(self, status: str = "ok", **attributes) -> None:
        """Close the root span (idempotent — first outcome wins)."""
        self.tracer.end(self.root, status=status, **attributes)


def stage_spans(
    stage_seconds: dict,
    trace_id: str,
    parent_id: str,
    end: float,
    make_id: Callable[[], str],
) -> list[Span]:
    """Pipeline-stage spans laid back-to-back, ending at ``end``.

    Staged estimators report per-stage wall-clock as bare floats
    (:attr:`~repro.core.result.EstimationResult.stage_seconds`); this
    reconstructs contiguous child spans from those durations so every
    driver — and the process-pool worker — produces the same
    ``stage:<name>`` children under the estimate span.
    """
    total = sum(stage_seconds.values())
    cursor = end - total
    spans = []
    for stage, seconds in stage_seconds.items():
        spans.append(
            Span(
                name=f"{STAGE_PREFIX}{stage}",
                trace_id=trace_id,
                span_id=make_id(),
                parent_id=parent_id,
                start=cursor,
                end=cursor + seconds,
                attributes={"seconds": seconds},
            )
        )
        cursor += seconds
    return spans


def worker_estimate_spans(
    span_context: dict,
    worker_pid: Optional[int],
    start: float,
    end: float,
    stage_seconds: Optional[dict] = None,
) -> list[Span]:
    """The estimate span (+ stage children) built *inside* a pool worker.

    Ids are namespaced by PID so two workers can never collide within a
    trace; the parent re-bases the clock domain on re-attachment.
    """
    counter = iter(range(10_000))

    def make_id() -> str:
        return f"w{worker_pid}-{next(counter):04d}"

    estimate = Span(
        name=ESTIMATE_SPAN,
        trace_id=span_context["trace_id"],
        span_id=make_id(),
        parent_id=span_context.get("span_id"),
        start=start,
        end=end,
        attributes={"worker": str(worker_pid)},
    )
    spans = [estimate]
    if stage_seconds:
        spans.extend(
            stage_spans(
                stage_seconds,
                trace_id=estimate.trace_id,
                parent_id=estimate.span_id,
                end=end,
                make_id=make_id,
            )
        )
    return spans


def canonical_trace_trees(spans: Sequence[Span]) -> list[tuple]:
    """Name-only nesting of every trace, in deterministic order.

    Returns one ``(name, (children...))`` tuple per trace root, traces
    sorted by ``trace_id`` and siblings by start time — the form the
    cross-driver tests compare, because names and nesting are policy
    decisions while ids and timestamps are substrate accidents.
    """
    by_parent: dict[tuple[str, Optional[str]], list[Span]] = {}
    ids = {(span.trace_id, span.span_id) for span in spans}
    for span in spans:
        parent = span.parent_id
        if parent is not None and (span.trace_id, parent) not in ids:
            parent = None  # orphan (parent not exported): treat as root
        by_parent.setdefault((span.trace_id, parent), []).append(span)

    def subtree(span: Span) -> tuple:
        children = sorted(
            by_parent.get((span.trace_id, span.span_id), ()),
            key=lambda child: (child.start, child.span_id),
        )
        return (span.name, tuple(subtree(child) for child in children))

    roots = sorted(
        (
            span
            for span in spans
            if span.parent_id is None
            or (span.trace_id, span.parent_id) not in ids
        ),
        key=lambda span: (span.trace_id, span.start, span.span_id),
    )
    return [subtree(root) for root in roots]
