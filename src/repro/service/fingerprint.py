"""Canonical request fingerprints for the estimation service.

Two estimation requests are *the same request* iff they agree on the
workload, the device, the allocator configuration, and the estimator
(name + version).  The fingerprint is a stable SHA-256 over the canonical
JSON encoding of exactly those inputs, so it can key the estimate cache,
the single-flight table, and any future persistent store — across
processes and across runs.

Stability contract: the payload layout (field names and order) is
versioned via :data:`FINGERPRINT_VERSION`; bump it whenever the canonical
encoding changes so stale persisted entries can never alias fresh ones.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Optional

from ..allocator.constants import AllocatorConfig
from ..workload import DeviceSpec, WorkloadConfig

#: Bump when the canonical payload layout changes.
FINGERPRINT_VERSION = 1

#: Hex digits kept from the SHA-256 digest (128 bits: collision-safe for
#: any conceivable request population, half the log noise).
DIGEST_LENGTH = 32


def request_payload(
    workload: WorkloadConfig,
    device: DeviceSpec,
    *,
    estimator_name: str,
    estimator_version: str = "",
    allocator_config: Optional[AllocatorConfig] = None,
) -> dict[str, Any]:
    """The canonical, JSON-ready identity of one estimation request."""
    return {
        "v": FINGERPRINT_VERSION,
        "estimator": {"name": estimator_name, "version": estimator_version},
        "workload": workload.as_dict(),
        "device": device.as_dict(),
        "allocator": (
            None
            if allocator_config is None
            else dataclasses.asdict(allocator_config)
        ),
    }


def fingerprint_request(
    workload: WorkloadConfig,
    device: DeviceSpec,
    *,
    estimator_name: str,
    estimator_version: str = "",
    allocator_config: Optional[AllocatorConfig] = None,
) -> str:
    """Stable hex fingerprint of one estimation request."""
    payload = request_payload(
        workload,
        device,
        estimator_name=estimator_name,
        estimator_version=estimator_version,
        allocator_config=allocator_config,
    )
    encoded = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()[:DIGEST_LENGTH]
