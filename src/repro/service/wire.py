"""Framed wire codec for the service envelope (sans-IO).

The byte-level contract of the TCP transport (:mod:`repro.service.tcp`)
— and of any future transport that ships the envelope between hosts.
Like the rest of the policy core this module is sans-IO: it converts
between bytes and messages and never touches a socket; the transport
owns reading, writing, and connection lifecycle.

Frame format (see docs/wire.md for the full spec)::

    +----------------------+----------------------------+
    | 4-byte big-endian    | UTF-8 JSON object,         |
    | unsigned body length | exactly `length` bytes     |
    +----------------------+----------------------------+

Strictness is the point: a frame longer than ``max_frame_bytes``, a
zero-length frame, a body that is not valid UTF-8 JSON, or a body that
is not a JSON *object* all raise :class:`WireProtocolError` — the
transport answers with a protocol-error frame and closes the connection
rather than guessing.  :class:`FrameDecoder` handles the TCP reality
that frames arrive split and coalesced arbitrarily: feed it whatever
``recv`` returned and it yields exactly the completed messages.

What travels inside frames:

* **request messages** — an ``op`` from :data:`OPS` plus op-specific
  fields, validated by :func:`validate_request_message` (unknown ops
  are rejected);
* **responses** — ``{"id": ..., "ok": true, ...}`` payloads or
  ``{"id": ..., "ok": false, "error": {...}}`` built by
  :func:`ok_response` / :func:`error_response`;
* **results** — :class:`~repro.core.result.EstimationResult` via
  :func:`result_to_wire` / :func:`result_from_wire`.  Memory-usage
  curves are *not* transported (a curve is a large diagnostic artifact;
  serving-tier estimators run ``curve=False``) — everything else,
  including the ``compare=False`` stage diagnostics, round-trips
  exactly;
* **errors** — the service exception taxonomy via
  :func:`error_to_wire` / :func:`error_from_wire`, so a client-side
  replay classifies remote rejections/sheds/deadline misses exactly
  like local ones;
* **forwarded envelopes** — ``(ServiceRequest, RequestContext)`` via
  :func:`envelope_to_wire` / :func:`envelope_from_wire`.  Time fields
  cross the wire as *relative* budgets (age, remaining deadline) and
  are rebased onto the receiver's clock on decode — absolute
  ``time.monotonic`` values from another host are meaningless (see
  :meth:`~repro.service.context.RequestContext.as_dict`).
"""

from __future__ import annotations

import json
import struct
from typing import Any, Optional

from ..core.result import EstimationResult
from ..errors import (
    AuthenticationError,
    AuthorizationError,
    DeadlineExceededError,
    QuotaExceededError,
    RateLimitExceededError,
    RequestRejectedError,
    ServiceClosedError,
    ServiceError,
)
from ..trace.reader import Trace
from ..workload import DeviceSpec, WorkloadConfig
from .context import RequestContext, ServiceRequest

__all__ = [
    "HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "OPS",
    "FrameDecoder",
    "RemoteServiceError",
    "WireProtocolError",
    "encode_frame",
    "envelope_from_wire",
    "envelope_to_wire",
    "error_from_wire",
    "error_response",
    "error_to_wire",
    "ok_response",
    "result_from_wire",
    "result_to_wire",
    "validate_request_message",
]

#: Frame header: 4-byte big-endian unsigned body length.
_HEADER = struct.Struct(">I")
HEADER_BYTES = _HEADER.size

#: Default ceiling on one frame's JSON body.  Generous for any envelope
#: (requests are a few hundred bytes, results a few KiB) while bounding
#: what a hostile peer can make the server buffer.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: The closed vocabulary of request operations.
OP_PING = "ping"
OP_ESTIMATE = "estimate"
OP_ESTIMATE_MANY = "estimate_many"
OP_STATS = "stats"
OP_DRAIN = "drain"
OPS = (OP_PING, OP_ESTIMATE, OP_ESTIMATE_MANY, OP_STATS, OP_DRAIN)

#: Wire error codes — the response-side taxonomy.
ERROR_REJECTED = "rejected"
ERROR_RATE_LIMITED = "rate_limited"
ERROR_QUOTA = "quota_exceeded"
ERROR_AUTH = "auth"
ERROR_DEADLINE = "deadline"
ERROR_CLOSED = "closed"
ERROR_PROTOCOL = "protocol"
ERROR_INTERNAL = "internal"


class WireProtocolError(ServiceError):
    """A peer violated the framing or message schema.

    Transports treat this as fatal for the connection: answer with a
    protocol-error frame when the socket still works, then close.
    """


class RemoteServiceError(ServiceError):
    """A server-side failure with no more specific local exception type.

    ``remote_type`` preserves the server's exception class name so logs
    on the client side still say what actually went wrong over there.
    """

    def __init__(self, message: str, remote_type: str = "Exception"):
        self.remote_type = remote_type
        super().__init__(message)


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------


def encode_frame(
    payload: dict, max_frame_bytes: int = MAX_FRAME_BYTES
) -> bytes:
    """One wire frame: length prefix + canonical JSON body.

    Canonical means sorted keys and minimal separators, so identical
    messages are identical bytes — which is what lets the benchmarks
    assert byte-level identity across transports.  ``allow_nan=False``:
    NaN/Infinity are not JSON, and a strict decoder on the other side
    would (rightly) drop the connection.
    """
    if not isinstance(payload, dict):
        raise WireProtocolError(
            f"frame payload must be a dict, got {type(payload).__name__}"
        )
    try:
        body = json.dumps(
            payload,
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=False,
            allow_nan=False,
        ).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise WireProtocolError(
            f"payload is not JSON-encodable: {error}"
        ) from error
    if len(body) > max_frame_bytes:
        raise WireProtocolError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{max_frame_bytes}-byte limit"
        )
    return _HEADER.pack(len(body)) + body


class FrameDecoder:
    """Incremental frame reassembler for a TCP byte stream.

    Feed it every chunk the socket yields; it buffers partial frames and
    returns each completed message exactly once, in order.  Any protocol
    violation — oversized or zero-length header, non-JSON body, non-object
    body — raises :class:`WireProtocolError`; the decoder is then
    poisoned and the connection must be closed (there is no way to
    resynchronize a length-prefixed stream after a bad header).
    """

    __slots__ = ("max_frame_bytes", "_buffer")

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    @property
    def buffered_bytes(self) -> int:
        """Bytes held back waiting for the rest of a frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[dict]:
        """Absorb ``data``; return every message it completed."""
        self._buffer.extend(data)
        messages: list[dict] = []
        while True:
            message = self._next_message()
            if message is None:
                return messages
            messages.append(message)

    def _next_message(self) -> Optional[dict]:
        if len(self._buffer) < HEADER_BYTES:
            return None
        (length,) = _HEADER.unpack_from(self._buffer)
        if length == 0:
            raise WireProtocolError("zero-length frame")
        if length > self.max_frame_bytes:
            raise WireProtocolError(
                f"frame header announces {length} bytes, over the "
                f"{self.max_frame_bytes}-byte limit"
            )
        end = HEADER_BYTES + length
        if len(self._buffer) < end:
            return None
        body = bytes(self._buffer[HEADER_BYTES:end])
        del self._buffer[:end]
        try:
            message = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise WireProtocolError(
                f"frame body is not valid JSON: {error}"
            ) from error
        if not isinstance(message, dict):
            raise WireProtocolError(
                f"frame body must be a JSON object, got "
                f"{type(message).__name__}"
            )
        return message


# ----------------------------------------------------------------------
# request messages
# ----------------------------------------------------------------------


def _require(message: dict, field: str, kinds: tuple, op: str) -> Any:
    value = message.get(field)
    if not isinstance(value, kinds):
        raise WireProtocolError(
            f"op {op!r} needs {field!r} of type "
            f"{'/'.join(k.__name__ for k in kinds)}, got "
            f"{type(value).__name__}"
        )
    return value


def validate_request_message(message: dict) -> tuple[str, int]:
    """Schema-check one client→server message; returns ``(op, id)``.

    Raises :class:`WireProtocolError` for an unknown op, a missing or
    non-integer ``id``, or op-specific fields of the wrong shape — all
    fatal for the connection, matching the strict-decode contract.
    """
    op = message.get("op")
    if op not in OPS:
        raise WireProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(OPS)}"
        )
    msg_id = message.get("id")
    # bool is an int subclass; a boolean id is a schema violation
    if not isinstance(msg_id, int) or isinstance(msg_id, bool):
        raise WireProtocolError(f"op {op!r} needs an integer 'id'")
    if op == OP_ESTIMATE:
        _require(message, "request", (dict,), op)
        remaining = message.get("deadline_remaining")
        if remaining is not None and not isinstance(
            remaining, (int, float)
        ):
            raise WireProtocolError(
                "'deadline_remaining' must be a number or null"
            )
    elif op == OP_ESTIMATE_MANY:
        requests = _require(message, "requests", (list,), op)
        for index, item in enumerate(requests):
            if not isinstance(item, dict):
                raise WireProtocolError(
                    f"op {op!r} request #{index} must be an object, "
                    f"got {type(item).__name__}"
                )
    elif op == OP_DRAIN:
        timeout = message.get("timeout")
        if timeout is not None and not isinstance(timeout, (int, float)):
            raise WireProtocolError("'timeout' must be a number or null")
    return op, msg_id


def ok_response(msg_id: int, **fields: Any) -> dict:
    """A success response frame payload."""
    return {"id": msg_id, "ok": True, **fields}


def error_response(msg_id: Optional[int], error: BaseException) -> dict:
    """A failure response frame payload (``id`` None = connection-level)."""
    return {"id": msg_id, "ok": False, "error": error_to_wire(error)}


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------


def result_to_wire(result: EstimationResult) -> dict:
    """JSON-ready form of one estimation result (curve excluded)."""
    return {
        "estimator": result.estimator,
        "workload": result.workload.as_dict(),
        "device": result.device.as_dict(),
        "peak_bytes": result.peak_bytes,
        "runtime_seconds": result.runtime_seconds,
        "supported": result.supported,
        "detail": dict(result.detail),
        "stage_seconds": dict(result.stage_seconds),
        "stage_cached": dict(result.stage_cached),
        "stage_sources": dict(result.stage_sources),
    }


def result_from_wire(payload: dict) -> EstimationResult:
    """Inverse of :func:`result_to_wire` (``curve`` is always None)."""
    try:
        return EstimationResult(
            estimator=payload["estimator"],
            workload=WorkloadConfig.from_dict(payload["workload"]),
            device=DeviceSpec.from_dict(payload["device"]),
            peak_bytes=payload["peak_bytes"],
            runtime_seconds=payload["runtime_seconds"],
            supported=payload.get("supported", True),
            curve=None,
            detail=dict(payload.get("detail", {})),
            stage_seconds=dict(payload.get("stage_seconds", {})),
            stage_cached=dict(payload.get("stage_cached", {})),
            stage_sources=dict(payload.get("stage_sources", {})),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise WireProtocolError(
            f"malformed result payload: {error!r}"
        ) from error


# ----------------------------------------------------------------------
# errors
# ----------------------------------------------------------------------


def error_to_wire(error: BaseException) -> dict:
    """Map one service exception onto the wire error taxonomy.

    Ordering matters: :class:`DeadlineExceededError` *is a*
    :class:`RequestRejectedError`, so the more specific code is chosen
    first and the client reconstructs the exact class — replay
    accounting must classify remote outcomes like local ones.
    """
    payload: dict[str, Any] = {"message": str(error)}
    if isinstance(error, DeadlineExceededError):
        payload["type"] = ERROR_DEADLINE
        payload["late_by_seconds"] = error.late_by_seconds
    elif isinstance(error, (AuthenticationError, AuthorizationError)):
        payload["type"] = ERROR_AUTH
        payload["auth_kind"] = (
            "authentication"
            if isinstance(error, AuthenticationError)
            else "authorization"
        )
    elif isinstance(error, RequestRejectedError):
        payload["type"] = ERROR_REJECTED
    elif isinstance(error, QuotaExceededError):
        payload["type"] = ERROR_QUOTA
        payload["tenant"] = error.tenant
        payload["scope"] = error.scope
        payload["retry_after_seconds"] = error.retry_after_seconds
    elif isinstance(error, RateLimitExceededError):
        payload["type"] = ERROR_RATE_LIMITED
        payload["retry_after_seconds"] = error.retry_after_seconds
    elif isinstance(error, ServiceClosedError):
        payload["type"] = ERROR_CLOSED
    elif isinstance(error, WireProtocolError):
        payload["type"] = ERROR_PROTOCOL
    else:
        payload["type"] = ERROR_INTERNAL
        payload["remote_type"] = type(error).__name__
    return payload


def error_from_wire(payload: dict) -> Exception:
    """Reconstruct the typed exception a wire error payload describes."""
    if not isinstance(payload, dict):
        return RemoteServiceError(f"malformed error payload: {payload!r}")
    kind = payload.get("type")
    message = payload.get("message", "")
    if kind == ERROR_DEADLINE:
        error: Exception = DeadlineExceededError(
            payload.get("late_by_seconds", 0.0)
        )
    elif kind == ERROR_AUTH:
        auth_class = (
            AuthorizationError
            if payload.get("auth_kind") == "authorization"
            else AuthenticationError
        )
        error = auth_class(message)
    elif kind == ERROR_REJECTED:
        error = RequestRejectedError(message)
    elif kind == ERROR_QUOTA:
        error = QuotaExceededError(
            payload.get("tenant", ""),
            retry_after_seconds=payload.get("retry_after_seconds", 0.0),
            scope=payload.get("scope", "quota"),
        )
    elif kind == ERROR_RATE_LIMITED:
        error = RateLimitExceededError(
            payload.get("retry_after_seconds", 0.0)
        )
    elif kind == ERROR_CLOSED:
        error = ServiceClosedError(message)
    elif kind == ERROR_PROTOCOL:
        error = WireProtocolError(message)
    else:
        error = RemoteServiceError(
            message, remote_type=payload.get("remote_type", "Exception")
        )
    return error


# ----------------------------------------------------------------------
# forwarded envelopes
# ----------------------------------------------------------------------


def envelope_to_wire(
    request: ServiceRequest, ctx: RequestContext, now: float
) -> dict:
    """One in-progress request as a forwardable wire payload.

    ``now`` is the sender's current clock reading; the context's time
    fields cross the wire as relative budgets (age, remaining deadline)
    so the receiver can rebase them — never as absolute monotonic
    values, which do not survive a host boundary.
    """
    return {
        "request": request.as_dict(),
        "context": ctx.as_dict(now=now),
    }


def envelope_from_wire(
    payload: dict, now: float, trace: Optional[Trace] = None
) -> tuple[ServiceRequest, RequestContext]:
    """Inverse of :func:`envelope_to_wire`, rebased onto the receiver.

    ``now`` is the *receiver's* clock reading; the reconstructed
    context's ``submitted_at``/``deadline`` live in the receiver's
    clock domain with the sender's age and budget preserved.
    """
    try:
        request = ServiceRequest.from_dict(
            payload["request"], trace=trace
        )
        ctx = RequestContext.from_dict(payload["context"], now=now)
    except (KeyError, TypeError, ValueError) as error:
        raise WireProtocolError(
            f"malformed envelope payload: {error!r}"
        ) from error
    return request, ctx
