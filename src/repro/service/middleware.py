"""The service middleware chain: request/response interception (sans-IO).

Every estimation request flows through an ordered chain of
:class:`ServiceMiddleware` objects with three hooks:

* ``on_request(request, ctx)`` — before estimation, in chain order.
  Returning a non-None result **short-circuits**: later middlewares never
  see the request, the estimator is not invoked, and ``on_result`` runs
  only for the middlewares *before* the producer (in reverse order).
  Raising rejects the request; ``on_error`` then runs for the middlewares
  already entered, in reverse order.
* ``on_result(request, result, ctx)`` — after estimation, in reverse
  chain order.  Returning a non-None value replaces the result (used for
  enrichment; the built-ins never mutate the estimate itself).
* ``on_error(request, error, ctx)`` — when estimation or a hook raised.
  Observability only; the error propagates afterwards.

This mirrors the onion model of HTTP/MCP middleware stacks: the first
middleware in the list is the outermost layer — first to see the request,
last to see the result.

The chain is part of the sans-IO core: it never imports a concurrency
substrate.  Middlewares that mutate shared state (the token bucket, the
audit trail, the timing reservoir) declare a :class:`~repro.service.context.NullLock`
slot; a concurrent driver *binds* a real primitive via ``bind_lock``
(the thread driver passes ``threading.Lock``; the asyncio driver binds
nothing because its hooks all run on the event loop).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional, Sequence

from ..core.result import EstimationResult
from ..errors import (
    ModelNotFoundError,
    RateLimitExceededError,
    RequestRejectedError,
)
from ..framework.optim import optimizer_names
from ..models.registry import get_model_spec
from .cache import EstimateCache
from .context import (
    LockFactory,
    NullLock,
    RequestContext,
    ServiceRequest,
)
from .telemetry.exporters import InMemorySpanExporter
from .telemetry.ledger import AuditLedger
from .telemetry.spans import MIDDLEWARE_PREFIX, Span, Tracer

__all__ = [
    "AuditLogMiddleware",
    "CacheMiddleware",
    "DeadlineMiddleware",
    "MiddlewareChain",
    "RateLimitMiddleware",
    "RequestContext",
    "ServiceMiddleware",
    "ServiceRequest",
    "TimingMiddleware",
    "ValidationMiddleware",
    "default_middlewares",
]


class ServiceMiddleware:
    """Base middleware: override any subset of the three hooks."""

    name = "middleware"

    def on_request(
        self, request: ServiceRequest, ctx: RequestContext
    ) -> Optional[EstimationResult]:
        return None

    def on_result(
        self,
        request: ServiceRequest,
        result: EstimationResult,
        ctx: RequestContext,
    ) -> Optional[EstimationResult]:
        return None

    def on_error(
        self, request: ServiceRequest, error: BaseException, ctx: RequestContext
    ) -> None:
        return None

    def bind_lock(self, lock_factory: LockFactory) -> None:
        """Adopt a driver-supplied lock for shared mutable state.

        The sans-IO default is a no-op: stateless middlewares ignore it,
        stateful ones replace their :class:`NullLock` slot (idempotent —
        a lock already bound is kept, so two drivers sharing a middleware
        agree on one primitive).
        """
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class MiddlewareChain:
    """Runs hooks in onion order and tracks how deep a request got."""

    def __init__(self, middlewares: Sequence[ServiceMiddleware]):
        self.middlewares = tuple(middlewares)

    def bind_lock(self, lock_factory: LockFactory) -> None:
        """Bind a driver's lock primitive to every stateful middleware."""
        for middleware in self.middlewares:
            middleware.bind_lock(lock_factory)

    def run_request(
        self, request: ServiceRequest, ctx: RequestContext
    ) -> tuple[Optional[EstimationResult], int]:
        """Run ``on_request`` hooks in order.

        Returns ``(result, depth)`` where ``depth`` is the number of
        middlewares whose ``on_request`` completed *without* producing the
        result — i.e. the layers that must later see ``on_result``.  On a
        hook exception, runs ``on_error`` for the layers already entered
        and re-raises.

        When the request carries a live tracing handle (the core attached
        one) and the tracer runs at ``detail="full"``, every
        ``on_request`` hook runs inside its own ``middleware:<name>``
        span — the per-layer cost breakdown the span tree exists to
        show.  Untraced (or standard-detail) requests pay one check per
        request and nothing else.
        """
        telemetry = ctx.telemetry
        if telemetry is None or telemetry.tracer.detail != "full":
            for index, middleware in enumerate(self.middlewares):
                try:
                    result = middleware.on_request(request, ctx)
                except BaseException as error:
                    self.run_error(request, error, ctx, depth=index)
                    raise
                if result is not None:
                    ctx.short_circuited_by = middleware.name
                    return result, index
            return None, len(self.middlewares)
        # traced path: hooks are synchronous, so each span can be built
        # in one shot at hook exit (2 clock reads + 1 alloc per layer)
        # instead of going through the open/close helper chain — the
        # middleware spans sit on every request and dominate span count
        tracer = telemetry.tracer
        root = telemetry.root
        for index, middleware in enumerate(self.middlewares):
            started = tracer.clock()
            try:
                result = middleware.on_request(request, ctx)
            except BaseException as error:
                tracer.exporter.export(
                    Span(
                        name=MIDDLEWARE_PREFIX + middleware.name,
                        trace_id=root.trace_id,
                        span_id=tracer._new_id(),
                        parent_id=root.span_id,
                        start=started,
                        end=tracer.clock(),
                        status="error",
                        attributes={"error": type(error).__name__},
                    )
                )
                self.run_error(request, error, ctx, depth=index)
                raise
            tracer.exporter.export(
                Span(
                    name=MIDDLEWARE_PREFIX + middleware.name,
                    trace_id=root.trace_id,
                    span_id=tracer._new_id(),
                    parent_id=root.span_id,
                    start=started,
                    end=tracer.clock(),
                )
            )
            if result is not None:
                ctx.short_circuited_by = middleware.name
                return result, index
        return None, len(self.middlewares)

    def run_result(
        self,
        request: ServiceRequest,
        result: EstimationResult,
        ctx: RequestContext,
        depth: Optional[int] = None,
    ) -> EstimationResult:
        """Run ``on_result`` for the first ``depth`` layers, innermost first."""
        layers = self.middlewares[: len(self.middlewares) if depth is None else depth]
        for middleware in reversed(layers):
            replacement = middleware.on_result(request, result, ctx)
            if replacement is not None:
                result = replacement
        return result

    def run_error(
        self,
        request: ServiceRequest,
        error: BaseException,
        ctx: RequestContext,
        depth: Optional[int] = None,
    ) -> None:
        layers = self.middlewares[: len(self.middlewares) if depth is None else depth]
        for middleware in reversed(layers):
            middleware.on_error(request, error, ctx)


# ----------------------------------------------------------------------
# built-ins
# ----------------------------------------------------------------------


class CacheMiddleware(ServiceMiddleware):
    """Serves repeated fingerprints from an :class:`EstimateCache`."""

    name = "cache"

    def __init__(self, cache):
        self.cache = cache

    def bind_lock(self, lock_factory: LockFactory) -> None:
        self.cache.bind_lock(lock_factory)

    def on_request(self, request, ctx):
        result = self.cache.get(request.fingerprint)
        if result is not None:
            ctx.cache_hit = True
        return result

    def on_result(self, request, result, ctx):
        self.cache.put(request.fingerprint, result)
        return None


class ValidationMiddleware(ServiceMiddleware):
    """Rejects malformed requests before they cost a profiling run."""

    name = "validation"

    def __init__(self, max_batch_size: int = 65536):
        self.max_batch_size = max_batch_size

    def on_request(self, request, ctx):
        workload, device = request.workload, request.device
        try:
            get_model_spec(workload.model)
        except ModelNotFoundError as error:
            raise RequestRejectedError(str(error)) from None
        if workload.optimizer.lower() not in optimizer_names():
            raise RequestRejectedError(
                f"unknown optimizer {workload.optimizer!r}; "
                f"known: {optimizer_names()}"
            )
        if workload.batch_size > self.max_batch_size:
            raise RequestRejectedError(
                f"batch size {workload.batch_size} exceeds service limit "
                f"{self.max_batch_size}"
            )
        try:
            device.job_budget()
        except ValueError as error:
            raise RequestRejectedError(str(error)) from None
        return None


class DeadlineMiddleware(ServiceMiddleware):
    """Tags every request with a relative deadline (``budget_seconds``).

    Caller-supplied absolute deadlines are enforced by the core before
    any hook (or dedup piggyback) runs; this middleware is for stacks
    where the *service* imposes a serving budget on callers that did not
    set one themselves.  The stamped budget is enforced by the core's
    second deadline check — after the chain, before the estimator is
    dispatched — so a request that exhausts its budget queueing through
    the hooks is rejected instead of occupying a worker.
    """

    name = "deadline"

    def __init__(
        self,
        budget_seconds: float,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if budget_seconds <= 0:
            raise ValueError("deadline budget must be positive")
        self.budget_seconds = budget_seconds
        self._clock = clock

    def on_request(self, request, ctx):
        if ctx.deadline is None:
            ctx.deadline = self._clock() + self.budget_seconds
        return None


class RateLimitMiddleware(ServiceMiddleware):
    """A token bucket: at most ``burst`` requests instantly, refilled at
    ``rate_per_second``.  Placed before :class:`CacheMiddleware` it
    meters every request that reaches the chain (cache hits included);
    placed after, only computation.  Note the engine's single-flight
    deduplication answers identical *in-flight* requests before any
    middleware runs, so piggybacked duplicates consume no tokens.
    """

    name = "rate_limit"

    def __init__(
        self,
        rate_per_second: float,
        burst: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate_per_second <= 0 or burst < 1:
            raise ValueError("rate must be positive and burst >= 1")
        self.rate = rate_per_second
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._refilled_at = clock()
        self._lock = NullLock()

    def bind_lock(self, lock_factory: LockFactory) -> None:
        if isinstance(self._lock, NullLock):
            self._lock = lock_factory()

    def on_request(self, request, ctx):
        with self._lock:
            now = self._clock()
            self._tokens = min(
                float(self.burst),
                self._tokens + (now - self._refilled_at) * self.rate,
            )
            self._refilled_at = now
            if self._tokens < 1.0:
                raise RateLimitExceededError((1.0 - self._tokens) / self.rate)
            self._tokens -= 1.0
        return None


class AuditLogMiddleware(ServiceMiddleware):
    """Keeps a bounded audit trail of requests and outcomes.

    A thin adapter over :class:`~repro.service.telemetry.ledger.AuditLedger`
    — the deque/lock bookkeeping it used to own lives there now, and the
    ledger's durability and query surface come for free (``.ledger``).
    The legacy ``records`` dict shape is preserved exactly.
    """

    name = "audit_log"

    def __init__(
        self,
        max_records: int = 1000,
        logger=None,
        ledger: Optional[AuditLedger] = None,
    ):
        self.max_records = max_records
        self.logger = logger
        self.ledger = (
            ledger if ledger is not None else AuditLedger(max_events=max_records)
        )

    def _append(
        self, event: str, cause: str, ctx, fingerprint: str, attributes: dict
    ) -> None:
        entry = self.ledger.record(
            event,
            cause=cause,
            fingerprint=fingerprint,
            request_id=ctx.request_id,
            shard=ctx.shard_hint,
            attributes=attributes,
        )
        if self.logger is not None:
            self.logger.info("xmem.service %s", self._legacy(entry))

    @staticmethod
    def _legacy(entry) -> dict[str, Any]:
        """An event in the pre-ledger record shape (kept public API)."""
        return {
            "event": entry.event,
            "request_id": entry.request_id,
            "fingerprint": entry.fingerprint,
            **entry.attributes,
        }

    def on_request(self, request, ctx):
        self._append(
            "request",
            "middleware",
            ctx,
            request.fingerprint,
            {
                "workload": request.workload.as_dict(),
                "device": request.device.name,
            },
        )
        return None

    def on_result(self, request, result, ctx):
        self._append(
            "result",
            "middleware",
            ctx,
            request.fingerprint,
            {
                "peak_bytes": result.peak_bytes,
                "predicts_oom": result.predicts_oom(),
                "cache_hit": ctx.cache_hit,
            },
        )
        return None

    def on_error(self, request, error, ctx):
        self._append(
            "error",
            type(error).__name__,
            ctx,
            request.fingerprint,
            {
                "error": type(error).__name__,
                "message": str(error),
            },
        )

    @property
    def records(self) -> list[dict[str, Any]]:
        return [self._legacy(entry) for entry in self.ledger.events()]


class TimingMiddleware(ServiceMiddleware):
    """Measures wall-clock time each request spends inside the service
    (queueing + estimation; ~0 for cache hits when placed outermost).

    A thin adapter over the telemetry span primitives: each completed
    request becomes one ``service.request`` span in a private in-memory
    exporter, and ``samples`` reads the span durations — the duplicated
    timestamp/list/lock code is gone.
    """

    name = "timing"

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._exporter = InMemorySpanExporter()
        self._tracer = Tracer(self._exporter, clock=clock)

    def on_request(self, request, ctx):
        ctx.tags["timing_start"] = self._clock()
        return None

    def on_result(self, request, result, ctx):
        started = ctx.tags.get("timing_start")
        if started is not None:
            span = self._tracer.start_span(
                "service.request",
                trace_id=request.fingerprint,
                start=started,
                attributes={"request_id": ctx.request_id},
            )
            self._tracer.end(span)
        return None

    @property
    def samples(self) -> list[float]:
        return [span.duration for span in self._exporter.spans]


def default_middlewares(cache: EstimateCache) -> tuple[ServiceMiddleware, ...]:
    """The standard stack: timing outermost, then validation, then cache."""
    return (TimingMiddleware(), ValidationMiddleware(), CacheMiddleware(cache))
