"""A thread-safe LRU + TTL cache for estimation results.

Keys are request fingerprints (:mod:`repro.service.fingerprint`); values
are whatever the service produced for them — normally an
:class:`~repro.core.result.EstimationResult`.  Estimates are deterministic
per fingerprint, so the TTL exists only to bound staleness across code
deployments, not correctness; ``ttl_seconds=None`` disables expiry.

The clock is injectable (any ``() -> float`` in seconds) so tests can
drive expiry without sleeping.

The cache is part of the sans-IO core: it never imports a concurrency
substrate.  Its lock slot starts as a :class:`~repro.service.context.NullLock`;
a concurrent driver binds a real primitive via :meth:`EstimateCache.bind_lock`
(the thread driver passes ``threading.Lock``; the asyncio driver leaves
the null lock because every cache access runs on the event loop).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Optional

from .context import LockFactory, NullLock


@dataclass(frozen=True)
class CacheStats:
    """Counters accumulated over the cache's lifetime."""

    hits: int
    misses: int
    evictions: int
    expirations: int
    size: int
    max_entries: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "size": self.size,
            "max_entries": self.max_entries,
            "hit_rate": self.hit_rate,
        }


class EstimateCache:
    """LRU + TTL mapping of fingerprint -> cached estimate."""

    def __init__(
        self,
        max_entries: int = 1024,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_entries < 0:
            raise ValueError("max_entries cannot be negative")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None)")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = NullLock()
        #: fingerprint -> (value, expires_at | None), in LRU order
        self._entries: "OrderedDict[str, tuple[Any, Optional[float]]]" = (
            OrderedDict()
        )
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    def bind_lock(self, lock_factory: LockFactory) -> None:
        """Adopt a driver-supplied lock (idempotent; see module docs)."""
        if isinstance(self._lock, NullLock):
            self._lock = lock_factory()

    def get(self, key: str) -> Optional[Any]:
        """The cached value, or None; refreshes LRU order on hit."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            value, expires_at = entry
            if expires_at is not None and self._clock() >= expires_at:
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: str, value: Any) -> None:
        """Insert/refresh ``key``; evicts least-recently-used on overflow.

        With ``max_entries=0`` the cache is disabled: nothing is stored
        (and no eviction is counted), every ``get`` misses.
        """
        if self.max_entries == 0:
            return
        with self._lock:
            # the timestamp is read under the lock: with an injectable
            # test clock (or concurrent put/get interleavings) a clock
            # read outside it could stamp an *earlier* time than an
            # already-completed expiry check, making entries appear to
            # expire out of insertion order
            expires_at = (
                None
                if self.ttl_seconds is None
                else self._clock() + self.ttl_seconds
            )
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (value, expires_at)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def _reap_expired_locked(self) -> None:
        """Drop every past-TTL entry (and count it); caller holds the lock.

        ``len()`` and ``stats()`` report *live* entries: without this,
        dead entries linger in the count until a ``get`` happens to
        touch them, so a dashboard would see a "full" cache that serves
        nothing but misses.
        """
        if self.ttl_seconds is None or not self._entries:
            return
        now = self._clock()
        expired = [
            key
            for key, (_, expires_at) in self._entries.items()
            if expires_at is not None and now >= expires_at
        ]
        for key in expired:
            del self._entries[key]
        self._expirations += len(expired)

    def __len__(self) -> int:
        with self._lock:
            self._reap_expired_locked()
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        # peek without disturbing LRU order or hit/miss counters — but a
        # past-TTL entry found here is reaped and counted, not left to
        # inflate len()/stats() until a get happens to touch it
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            _, expires_at = entry
            if expires_at is not None and self._clock() >= expires_at:
                del self._entries[key]
                self._expirations += 1
                return False
            return True

    def stats(self) -> CacheStats:
        with self._lock:
            self._reap_expired_locked()
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                expirations=self._expirations,
                size=len(self._entries),
                max_entries=self.max_entries,
            )
