"""The multi-tenant admission control plane (sans-IO core).

Admission so far has been policy-free: a bounded queue per shard treats
a hostile tenant and a paying one identically.  This module adds the
policy layer — per-tenant token-bucket quotas, weighted fair-share
admission, deadline-aware shedding, and a token-based auth shim — as
pure, substrate-free objects every driver (threads, asyncio, procpool,
TCP) consults at the same point: the gateway's admission step, under the
driver's serialization primitive.  The mechanism core
(:class:`~repro.service.core.GatewayCore`) stays policy-free; the
control plane is pluggable above it, exactly the split the
adaptive-middleware literature argues for.

**Determinism.**  Decision sequences must be byte-identical across all
four drivers for the same seeded traffic, so nothing here may depend on
wall-clock time or completion interleaving.  The default clock is a
*submission tick*: every :meth:`ControlPlane.admit` call advances it by
one, and token buckets refill per tick.  Because every driver serializes
gateway admission (the thread gateway's lock, the asyncio/TCP event
loop, the procpool parent lock) and submits replayed traffic in the same
order, tick-driven decisions are identical everywhere.  Pass a real
clock (``time.monotonic``) for wall-time quotas when determinism is not
required.

QoS classes map priorities to names::

    interactive = 0   # latency-sensitive; full access to the fair share
    standard    = 1   # the default
    batch       = 2   # only admitted while the share bucket stays above
                      # a reserve kept for the classes above it

See ``docs/control_plane.md`` for the fair-share math and the grant
model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ..errors import (
    AuthenticationError,
    AuthorizationError,
    DeadlineExceededError,
    QuotaExceededError,
)
from .middleware import ServiceMiddleware

__all__ = [
    "DEFAULT_PRIORITY",
    "QOS_CLASSES",
    "QOS_RESERVE",
    "AuthShimMiddleware",
    "ControlPlane",
    "TenantConfig",
    "TenantGrant",
    "TokenBucket",
    "qos_class",
    "qos_priority",
]

#: QoS class name -> priority integer (lower = more important).
QOS_CLASSES = {"interactive": 0, "standard": 1, "batch": 2}

#: priority -> class name (unknown priorities clamp to ``batch``).
_QOS_NAMES = {value: name for name, value in QOS_CLASSES.items()}

DEFAULT_PRIORITY = QOS_CLASSES["standard"]

#: Fraction of a tenant's share-bucket burst that must *remain* after
#: admitting a request of this class — batch work may never drain the
#: share below the reserve kept for interactive/standard traffic, which
#: is what prevents priority inversion inside one tenant.
QOS_RESERVE = {0: 0.0, 1: 0.0, 2: 0.5}


def qos_class(priority: int) -> str:
    """The QoS class name for a priority integer (clamped to batch)."""
    if priority <= 0:
        return _QOS_NAMES[0]
    return _QOS_NAMES.get(priority, "batch")


def qos_priority(name: str) -> int:
    """The priority integer for a QoS class name."""
    try:
        return QOS_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown QoS class {name!r}; known: {sorted(QOS_CLASSES)}"
        ) from None


class TokenBucket:
    """A deterministic token bucket over an injectable clock.

    ``capacity`` tokens at most; refilled at ``rate`` tokens per clock
    unit.  The clock is any monotone float source — the control plane
    feeds it submission ticks, wall-time users pass ``time.monotonic``.
    Edge cases are pinned by the property tests:

    * **zero capacity** never grants a token, whatever the rate;
    * **exact refill boundary**: after exactly ``cost / rate`` clock
      units a drained bucket grants again (``>=``, not ``>``);
    * **clock skew**: a clock that steps backwards mints nothing —
      negative elapsed time is clamped to zero, and the refill stamp
      only ever moves forward.
    """

    __slots__ = ("capacity", "rate", "_tokens", "_stamp")

    def __init__(self, capacity: float, rate: float, now: float = 0.0):
        if capacity < 0 or rate < 0:
            raise ValueError("capacity and rate must be non-negative")
        self.capacity = float(capacity)
        self.rate = float(rate)
        self._tokens = float(capacity)
        self._stamp = now

    def refill(self, now: float) -> None:
        """Advance the bucket to clock value ``now``."""
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(
                self.capacity, self._tokens + elapsed * self.rate
            )
            self._stamp = now

    @property
    def tokens(self) -> float:
        """Tokens available as of the last :meth:`refill`."""
        return self._tokens

    def peek(self, cost: float = 1.0, reserve: float = 0.0) -> bool:
        """Whether ``cost`` tokens could be taken leaving ``reserve``."""
        return self._tokens - cost >= reserve - 1e-9

    def take(self, cost: float = 1.0) -> None:
        """Remove ``cost`` tokens (caller peeked first)."""
        self._tokens -= cost

    def deficit_time(self, cost: float = 1.0) -> float:
        """Clock units until ``cost`` tokens accumulate (0 if ready)."""
        missing = cost - self._tokens
        if missing <= 0:
            return 0.0
        if self.rate <= 0:
            return float("inf")
        return missing / self.rate


@dataclass(frozen=True)
class TenantGrant:
    """What one auth token entitles its bearer to.

    ``models`` of None grants every model; ``min_priority`` is the best
    (numerically lowest) QoS class the tenant may request — a grant of
    ``min_priority=1`` refuses ``interactive`` submissions.
    """

    tenant: str
    models: Optional[frozenset] = None
    min_priority: int = 0

    def allows_model(self, model: str) -> bool:
        return self.models is None or model in self.models

    def allows_priority(self, priority: int) -> bool:
        return priority >= self.min_priority


@dataclass(frozen=True)
class TenantConfig:
    """Per-tenant admission policy knobs.

    ``quota_rate``/``quota_burst`` parameterize the tenant's own token
    bucket (tokens per clock unit / instantaneous burst); ``weight`` its
    slice of the fleet's fair-share admission rate.
    """

    #: "" is the untenanted pseudo-tenant: requests that carry no tenant
    #: admit against this entry when the plane has a ``default_config``
    name: str
    quota_rate: float = 1.0
    quota_burst: float = 8.0
    weight: float = 1.0

    def __post_init__(self):
        if self.quota_rate < 0 or self.quota_burst < 0:
            raise ValueError("quota rate/burst must be non-negative")
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")


@dataclass
class _TenantState:
    config: TenantConfig
    quota: TokenBucket
    share: TokenBucket
    admitted: int = 0
    quota_shed: int = 0
    share_shed: int = 0
    hopeless_shed: int = 0


class ControlPlane:
    """Tenant-aware admission policy, consulted at the gateway boundary.

    One :meth:`admit` call per gateway submission, under the driver's
    serialization point.  The decision order is fixed:

    1. **hopeless deadline** — a request whose remaining budget is
       already gone is shed *first*, before it spends quota tokens or a
       queue slot (:class:`~repro.errors.DeadlineExceededError`);
    2. **authentication** — in strict mode an unknown tenant is refused
       (:class:`~repro.errors.AuthenticationError`); otherwise it is
       admitted under ``default_config``;
    3. **quota** — the tenant's own token bucket
       (:class:`~repro.errors.QuotaExceededError`, ``scope="quota"``);
    4. **fair share** — the tenant's weighted slice of the fleet
       admission rate, with a per-QoS reserve so batch traffic cannot
       starve the interactive classes
       (:class:`~repro.errors.QuotaExceededError`, ``scope="fair_share"``).

    Quota and share are peeked before either is taken, so a denial never
    burns tokens from the other bucket.

    Fair-share math: the plane admits at most ``admit_rate`` requests
    per tick fleet-wide, split across tenants in proportion to their
    weights — tenant *i*'s share bucket refills at
    ``admit_rate * w_i / Σw`` and holds at most
    ``admit_burst * w_i / Σw`` tokens.  A flooder's sustained admission
    rate is therefore capped at its weight fraction regardless of how
    fast it submits, while every tick it spends flooding refills the
    other tenants' buckets.
    """

    def __init__(
        self,
        tenants: Iterable[TenantConfig],
        admit_rate: float = 1.0,
        admit_burst: float = 32.0,
        clock: Optional[Callable[[], float]] = None,
        default_config: Optional[TenantConfig] = None,
        strict: bool = False,
    ):
        configs = list(tenants)
        if not configs and default_config is None:
            raise ValueError("control plane needs at least one tenant")
        self.admit_rate = float(admit_rate)
        self.admit_burst = float(admit_burst)
        self.strict = strict
        self.default_config = default_config
        self._clock = clock  # None -> submission-tick clock
        self._tick = 0
        self._tenants: dict[str, _TenantState] = {}
        total_weight = sum(config.weight for config in configs) or 1.0
        self._total_weight = total_weight
        for config in configs:
            self._register(config, total_weight)

    def _register(
        self, config: TenantConfig, total_weight: float
    ) -> _TenantState:
        fraction = config.weight / total_weight
        state = _TenantState(
            config=config,
            quota=TokenBucket(
                config.quota_burst, config.quota_rate, now=self._now()
            ),
            share=TokenBucket(
                max(1.0, self.admit_burst * fraction),
                self.admit_rate * fraction,
                now=self._now(),
            ),
        )
        self._tenants[config.name] = state
        return state

    def _now(self) -> float:
        return float(self._tick) if self._clock is None else self._clock()

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            if self.strict or self.default_config is None:
                raise AuthenticationError(
                    f"unknown tenant {tenant!r}"
                )
            # lazily materialize an unregistered tenant under the default
            # knobs; its weight joins the pool already priced into the
            # default's share fraction (no re-normalization — admitting a
            # stranger must not silently shrink paying tenants' shares)
            config = TenantConfig(
                name=tenant,
                quota_rate=self.default_config.quota_rate,
                quota_burst=self.default_config.quota_burst,
                weight=self.default_config.weight,
            )
            state = self._register(config, self._total_weight)
        return state

    def admit(
        self,
        tenant: str = "",
        priority: int = DEFAULT_PRIORITY,
        deadline_remaining: Optional[float] = None,
    ) -> str:
        """Decide one admission; returns the cause string for the ledger.

        Raises the typed denial otherwise (see the class docstring for
        the order).  Advances the submission tick exactly once per call.
        """
        self._tick += 1
        now = self._now()
        if deadline_remaining is not None and deadline_remaining <= 0:
            state = self._tenants.get(tenant)
            if state is not None:
                state.hopeless_shed += 1
            raise DeadlineExceededError(
                late_by_seconds=-deadline_remaining
            )
        state = self._state(tenant or "")
        state.quota.refill(now)
        state.share.refill(now)
        reserve = state.share.capacity * QOS_RESERVE.get(
            priority if priority >= 0 else 0,
            QOS_RESERVE[2],
        )
        if not state.quota.peek():
            state.quota_shed += 1
            raise QuotaExceededError(
                state.config.name,
                retry_after_seconds=state.quota.deficit_time(),
                scope="quota",
            )
        if not state.share.peek(reserve=reserve):
            state.share_shed += 1
            raise QuotaExceededError(
                state.config.name,
                retry_after_seconds=state.share.deficit_time(1.0 + reserve),
                scope="fair_share",
            )
        state.quota.take()
        state.share.take()
        state.admitted += 1
        return f"tenant:{state.config.name}"

    def snapshot(self) -> dict:
        """JSON-ready per-tenant admission counters."""
        return {
            "admit_rate": self.admit_rate,
            "admit_burst": self.admit_burst,
            "tick": self._tick,
            "tenants": {
                name: {
                    "weight": state.config.weight,
                    "quota_rate": state.config.quota_rate,
                    "quota_burst": state.config.quota_burst,
                    "admitted": state.admitted,
                    "quota_shed": state.quota_shed,
                    "share_shed": state.share_shed,
                    "hopeless_shed": state.hopeless_shed,
                }
                for name, state in sorted(self._tenants.items())
            },
        }


class AuthShimMiddleware(ServiceMiddleware):
    """Token-based tenant authn/authz as an interception layer.

    The auth-shim pattern: enterprise policy lives in a middleware that
    never touches the mechanism core.  Each request must carry its
    bearer token in ``request.metadata["auth_token"]``; the shim maps
    the token to a :class:`TenantGrant` (authentication), checks the
    grant covers the request's claimed tenant, model, and QoS class
    (authorization), and otherwise stays out of the way.  Stateless
    after construction, so no lock binding is needed; ``bind_lock`` is
    inherited as a no-op.
    """

    name = "auth_shim"

    def __init__(self, grants: Iterable[TenantGrant] = (), tokens=None):
        """``tokens`` maps bearer token -> :class:`TenantGrant`.

        When only ``grants`` is given, each grant's token defaults to
        ``"token-<tenant>"`` — convenient for tests and demos.
        """
        if tokens is None:
            tokens = {
                f"token-{grant.tenant}": grant for grant in grants
            }
        self._tokens = dict(tokens)

    def on_request(self, request, ctx):
        token = request.metadata.get("auth_token")
        if token is None:
            raise AuthenticationError("request carries no auth_token")
        grant = self._tokens.get(token)
        if grant is None:
            raise AuthenticationError("unknown auth token")
        if request.tenant and request.tenant != grant.tenant:
            raise AuthenticationError(
                f"token is for tenant {grant.tenant!r}, "
                f"request claims {request.tenant!r}"
            )
        if not grant.allows_model(request.workload.model):
            raise AuthorizationError(
                f"tenant {grant.tenant!r} has no grant for model "
                f"{request.workload.model!r}"
            )
        if not grant.allows_priority(request.priority):
            raise AuthorizationError(
                f"tenant {grant.tenant!r} may not submit at QoS "
                f"{qos_class(request.priority)!r} (grant floor: "
                f"{qos_class(grant.min_priority)!r})"
            )
        return None
