"""Deterministic traffic scenarios for exercising the serving layer.

Load testing a cache-heavy gateway is only meaningful when the request
stream's *shape* is controlled: a uniform stream measures raw dispatch,
a zipf stream measures cache locality, a duplicate storm measures
single-flight dedup, and an adversarial mix measures shed/reject paths.
This module synthesizes those streams **deterministically** — the same
``(scenario, seed, num_requests)`` triple always produces the byte-same
sequence of ``(workload, device)`` pairs — so benchmark numbers and CI
assertions are reproducible.

Workloads are drawn from the real model registry (CNN family: cheap to
profile) and the paper's evaluation devices, so every generated request
is valid against :class:`~repro.service.middleware.ValidationMiddleware`
except where a scenario *wants* rejects (``adversarial``).

:class:`SyntheticEstimator` is the matching load-test estimator: instant
and deterministic (peak bytes derived from the request fingerprint), so
replays measure the serving layer — routing, caches, queues — rather
than CPU profiling time.

:func:`replay` drives the thread-based services/gateways wave by wave;
:func:`repro.service.aio.replay_async` is its awaitable mirror for the
asyncio driver, with identical accounting (same :class:`ReplayReport`),
so the two drivers can be compared on the same trace apples-to-apples.
"""

from __future__ import annotations

import hashlib
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..core.base import Estimator
from ..core.result import EstimationResult
from ..errors import (
    QuotaExceededError,
    RateLimitExceededError,
    RequestRejectedError,
)
from ..models.registry import list_models
from ..units import GiB, MiB
from ..workload import EVAL_DEVICES, DeviceSpec, WorkloadConfig
from .control import ControlPlane, TenantConfig
from .faults import FaultPlan, FaultSpec
from .metrics import percentile

#: Multi-tenant scenario catalog (``loadtest --tenants``): traffic that
#: only makes sense against a gateway with a
#: :class:`~repro.service.control.ControlPlane` (see
#: :func:`make_control`) — each request carries a tenant and QoS class.
TENANT_SCENARIOS = (
    "noisy-neighbor",
    "quota-storm",
    "priority-inversion",
)

SCENARIO_NAMES = (
    "uniform",
    "zipf",
    "bursty",
    "duplicate-storm",
    "adversarial",
) + TENANT_SCENARIOS

#: Chaos scenario catalog (``loadtest --chaos``): each name maps to a
#: seeded :class:`~repro.service.faults.FaultPlan` shape — traffic says
#: *what* arrives, chaos says *what breaks* while it does.
CHAOS_SCENARIOS = (
    "shard-kill",
    "worker-massacre",
    "flapping-network",
    "latency-storm",
)

#: optimizer pool for generated workloads (all registry-valid)
_OPTIMIZERS = ("sgd", "adam", "adamw")
_BATCH_SIZES = (4, 8, 16, 32)


@dataclass(frozen=True)
class TrafficRequest:
    """One generated request: what to submit and when (which wave)."""

    workload: WorkloadConfig
    device: DeviceSpec
    #: burst index — replayers submit a wave, join it, then continue
    wave: int = 0
    #: submitting tenant ("" = untenanted; see service.control)
    tenant: str = ""
    #: QoS class (0 interactive / 1 standard / 2 batch)
    priority: int = 1


@dataclass(frozen=True)
class TrafficTrace:
    """A replayable, fully materialized request stream."""

    scenario: str
    seed: int
    requests: tuple[TrafficRequest, ...]

    def __len__(self) -> int:
        return len(self.requests)

    def waves(self) -> list[list[TrafficRequest]]:
        """Requests grouped by wave, in wave order."""
        grouped: dict[int, list[TrafficRequest]] = {}
        for request in self.requests:
            grouped.setdefault(request.wave, []).append(request)
        return [grouped[wave] for wave in sorted(grouped)]

    def unique_fingerprint_keys(self) -> int:
        """Distinct (workload, device) identities in the trace."""
        return len(
            {
                (r.workload.to_key(), r.device.to_key())
                for r in self.requests
            }
        )


def workload_catalog(
    size: int,
    seed: int = 0,
    models: Optional[Sequence[str]] = None,
) -> list[WorkloadConfig]:
    """``size`` distinct valid workloads, deterministic in ``seed``.

    Defaults to the CNN zoo — the cheapest family to profile — crossed
    with optimizers and batch sizes; the cross product is shuffled so a
    prefix is already diverse.
    """
    if size < 1:
        raise ValueError("catalog needs at least one workload")
    if models is None:
        models = [
            spec.name for spec in list_models() if spec.family == "cnn"
        ]
    combos = [
        WorkloadConfig(model=model, optimizer=optimizer, batch_size=batch)
        for model in models
        for optimizer in _OPTIMIZERS
        for batch in _BATCH_SIZES
    ]
    if size > len(combos):
        raise ValueError(
            f"catalog size {size} exceeds {len(combos)} distinct combos"
        )
    rng = random.Random(seed)
    rng.shuffle(combos)
    return combos[:size]


def _zipf_weights(count: int, exponent: float = 1.2) -> list[float]:
    return [1.0 / (rank + 1) ** exponent for rank in range(count)]


def _generate_uniform(rng, catalog, devices, num_requests, waves):
    return [
        TrafficRequest(
            workload=rng.choice(catalog),
            device=rng.choice(devices),
            wave=index * waves // num_requests,
        )
        for index in range(num_requests)
    ]


def _generate_zipf(rng, catalog, devices, num_requests, waves):
    """Hot-key traffic: rank-1 workload dominates (web-cache shape)."""
    weights = _zipf_weights(len(catalog))
    picks = rng.choices(range(len(catalog)), weights=weights, k=num_requests)
    device_for = {  # hot keys keep a fixed device: repeats share a fingerprint
        index: devices[index % len(devices)] for index in range(len(catalog))
    }
    return [
        TrafficRequest(
            workload=catalog[pick],
            device=device_for[pick],
            wave=index * waves // num_requests,
        )
        for index, pick in enumerate(picks)
    ]


def _generate_bursty(rng, catalog, devices, num_requests, waves):
    """Each wave hammers a small working set, then moves on.

    Models diurnal / deploy-driven traffic: within a wave requests repeat
    heavily (cache + dedup exercise); across waves the working set drifts
    (eviction exercise).
    """
    requests: list[TrafficRequest] = []
    effective_waves = min(waves, num_requests)  # never exceed the budget
    per_wave = num_requests // effective_waves
    for wave in range(effective_waves):
        working_set = rng.sample(catalog, k=min(3, len(catalog)))
        device = rng.choice(devices)
        count = (
            per_wave
            if wave < effective_waves - 1
            else num_requests - len(requests)
        )
        requests.extend(
            TrafficRequest(
                workload=rng.choice(working_set), device=device, wave=wave
            )
            for _ in range(count)
        )
    return requests


def _generate_duplicate_storm(rng, catalog, devices, num_requests, waves):
    """~80% of the stream is one identical request (thundering herd)."""
    hot = rng.choice(catalog)
    device = rng.choice(devices)
    return [
        TrafficRequest(
            workload=(
                hot if rng.random() < 0.8 else rng.choice(catalog)
            ),
            device=device,
            wave=index * waves // num_requests,
        )
        for index in range(num_requests)
    ]


def _generate_adversarial(rng, catalog, devices, num_requests, waves):
    """The shard-killing mix: cache-busting keys + invalid requests.

    One third cycles through *never-repeating* batch sizes (every request
    a cold miss — defeats any cache), one third is a hot-key storm on a
    single shard's key space, and one third is malformed traffic
    (unknown models, budget-less devices) that must be rejected by
    validation without occupying workers.
    """
    hot = rng.choice(catalog)
    hot_device = rng.choice(devices)
    dead_device = DeviceSpec(
        name="dead-gpu", capacity_bytes=256 * MiB, init_bytes=0
    )  # framework_bytes default exceeds capacity: no job budget
    requests = []
    for index in range(num_requests):
        wave = index * waves // num_requests
        kind = index % 3
        if kind == 0:  # cache buster: unique batch size every time
            base = rng.choice(catalog)
            requests.append(
                TrafficRequest(
                    workload=base.with_batch_size(64 + index),
                    device=rng.choice(devices),
                    wave=wave,
                )
            )
        elif kind == 1:  # hot-key storm
            requests.append(
                TrafficRequest(workload=hot, device=hot_device, wave=wave)
            )
        else:  # invalid: unknown model or budget-less device
            if rng.random() < 0.5:
                workload = WorkloadConfig(
                    model=f"no-such-model-{index}",
                    optimizer="sgd",
                    batch_size=8,
                )
                requests.append(
                    TrafficRequest(
                        workload=workload,
                        device=rng.choice(devices),
                        wave=wave,
                    )
                )
            else:
                requests.append(
                    TrafficRequest(
                        workload=rng.choice(catalog),
                        device=dead_device,
                        wave=wave,
                    )
                )
    return requests


def _generate_noisy_neighbor(rng, catalog, devices, num_requests, waves):
    """One hostile tenant floods at ~10x its quota; one stays polite.

    Three of every four requests belong to ``hostile`` and cache-bust
    (unique batch size per request, so every admitted one costs a real
    estimation); every fourth belongs to ``well-behaved`` and draws from
    a two-workload hot set.  Against :func:`make_control` knobs the
    hostile demand is ~10x its quota refill, so the quota bucket — not
    the queue — absorbs the flood and the well-behaved tenant's latency
    stays near its solo baseline (the bench_control_plane assertion).
    """
    hot = rng.sample(catalog, k=min(2, len(catalog)))
    hot_device = rng.choice(devices)
    requests = []
    for index in range(num_requests):
        wave = index * waves // num_requests
        if index % 4 == 0:  # polite minority traffic on a hot set
            requests.append(
                TrafficRequest(
                    workload=rng.choice(hot),
                    device=hot_device,
                    wave=wave,
                    tenant="well-behaved",
                )
            )
        else:  # hostile cache-busting flood
            base = rng.choice(catalog)
            requests.append(
                TrafficRequest(
                    workload=base.with_batch_size(96 + index),
                    device=rng.choice(devices),
                    wave=wave,
                    tenant="hostile",
                )
            )
    return requests


def _generate_quota_storm(rng, catalog, devices, num_requests, waves):
    """Three equal tenants all burst past their quota at once.

    Round-robin interleave so every wave sees all three tenants over
    their refill rate simultaneously — the drill for per-tenant quota
    isolation (each tenant's sheds come out of its *own* bucket) rather
    than one loud tenant draining a shared limiter.
    """
    tenants = ("alpha", "beta", "gamma")
    device = rng.choice(devices)
    return [
        TrafficRequest(
            workload=rng.choice(catalog),
            device=device,
            wave=index * waves // num_requests,
            tenant=tenants[index % len(tenants)],
        )
        for index in range(num_requests)
    ]


def _generate_priority_inversion(rng, catalog, devices, num_requests, waves):
    """One tenant's batch flood races its own interactive trickle.

    Four of every five requests are priority-2 (batch) cache busters;
    every fifth is a priority-0 (interactive) hot-key request.  Without
    the QoS reserve the batch flood drains the tenant's fair share and
    starves its interactive traffic — with it, batch admission stops at
    the reserve floor and interactive requests keep landing.
    """
    hot = rng.choice(catalog)
    hot_device = rng.choice(devices)
    requests = []
    for index in range(num_requests):
        wave = index * waves // num_requests
        if index % 5 == 0:  # interactive trickle
            requests.append(
                TrafficRequest(
                    workload=hot,
                    device=hot_device,
                    wave=wave,
                    tenant="mixed",
                    priority=0,
                )
            )
        else:  # batch flood, cache-busting
            base = rng.choice(catalog)
            requests.append(
                TrafficRequest(
                    workload=base.with_batch_size(96 + index),
                    device=rng.choice(devices),
                    wave=wave,
                    tenant="mixed",
                    priority=2,
                )
            )
    return requests


_GENERATORS: dict[str, Callable] = {
    "uniform": _generate_uniform,
    "zipf": _generate_zipf,
    "bursty": _generate_bursty,
    "duplicate-storm": _generate_duplicate_storm,
    "adversarial": _generate_adversarial,
    "noisy-neighbor": _generate_noisy_neighbor,
    "quota-storm": _generate_quota_storm,
    "priority-inversion": _generate_priority_inversion,
}

#: Control-plane knobs matched to each tenant scenario's traffic shape:
#: (tenant configs, admit_rate, admit_burst).  Rates are per admission
#: *tick* (one tick per gateway admit call), so the ratios below are
#: what matters: in ``noisy-neighbor`` the hostile tenant is 0.75 of
#: the stream against a 0.075/tick quota — a 10x overdrive — while the
#: well-behaved quarter of the stream fits inside both its quota (0.5)
#: and its weighted fair share (3/4 of admit_rate 0.8).
_TENANT_CONTROLS: dict[str, tuple[tuple[TenantConfig, ...], float, float]] = {
    "noisy-neighbor": (
        (
            TenantConfig(
                "well-behaved", quota_rate=0.5, quota_burst=64.0, weight=3.0
            ),
            TenantConfig(
                "hostile", quota_rate=0.075, quota_burst=4.0, weight=1.0
            ),
        ),
        0.8,
        64.0,
    ),
    "quota-storm": (
        tuple(
            TenantConfig(name, quota_rate=0.15, quota_burst=6.0, weight=1.0)
            for name in ("alpha", "beta", "gamma")
        ),
        1.0,
        32.0,
    ),
    "priority-inversion": (
        (
            TenantConfig(
                "mixed", quota_rate=1.0, quota_burst=64.0, weight=1.0
            ),
        ),
        0.6,
        16.0,
    ),
}


def tenant_configs(scenario: str) -> tuple[TenantConfig, ...]:
    """The tenant roster a multi-tenant scenario is calibrated against."""
    if scenario not in _TENANT_CONTROLS:
        raise ValueError(
            f"unknown tenant scenario {scenario!r}; "
            f"choose from {TENANT_SCENARIOS}"
        )
    return _TENANT_CONTROLS[scenario][0]


def make_control(scenario: str) -> ControlPlane:
    """A fresh, calibrated control plane for one multi-tenant scenario.

    Token buckets are stateful, so every gateway (and every run) needs
    its own instance — sharing one across drivers would make the second
    replay start from drained buckets and break decision-sequence
    comparisons.
    """
    tenant_configs(scenario)  # validates the name
    configs, admit_rate, admit_burst = _TENANT_CONTROLS[scenario]
    return ControlPlane(
        configs, admit_rate=admit_rate, admit_burst=admit_burst
    )


def generate_traffic(
    scenario: str,
    num_requests: int,
    seed: int = 0,
    unique_workloads: int = 8,
    waves: int = 4,
    devices: Optional[Sequence[DeviceSpec]] = None,
    models: Optional[Sequence[str]] = None,
) -> TrafficTrace:
    """Materialize one named scenario into a replayable trace.

    Deterministic: the same arguments always produce the same trace.
    ``unique_workloads`` bounds the catalog the scenario draws from
    (scenarios may still synthesize extra keys — ``adversarial`` does).
    """
    if scenario not in _GENERATORS:
        raise ValueError(
            f"unknown scenario {scenario!r}; choose from {SCENARIO_NAMES}"
        )
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if waves < 1:
        raise ValueError("waves must be >= 1")
    rng = random.Random(seed)
    catalog = workload_catalog(unique_workloads, seed=seed, models=models)
    devices = tuple(devices) if devices else EVAL_DEVICES
    requests = _GENERATORS[scenario](
        rng, catalog, devices, num_requests, waves
    )
    return TrafficTrace(
        scenario=scenario, seed=seed, requests=tuple(requests)
    )


def chaos_plan(
    scenario: str,
    num_requests: int,
    num_shards: int,
    seed: int = 0,
) -> FaultPlan:
    """Materialize one named chaos scenario into a seeded fault plan.

    Deterministic in its arguments, like :func:`generate_traffic` — a
    (traffic seed, chaos seed) pair pins an entire chaos run, which is
    what lets ``bench_chaos`` replay a blackout twice and demand
    identical resilience decisions.

    * ``shard-kill`` — one seeded shard goes dark for the middle half of
      the request stream (the breaker/re-route drill).
    * ``worker-massacre`` — scattered ``worker_kill`` faults; real
      worker deaths on the procpool driver, injected estimator failures
      (and gateway retries) elsewhere.
    * ``flapping-network`` — scattered connection drops plus a trickle
      of estimator errors; drops are real RSTs on the TCP driver and
      planned no-ops in-process, so plan indices stay aligned.
    * ``latency-storm`` — a third of requests eat a latency spike; no
      errors at all (the hedging/deadline drill, not the retry drill).
    """
    if scenario not in CHAOS_SCENARIOS:
        raise ValueError(
            f"unknown chaos scenario {scenario!r}; "
            f"choose from {CHAOS_SCENARIOS}"
        )
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if scenario == "shard-kill":
        rng = random.Random(seed)
        span = max(1, num_requests // 2)
        start = num_requests // 4
        return FaultPlan.from_specs(
            [
                FaultSpec(
                    kind="shard_blackout",
                    start=start,
                    stop=start + span,
                    shard=rng.randrange(num_shards),
                )
            ],
            seed=seed,
        )
    if scenario == "worker-massacre":
        return FaultPlan.seeded(
            seed,
            num_requests,
            num_shards,
            error_rate=0.0,
            latency_rate=0.0,
            worker_kills=max(1, num_requests // 16),
        )
    if scenario == "flapping-network":
        return FaultPlan.seeded(
            seed,
            num_requests,
            num_shards,
            error_rate=0.01,
            latency_rate=0.0,
            connection_drops=max(1, num_requests // 12),
        )
    # latency-storm
    return FaultPlan.seeded(
        seed,
        num_requests,
        num_shards,
        error_rate=0.0,
        latency_rate=0.34,
        latency_seconds=0.01,
    )


# ----------------------------------------------------------------------
# load-test estimator + replay driver
# ----------------------------------------------------------------------


class SyntheticEstimator(Estimator):
    """Instant, deterministic estimator for serving-layer load tests.

    The estimate is a pure function of (workload, device): peak bytes are
    derived from a stable hash of the identity tuples, so two replicas —
    or a gateway and a direct call — always agree byte-for-byte.
    ``work_seconds`` simulates estimation cost (sleep — releases the GIL,
    so thread pools overlap it), which is what makes cache hits and dedup
    visible in throughput numbers.  ``spin_seconds`` simulates *CPU-bound*
    estimation cost (a pure-Python arithmetic loop that holds the GIL):
    thread drivers serialize it no matter how many workers they have,
    which is exactly the contention the process-pool driver exists to
    break — `benchmarks/bench_proc_gateway.py` races the two on it.
    """

    name = "synthetic"
    version = "1"

    def __init__(self, work_seconds: float = 0.0, spin_seconds: float = 0.0):
        self.work_seconds = work_seconds
        self.spin_seconds = spin_seconds
        self.calls = 0
        self._lock = threading.Lock()

    def supports(self, workload: WorkloadConfig) -> bool:
        return True

    @staticmethod
    def _spin(seconds: float) -> int:
        """Burn CPU under the GIL for ~``seconds`` (deterministic result)."""
        deadline = time.perf_counter() + seconds
        acc = 0
        while time.perf_counter() < deadline:
            for value in range(256):
                acc = (acc * 31 + value) & 0xFFFFFFFF
        return acc

    def estimate(
        self, workload: WorkloadConfig, device: DeviceSpec
    ) -> EstimationResult:
        with self._lock:
            self.calls += 1
        if self.work_seconds > 0:
            time.sleep(self.work_seconds)
        if self.spin_seconds > 0:
            self._spin(self.spin_seconds)
        token = repr((workload.to_key(), device.to_key())).encode("utf-8")
        digest = hashlib.sha256(token).digest()
        fraction = int.from_bytes(digest[:4], "big") / 2**32
        peak = int(fraction * 8 * GiB) + 64 * MiB
        return EstimationResult(
            estimator=self.name,
            workload=workload,
            device=device,
            peak_bytes=peak,
            runtime_seconds=self.work_seconds,
            detail={"synthetic": True},
        )


@dataclass
class ReplayReport:
    """Outcome counts and timings of one trace replay.

    Tenanted requests are additionally bucketed per tenant (counters +
    end-to-end latency samples) so fairness claims — "the well-behaved
    tenant's p99 survived the flood" — are assertable from one report.
    Untenanted requests only touch the top-level counters, keeping the
    report shape of single-tenant scenarios unchanged.
    """

    scenario: str
    num_requests: int
    answered: int = 0
    shed: int = 0
    quota_shed: int = 0
    rejected: int = 0
    errors: int = 0
    elapsed_seconds: float = 0.0
    stats: dict = field(default_factory=dict)
    #: tenant -> outcome counters (submitted/answered/shed/quota_shed/
    #: rejected/errors); populated only for tenanted requests
    tenants: dict = field(default_factory=dict)
    #: tenant -> raw submit-to-result latency samples (seconds, answered
    #: requests only); serialized as percentiles, not raw samples
    tenant_latencies: dict = field(default_factory=dict)

    def tenant_bucket(self, tenant: str) -> dict:
        """Per-tenant counters, created zeroed on first touch."""
        return self.tenants.setdefault(
            tenant,
            {
                "submitted": 0,
                "answered": 0,
                "shed": 0,
                "quota_shed": 0,
                "rejected": 0,
                "errors": 0,
            },
        )

    def note_latency(self, tenant: str, seconds: float) -> None:
        self.tenant_latencies.setdefault(tenant, []).append(seconds)

    def tenant_latency_ms(self, tenant: str, q: float) -> float:
        """Linear-interpolated latency percentile for one tenant (ms)."""
        value = percentile(self.tenant_latencies.get(tenant, ()), q)
        return 0.0 if value is None else value * 1000.0

    @property
    def throughput_rps(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.answered / self.elapsed_seconds

    @property
    def shed_rate(self) -> float:
        return self.shed / self.num_requests if self.num_requests else 0.0

    @property
    def reject_rate(self) -> float:
        return (
            self.rejected / self.num_requests if self.num_requests else 0.0
        )

    def as_dict(self) -> dict:
        report = {
            "scenario": self.scenario,
            "num_requests": self.num_requests,
            "answered": self.answered,
            "shed": self.shed,
            "quota_shed": self.quota_shed,
            "rejected": self.rejected,
            "errors": self.errors,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_rps": self.throughput_rps,
            "shed_rate": self.shed_rate,
            "reject_rate": self.reject_rate,
            "stats": self.stats,
        }
        if self.tenants:
            report["tenants"] = {
                name: {
                    **counters,
                    "p50_ms": self.tenant_latency_ms(name, 50),
                    "p95_ms": self.tenant_latency_ms(name, 95),
                    "p99_ms": self.tenant_latency_ms(name, 99),
                }
                for name, counters in sorted(self.tenants.items())
            }
        return report


def replay(trace: TrafficTrace, target) -> ReplayReport:
    """Replay a trace against a service or gateway, wave by wave.

    Each wave is submitted concurrently (``submit``) and joined before
    the next begins — bursts stress single-flight and queues, wave
    boundaries let caches matter.  Sheds (``RateLimitExceededError``)
    and validation rejections are *expected* outcomes under adversarial
    scenarios; they are counted, not raised.

    Sheds are counted wherever they surface: in-process drivers raise
    synchronously from ``submit`` (nothing was enqueued), while a network
    client only learns of a shed from the server's response frame — its
    future fails with the same typed exception instead.  Both paths land
    in ``report.shed``, so driver comparisons stay apples-to-apples.
    """
    report = ReplayReport(scenario=trace.scenario, num_requests=len(trace))
    started = time.perf_counter()
    for wave in trace.waves():
        futures = []
        for request in wave:
            bucket = (
                report.tenant_bucket(request.tenant)
                if request.tenant
                else None
            )
            if bucket is not None:
                bucket["submitted"] += 1
            # kwargs only off their defaults: untenanted traces call
            # submit() exactly as pre-control-plane replays did, so any
            # target with the old signature still works
            kwargs = {}
            if request.tenant:
                kwargs["tenant"] = request.tenant
            if request.priority != 1:
                kwargs["priority"] = request.priority
            submitted_at = time.perf_counter()
            try:
                futures.append(
                    (
                        request,
                        submitted_at,
                        target.submit(
                            request.workload, request.device, **kwargs
                        ),
                    )
                )
            except QuotaExceededError:
                report.shed += 1
                report.quota_shed += 1
                if bucket is not None:
                    bucket["shed"] += 1
                    bucket["quota_shed"] += 1
            except RateLimitExceededError:
                report.shed += 1
                if bucket is not None:
                    bucket["shed"] += 1
            except RequestRejectedError:
                report.rejected += 1
                if bucket is not None:
                    bucket["rejected"] += 1
        for request, submitted_at, future in futures:
            bucket = (
                report.tenant_bucket(request.tenant)
                if request.tenant
                else None
            )
            try:
                future.result()
                report.answered += 1
                if bucket is not None:
                    bucket["answered"] += 1
                    report.note_latency(
                        request.tenant,
                        time.perf_counter() - submitted_at,
                    )
            except QuotaExceededError:
                report.shed += 1
                report.quota_shed += 1
                if bucket is not None:
                    bucket["shed"] += 1
                    bucket["quota_shed"] += 1
            except RateLimitExceededError:
                report.shed += 1
                if bucket is not None:
                    bucket["shed"] += 1
            except RequestRejectedError:
                report.rejected += 1
                if bucket is not None:
                    bucket["rejected"] += 1
            except Exception:
                report.errors += 1
                if bucket is not None:
                    bucket["errors"] += 1
    report.elapsed_seconds = time.perf_counter() - started
    report.stats = target.stats()
    return report
