"""The asyncio execution driver over the sans-IO service core.

:class:`AsyncEstimationService` and :class:`AsyncServiceGateway` run the
*same* policy core as the thread driver — the middleware onion, the
fingerprint cache, single-flight deduplication, routing, and queue/shed
accounting all come from :mod:`repro.service.core` — but on an event
loop: cache lookups, hooks, and bookkeeping execute inline on the loop
(serialized by it, so the core's ``NullLock`` slots stay null), while the
CPU-bound estimator call is offloaded to a thread executor.  Results are
byte-identical to the thread driver's and to direct estimator calls.

Why a second driver instead of wrapping the thread service in
``run_in_executor``?  Because the expensive part of a serving tier under
duplicate-heavy traffic is not the estimation — it is the per-request
locking, future plumbing, and thread handoffs around cache hits and
piggybacked duplicates.  On the loop those are plain function calls: a
hit or a dedup never leaves the event loop at all.

Surface::

    async with AsyncEstimationService() as service:
        result = await service.estimate(workload, device)
        results = await service.estimate_many([(w1, d1), (w2, d2)])

    gateway = AsyncServiceGateway(num_shards=4)
    future = gateway.submit(workload, device)   # asyncio.Future
    result = await future
    await gateway.drain()
    await gateway.aclose()

``submit`` mirrors the thread drivers: it raises synchronously for
validation/rate-limit/shed rejections and returns an awaitable future
otherwise, so :func:`replay_async` can replay the PR 2 traffic scenarios
against either driver with identical accounting.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional, Sequence

from ..core.base import Estimator
from ..core.estimator import XMemEstimator
from ..errors import (
    CircuitOpenError,
    DeadlineExceededError,
    QuotaExceededError,
    RateLimitExceededError,
    RequestRejectedError,
    ServiceClosedError,
    ShardBlackoutError,
)
from ..trace.reader import Trace
from ..workload import DeviceSpec, WorkloadConfig
from .batch import plan_shared_traces
from .cache import EstimateCache
from .context import RequestContext, ServiceRequest
from .control import DEFAULT_PRIORITY, ControlPlane
from .core import (
    GatewayCore,
    ServiceCore,
    adopt_chain_cache,
    aggregate_shard_stats,
    compute_fingerprint,
    estimator_accepts_trace,
    invoke_estimator,
)
from .engine import DEFAULT_MAX_WORKERS
from .faults import FaultInjector, FaultPlan
from .gateway import DEFAULT_MAX_QUEUE_DEPTH, DEFAULT_NUM_SHARDS
from .metrics import ServiceMetrics
from .middleware import (
    MiddlewareChain,
    ServiceMiddleware,
    default_middlewares,
)
from .resilience import ResilienceCore, ResiliencePolicy, is_transient
from .routing import ConsistentHashRouting, RoutingPolicy
from .telemetry import ledger as ledger_events
from .telemetry.spans import GATEWAY_SPAN
from .traffic import ReplayReport, TrafficTrace

__all__ = [
    "AsyncEstimationService",
    "AsyncServiceGateway",
    "estimate_many_async",
    "replay_async",
]


class AsyncEstimationService:
    """Serves estimation requests on an event loop (asyncio driver).

    Construction mirrors :class:`~repro.service.engine.EstimationService`
    exactly; ``max_workers`` sizes the executor that runs the CPU-bound
    estimates.  All public methods must be called from a running event
    loop.  The middleware hooks run on the loop, so they keep their
    sans-IO null locks — except the cache, which gets a real lock because
    the bulk profile planner inspects it from executor threads.
    """

    def __init__(
        self,
        estimator: Optional[Estimator] = None,
        middlewares: Optional[Sequence[ServiceMiddleware]] = None,
        cache: Optional[EstimateCache] = None,
        max_workers: int = DEFAULT_MAX_WORKERS,
        metrics: Optional[ServiceMetrics] = None,
        telemetry=None,
    ):
        if max_workers < 1:
            raise ValueError("service needs at least one worker")
        self.estimator = estimator if estimator is not None else XMemEstimator()
        self.cache = cache if cache is not None else EstimateCache()
        if middlewares is None:
            middlewares = default_middlewares(self.cache)
        else:
            self.cache = adopt_chain_cache(middlewares, self.cache)
        self.chain = MiddlewareChain(middlewares)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        # hooks run on the loop (no middleware locks needed), but the
        # shared-profile planner reads the cache from executor threads
        self.cache.bind_lock(threading.Lock)
        self.telemetry = telemetry
        self.core = ServiceCore(
            self.chain,
            self.cache,
            self.metrics,
            tracer=telemetry.tracer if telemetry is not None else None,
            ledger=telemetry.ledger if telemetry is not None else None,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="xmem-aio"
        )
        self._tasks: set[asyncio.Task] = set()
        self._draining = False
        self._closed = False
        self._accepts_trace = estimator_accepts_trace(self.estimator)

    # ------------------------------------------------------------------
    # public API (awaitable mirror of EstimationService)
    # ------------------------------------------------------------------
    @property
    def accepts_trace(self) -> bool:
        """Whether the wrapped estimator can reuse a pre-computed trace."""
        return self._accepts_trace

    def fingerprint(
        self, workload: WorkloadConfig, device: DeviceSpec
    ) -> str:
        """The cache/single-flight key this service uses for a request."""
        return compute_fingerprint(self.estimator, workload, device)

    def submit(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace] = None,
        fingerprint: Optional[str] = None,
        deadline: Optional[float] = None,
        metadata: Optional[dict] = None,
        tenant: str = "",
        priority: int = DEFAULT_PRIORITY,
    ) -> "asyncio.Future":
        """Enqueue one request; returns an awaitable of the result.

        Must be called on the event loop.  Raises synchronously when a
        hook rejects the request; identical in-flight requests share one
        estimation.  Because everything up to the executor dispatch runs
        inline on the loop, there is no re-check window: the single-flight
        table cannot change between lookup and claim.

        Every caller receives its *own* future chained off the shared
        in-flight one: asyncio futures are cancellable (``wait_for``
        cancels on timeout), and one caller's cancellation must not
        poison the piggybacked duplicates — matching the thread driver,
        whose running ``concurrent.futures.Future`` cannot be cancelled.
        """
        loop = asyncio.get_running_loop()
        if self._closed or self._draining:
            raise ServiceClosedError("service is closed")
        fp = (
            fingerprint
            if fingerprint is not None
            else self.fingerprint(workload, device)
        )
        request, ctx = self.core.open_request(
            workload,
            device,
            fp,
            trace=trace,
            deadline=deadline,
            metadata=metadata,
            tenant=tenant,
            priority=priority,
        )
        # an already-expired deadline is rejected before the dedup lookup:
        # piggybacking would hand the caller a result it declared useless
        self.core.check_deadline(ctx)
        inflight = self.core.inflight.get(fp)
        if inflight is not None:
            self.core.note_deduplicated(ctx)
            return self._chain_future(loop, inflight)
        admission = self.core.run_request_hooks(request, ctx)
        if admission.result is not None:
            future = loop.create_future()
            future.set_result(admission.result)
            return future
        master = loop.create_future()
        self.core.inflight.claim(fp, master)
        task = loop.create_task(
            self._run(request, ctx, master, admission.depth)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return self._chain_future(loop, master)

    @staticmethod
    def _chain_future(loop, master: "asyncio.Future") -> "asyncio.Future":
        """A per-caller future mirroring the shared in-flight one.

        The master future never leaves the service, so no caller can
        cancel the estimation out from under the other waiters; each
        child just copies the master's outcome (the same result object /
        exception instance, so dedup identity guarantees hold).
        """
        child = loop.create_future()

        def _copy(resolved: "asyncio.Future") -> None:
            if child.done():
                return  # the child was cancelled by its own caller
            if resolved.cancelled():
                child.cancel()
            elif resolved.exception() is not None:
                child.set_exception(resolved.exception())
            else:
                child.set_result(resolved.result())

        if master.done():
            _copy(master)
        else:
            master.add_done_callback(_copy)
        return child

    async def estimate(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace] = None,
    ):
        """Awaitable request — the drop-in for ``estimator.estimate()``."""
        return await self.submit(workload, device, trace=trace)

    async def estimate_many(
        self,
        requests: Sequence[tuple[WorkloadConfig, DeviceSpec]],
        share_profiles: bool = True,
        return_exceptions: bool = False,
    ) -> list:
        """Awaitable bulk API; results in request order (see batch)."""
        return await estimate_many_async(
            self,
            requests,
            share_profiles=share_profiles,
            return_exceptions=return_exceptions,
        )

    def stats(self) -> dict:
        """Service metrics + cache counters in one JSON-ready snapshot."""
        return {
            "service": self.metrics.as_dict(),
            "cache": self.cache.stats().as_dict(),
            "inflight": len(self.core.inflight),
        }

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting requests and wait for in-flight ones to finish.

        Returns True when every in-flight estimate settled within
        ``timeout`` (None = wait forever).  Idempotent; ``submit`` raises
        afterwards.
        """
        self._draining = True
        pending = {task for task in self._tasks if not task.done()}
        if not pending:
            return True
        _done, rest = await asyncio.wait(pending, timeout=timeout)
        return not rest

    async def aclose(self, wait: bool = True) -> None:
        """Drain (when ``wait``), then release the executor.

        ``wait=False`` mirrors the thread driver's ``close(wait=False)``:
        intake stops and the executor is told to shut down without
        joining its threads — in-flight estimates finish in the
        background, nothing blocks.  Safe to call twice.
        """
        if wait:
            await self.drain()
        self._draining = True
        self._closed = True
        # after a full drain no estimate is running, so joining the idle
        # worker threads cannot block the loop for long; without a drain
        # we must not join at all
        self._executor.shutdown(wait=wait)

    async def __aenter__(self) -> "AsyncEstimationService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # executor side
    # ------------------------------------------------------------------
    async def _run(
        self,
        request: ServiceRequest,
        ctx: RequestContext,
        future: "asyncio.Future",
        depth: int,
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            if ctx.telemetry is not None:
                ctx.telemetry.begin_estimate()
            result = await loop.run_in_executor(
                self._executor,
                invoke_estimator,
                self.estimator,
                request,
                self._accepts_trace,
            )
            # back on the loop: completion hooks + accounting are core
            # steps and run serialized, exactly like the thread driver's
            # worker-side _run
            result = self.core.finish(request, ctx, result, depth)
        except BaseException as error:
            self.core.fail(request, ctx, error, depth)
            self.core.inflight.release(request.fingerprint)
            if not future.done():
                future.set_exception(error)
            return
        self.core.inflight.release(request.fingerprint)
        if not future.done():
            future.set_result(result)


class _AsyncResilientCall:
    """Per-request attempt state for the async resilience plane.

    The asyncio twin of ``gateway._ResilientCall`` minus the lock: every
    transition runs on the event loop, which already serializes them.
    ``outer`` is the gateway-owned future the caller awaits; attempts
    (retries, hedges) come and go underneath it and it settles exactly
    once.
    """

    __slots__ = (
        "workload",
        "device",
        "trace",
        "deadline",
        "metadata",
        "tenant",
        "priority",
        "fingerprint",
        "seq",
        "index",
        "attempt",
        "outer",
        "settled",
        "inflight",
        "hedged",
        "retry_handle",
        "hedge_handle",
    )

    def __init__(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace],
        deadline: Optional[float],
        metadata: Optional[dict],
        fingerprint: str,
        seq: int,
        index: Optional[int],
        tenant: str = "",
        priority: int = DEFAULT_PRIORITY,
    ):
        self.workload = workload
        self.device = device
        self.trace = trace
        self.deadline = deadline
        self.metadata = metadata
        self.tenant = tenant
        self.priority = priority
        self.fingerprint = fingerprint
        self.seq = seq
        #: global fault-plan submission index (None without an injector)
        self.index = index
        self.attempt = 1
        self.outer: Optional[asyncio.Future] = None
        self.settled = False
        #: attempts currently running (primary + hedge twin)
        self.inflight = 0
        self.hedged = False
        self.retry_handle: Optional[asyncio.TimerHandle] = None
        self.hedge_handle: Optional[asyncio.TimerHandle] = None


class AsyncServiceGateway:
    """Routes estimation requests across N async service shards.

    The identical :class:`~repro.service.core.GatewayCore` state machine
    as the thread gateway, driven from the event loop: routing, admission
    and shed decisions are plain calls (the loop serializes them), and
    ``drain()`` awaits an ``asyncio.Event`` the settle path sets when the
    fleet goes idle.
    """

    def __init__(
        self,
        shards: Optional[Sequence[AsyncEstimationService]] = None,
        num_shards: int = DEFAULT_NUM_SHARDS,
        estimator_factory: Optional[Callable[[], object]] = None,
        policy: Optional[RoutingPolicy] = None,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
        max_workers_per_shard: int = 2,
        telemetry=None,
        resilience: Optional[ResiliencePolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        control: Optional[ControlPlane] = None,
    ):
        if shards is None:
            if num_shards < 1:
                raise ValueError("gateway needs at least one shard")
            shards = [
                AsyncEstimationService(
                    estimator=(
                        estimator_factory() if estimator_factory else None
                    ),
                    max_workers=max_workers_per_shard,
                )
                for _ in range(num_shards)
            ]
        elif not shards:
            raise ValueError("gateway needs at least one shard")
        self._shard_services = tuple(shards)
        # resilience plane (PR 8): both optional; with neither set,
        # submit() runs the exact pre-resilience code path.  No locks
        # anywhere — the event loop serializes every decision.
        self._resilience = (
            ResilienceCore(len(self._shard_services), resilience)
            if resilience is not None
            else None
        )
        self._injector = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        self._retry_handles: dict = {}
        self._open_calls = 0
        self.core = GatewayCore(
            num_shards=len(self._shard_services),
            policy=(
                policy
                if policy is not None
                else ConsistentHashRouting(len(self._shard_services))
            ),
            max_queue_depth=max_queue_depth,
            control=control,
        )
        # mirror SyncGatewayShell: one Telemetry bundle spans the fleet
        self.telemetry = telemetry
        for index, service in enumerate(self._shard_services):
            shard_core = getattr(service, "core", None)
            if shard_core is None:
                continue
            shard_core.shard_id = index
            if telemetry is not None:
                if shard_core.tracer is None:
                    shard_core.tracer = telemetry.tracer
                if shard_core.ledger is None:
                    shard_core.ledger = telemetry.ledger
        self._went_idle = asyncio.Event()
        self._went_idle.set()

    def _gateway_decision(
        self,
        event: str,
        cause: str,
        fingerprint: str,
        seq: Optional[int],
        shard_index: Optional[int],
        attributes: Optional[dict] = None,
    ) -> None:
        """Ledger one gateway-layer decision (no-op unledgered)."""
        if self.telemetry is None:
            return
        attrs = {"layer": "gateway"}
        if attributes:
            attrs.update(attributes)
        self.telemetry.ledger.record(
            event,
            cause=cause,
            fingerprint=fingerprint,
            request_id=seq if seq is not None else 0,
            shard=shard_index,
            attributes=attrs,
        )

    def _close_span(self, span, status: str) -> None:
        if span is not None and self.telemetry is not None:
            self.telemetry.tracer.end(span, status=status)

    # ------------------------------------------------------------------
    # public API (mirrors ServiceGateway, awaitably)
    # ------------------------------------------------------------------
    @property
    def policy(self) -> RoutingPolicy:
        return self.core.policy

    @property
    def max_queue_depth(self) -> int:
        return self.core.max_queue_depth

    @property
    def num_shards(self) -> int:
        return len(self._shard_services)

    @property
    def shards(self) -> tuple[AsyncEstimationService, ...]:
        """The underlying services, for tests and warm-up hooks."""
        return self._shard_services

    def fingerprint(
        self, workload: WorkloadConfig, device: DeviceSpec
    ) -> str:
        """The routing/cache key — identical on every (replica) shard."""
        return self._shard_services[0].fingerprint(workload, device)

    def shard_for(self, workload: WorkloadConfig, device: DeviceSpec) -> int:
        """The primary shard the current policy would pick right now."""
        return self.core.route(self.fingerprint(workload, device))[0]

    def submit(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace] = None,
        deadline: Optional[float] = None,
        metadata: Optional[dict] = None,
        tenant: str = "",
        priority: int = DEFAULT_PRIORITY,
    ) -> "asyncio.Future":
        """Route one request to its shard; returns the shard's future.

        Raises :class:`ServiceClosedError` after ``drain()``/``aclose()``,
        :class:`RateLimitExceededError` when the target shard's queue is
        full (shed — nothing was enqueued), and passes through the shard
        middleware's own synchronous rejections.  ``deadline`` and
        ``metadata`` are forwarded to the shard service untouched (the
        TCP transport uses them to carry rebased client deadlines and
        caller annotations); a telemetry span context is merged into
        ``metadata`` rather than replacing it.  With a
        :class:`~repro.service.control.ControlPlane` configured on the
        core, ``tenant``/``priority``/``deadline`` are additionally
        subject to quota, fair-share, and hopeless-deadline admission
        before any queue slot is reserved.

        With a :class:`~repro.service.resilience.ResiliencePolicy` or
        :class:`~repro.service.faults.FaultPlan` configured, the future
        returned is gateway-owned: attempts (retries, hedges) come and
        go underneath it and it settles exactly once.
        """
        if self._resilience is not None or self._injector is not None:
            return self._submit_resilient(
                workload,
                device,
                trace,
                deadline,
                metadata,
                tenant=tenant,
                priority=priority,
            )
        self.core.count_request()
        seq = self.core.requests
        fingerprint = self.fingerprint(workload, device)
        primary, replicas = self.core.route(fingerprint)
        span = None
        metadata = dict(metadata) if metadata else None
        if self.telemetry is not None:
            span = self.telemetry.tracer.start_trace(
                f"g{seq:06d}-{fingerprint[:12]}",
                name=GATEWAY_SPAN,
                attributes={
                    "policy": self.core.policy.name,
                    "shard": primary,
                    "fingerprint": fingerprint,
                },
            )
            metadata = {
                **(metadata or {}),
                "telemetry": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                },
            }
        future = self._dispatch(
            primary,
            workload,
            device,
            trace,
            fingerprint,
            deadline=deadline,
            metadata=metadata,
            span=span,
            seq=seq,
            tenant=tenant,
            priority=priority,
        )
        for shard_index in replicas:
            self._replicate(
                shard_index, workload, device, trace, fingerprint, seq=seq
            )
        return future

    async def estimate(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace] = None,
    ):
        """Awaitable request — the drop-in for ``service.estimate()``."""
        return await self.submit(workload, device, trace=trace)

    def pending(self) -> int:
        """Requests admitted by the gateway and not yet settled."""
        return self.core.pending()

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting requests and wait for in-flight ones to settle.

        Returns True when the fleet went idle within ``timeout`` (None =
        wait forever).  Idempotent; ``submit`` raises afterwards.

        Under the resilience plane, requests parked in retry backoff
        (e.g. against a blacked-out shard whose circuit is open) hold no
        shard slot — they are settled immediately as shed with a typed
        :class:`~repro.errors.CircuitOpenError` rather than waited for.
        """
        self.core.draining = True
        for state, handle in list(self._retry_handles.items()):
            handle.cancel()
            self._retry_handles.pop(state, None)
            self._shed_parked_retry(state)
        if self._gateway_idle():
            self._sync_resilience()
            return True
        try:
            await asyncio.wait_for(self._went_idle.wait(), timeout)
        except asyncio.TimeoutError:
            return False
        self._sync_resilience()
        return True

    async def aclose(self, wait: bool = True) -> None:
        """Drain (when ``wait``) and shut every shard down.

        ``wait=False`` propagates to every shard so a hung estimator
        cannot block shutdown — matching the thread gateway's
        ``close(wait=False)`` semantics.
        """
        if wait:
            await self.drain()
        self.core.draining = True
        self.core.closed = True
        for service in self._shard_services:
            await service.aclose(wait=wait)

    async def __aenter__(self) -> "AsyncServiceGateway":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    def stats(self) -> dict:
        """Gateway counters + per-shard snapshots + fleet aggregate."""
        shard_stats = [service.stats() for service in self._shard_services]
        samples: list[float] = []
        for service in self._shard_services:
            samples.extend(service.metrics.latency_samples())
        gateway = self.core.snapshot()
        if self._resilience is not None:
            gateway["resilience"] = self._resilience.snapshot()
        if self._injector is not None:
            gateway["faults"] = self._injector.snapshot()
        return {
            "gateway": gateway,
            "aggregate": aggregate_shard_stats(shard_stats, samples),
            "shards": shard_stats,
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _dispatch(
        self,
        shard_index: int,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace],
        fingerprint: str,
        deadline: Optional[float] = None,
        metadata: Optional[dict] = None,
        span=None,
        seq: Optional[int] = None,
        tenant: str = "",
        priority: int = DEFAULT_PRIORITY,
    ) -> "asyncio.Future":
        service = self._shard_services[shard_index]
        deadline_remaining = (
            None if deadline is None else deadline - time.perf_counter()
        )
        try:
            self.core.admit(
                shard_index,
                tenant=tenant,
                priority=priority,
                deadline_remaining=deadline_remaining,
            )
        except QuotaExceededError as error:
            self._gateway_decision(
                ledger_events.QUOTA,
                f"{error.scope}:{error.tenant}",
                fingerprint,
                seq,
                shard_index,
            )
            self._close_span(span, "shed")
            raise
        except DeadlineExceededError:
            self._gateway_decision(
                ledger_events.DEADLINE,
                "hopeless_at_gateway",
                fingerprint,
                seq,
                shard_index,
            )
            self._close_span(span, "rejected")
            raise
        except RequestRejectedError as error:
            # the control plane's auth refusal (strict mode)
            self._gateway_decision(
                ledger_events.AUTH,
                type(error).__name__,
                fingerprint,
                seq,
                shard_index,
            )
            self._close_span(span, "rejected")
            raise
        except RateLimitExceededError:
            self._gateway_decision(
                ledger_events.SHED, "queue_full", fingerprint, seq, shard_index
            )
            self._close_span(span, "shed")
            raise
        self._gateway_decision(
            ledger_events.ADMIT, "route", fingerprint, seq, shard_index
        )
        self._went_idle.clear()
        try:
            future = service.submit(
                workload,
                device,
                trace=trace,
                fingerprint=fingerprint,
                deadline=deadline,
                metadata=metadata,
                tenant=tenant,
                priority=priority,
            )
        except RateLimitExceededError:
            self._settle(shard_index, throttled=True)
            self._close_span(span, "throttled")
            raise
        except RequestRejectedError:
            self._settle(shard_index, rejected=True)
            self._close_span(span, "rejected")
            raise
        except BaseException:
            self._settle(shard_index)
            self._close_span(span, "error")
            raise
        if future.done():
            # a cache hit or piggyback on an already-resolved future:
            # asyncio would only run the callback on the next loop tick,
            # and `await` on a done future never yields — settle inline
            # (matching concurrent.futures semantics) so hit-dominated
            # waves cannot pile up phantom pending and shed real traffic
            self._settle(shard_index)
            self._settle_span(future, span)
        else:
            future.add_done_callback(
                lambda f, index=shard_index: (
                    self._settle(index),
                    self._settle_span(f, span),
                )
            )
        return future

    def _settle_span(self, future: "asyncio.Future", span) -> None:
        if span is None:
            return
        failed = future.cancelled() or future.exception() is not None
        self._close_span(span, "error" if failed else "ok")

    def _replicate(
        self,
        shard_index: int,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace],
        fingerprint: str,
        seq: Optional[int] = None,
    ) -> None:
        """Best-effort warm-up duplicate: never surfaces to the caller."""
        service = self._shard_services[shard_index]
        if not self.core.admit_replica(shard_index):
            return  # warm-up never sheds real traffic
        self._gateway_decision(
            ledger_events.WARMUP, "replica", fingerprint, seq, shard_index
        )
        self._went_idle.clear()
        try:
            future = service.submit(
                workload, device, trace=trace, fingerprint=fingerprint
            )
        except BaseException:
            self._settle(shard_index)
            return
        if future.done():
            if not future.cancelled():
                future.exception()  # consume: warm-up failures are silent
            self._settle(shard_index)
        else:
            future.add_done_callback(
                lambda f, index=shard_index: (
                    None if f.cancelled() else f.exception(),
                    self._settle(index),
                )
            )

    def _settle(
        self, shard_index: int, rejected: bool = False, throttled: bool = False
    ) -> None:
        if self.core.settle(
            shard_index, rejected=rejected, throttled=throttled
        ):
            if self._open_calls == 0:
                # idle *and* every outer future settled: a wave boundary
                # — apply deferred breaker outcomes (see resilience.py)
                self._sync_resilience()
                self._went_idle.set()

    # ------------------------------------------------------------------
    # resilience plane (retries, breakers, hedging, fault injection)
    # ------------------------------------------------------------------
    def _gateway_idle(self) -> bool:
        return self.core.idle() and self._open_calls == 0

    def _sync_resilience(self) -> None:
        if self._resilience is None:
            return
        transitions = self._resilience.sync()
        if transitions and self.telemetry is not None:
            seq = self.core.requests
            for shard, transition in transitions:
                self._gateway_decision(
                    ledger_events.BREAKER, transition, "", seq, shard
                )

    def _submit_resilient(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace],
        deadline: Optional[float],
        metadata: Optional[dict],
        tenant: str = "",
        priority: int = DEFAULT_PRIORITY,
    ) -> "asyncio.Future":
        res = self._resilience
        self.core.count_request()
        seq = self.core.requests
        if res is not None:
            for shard, transition in res.tick():
                self._gateway_decision(
                    ledger_events.BREAKER, transition, "", seq, shard
                )
        fingerprint = self.fingerprint(workload, device)
        primary, replicas = self.core.route(fingerprint)
        if res is not None:
            target, rerouted = res.choose_shard(primary)
        else:
            target, rerouted = primary, False
        index = (
            self._injector.next_index() if self._injector is not None else None
        )
        if target is None:
            res.counters["shed_open_circuit"] += 1
            self.core.shed += 1
            self._gateway_decision(
                ledger_events.SHED, "circuit_open", fingerprint, seq, primary
            )
            raise CircuitOpenError("every candidate shard's breaker is open")
        if rerouted:
            self._gateway_decision(
                ledger_events.REROUTE, "circuit_open", fingerprint, seq, target
            )
        directive = None
        if self._injector is not None:
            directive = self._injector.directive_for(index, target)
            if directive is not None:
                self._gateway_decision(
                    ledger_events.FAULT,
                    directive["kind"],
                    fingerprint,
                    seq,
                    target,
                )
        state = _AsyncResilientCall(
            workload,
            device,
            trace,
            deadline,
            metadata,
            fingerprint,
            seq,
            index,
            tenant=tenant,
            priority=priority,
        )
        state.outer = asyncio.get_running_loop().create_future()
        self._open_calls += 1
        self._went_idle.clear()
        self._begin_attempt(state, target, directive, cause="route")
        self._maybe_schedule_hedge(state, target)
        for shard_index in replicas:
            self._replicate(
                shard_index, workload, device, trace, fingerprint, seq=seq
            )
        return state.outer

    def _begin_attempt(
        self,
        state: "_AsyncResilientCall",
        shard_index: int,
        directive: Optional[dict],
        cause: str,
        is_hedge: bool = False,
    ) -> None:
        if state.settled:
            return
        state.inflight += 1
        if directive is not None and directive.get("kind") == "shard_blackout":
            # a blacked-out shard is *unreachable*: fail at the gateway
            # without touching the shard (its cache included)
            self._finish_attempt(
                state,
                shard_index,
                is_hedge,
                None,
                ShardBlackoutError(shard_index),
                slot_held=False,
            )
            return
        service = self._shard_services[shard_index]
        deadline_remaining = (
            None
            if state.deadline is None
            else state.deadline - time.perf_counter()
        )
        try:
            self.core.admit(
                shard_index,
                tenant=state.tenant,
                priority=state.priority,
                deadline_remaining=deadline_remaining,
            )
        except QuotaExceededError as error:
            self._gateway_decision(
                ledger_events.QUOTA,
                f"{error.scope}:{error.tenant}",
                state.fingerprint,
                state.seq,
                shard_index,
            )
            self._finish_attempt(
                state, shard_index, is_hedge, None, error, slot_held=False
            )
            return
        except DeadlineExceededError as error:
            self._gateway_decision(
                ledger_events.DEADLINE,
                "hopeless_at_gateway",
                state.fingerprint,
                state.seq,
                shard_index,
            )
            self._finish_attempt(
                state, shard_index, is_hedge, None, error, slot_held=False
            )
            return
        except RequestRejectedError as error:
            # the control plane's auth refusal (strict mode)
            self._gateway_decision(
                ledger_events.AUTH,
                type(error).__name__,
                state.fingerprint,
                state.seq,
                shard_index,
            )
            self._finish_attempt(
                state, shard_index, is_hedge, None, error, slot_held=False
            )
            return
        except (RateLimitExceededError, ServiceClosedError) as error:
            shed_cause = (
                "queue_full"
                if isinstance(error, RateLimitExceededError)
                else "closed"
            )
            self._gateway_decision(
                ledger_events.SHED,
                shed_cause,
                state.fingerprint,
                state.seq,
                shard_index,
            )
            self._finish_attempt(
                state, shard_index, is_hedge, None, error, slot_held=False
            )
            return
        self._gateway_decision(
            ledger_events.ADMIT,
            cause,
            state.fingerprint,
            state.seq,
            shard_index,
            attributes=(
                {"attempt": state.attempt} if state.attempt > 1 else None
            ),
        )
        metadata = {**(state.metadata or {}), "attempt": state.attempt}
        if directive is not None:
            metadata["fault"] = directive
        try:
            future = service.submit(
                state.workload,
                state.device,
                trace=state.trace,
                fingerprint=state.fingerprint,
                deadline=state.deadline,
                metadata=metadata,
                tenant=state.tenant,
                priority=state.priority,
            )
        except RateLimitExceededError as error:
            self._finish_attempt(
                state,
                shard_index,
                is_hedge,
                None,
                error,
                slot_held=True,
                throttled=True,
            )
            return
        except RequestRejectedError as error:
            self._finish_attempt(
                state,
                shard_index,
                is_hedge,
                None,
                error,
                slot_held=True,
                rejected=True,
            )
            return
        except BaseException as error:
            self._finish_attempt(
                state, shard_index, is_hedge, None, error, slot_held=True
            )
            return
        if future.done():
            self._resilient_dispatched(state, shard_index, is_hedge, future)
        else:
            future.add_done_callback(
                lambda f, index=shard_index, hedge=is_hedge: (
                    self._resilient_dispatched(state, index, hedge, f)
                )
            )

    def _resilient_dispatched(
        self,
        state: "_AsyncResilientCall",
        shard_index: int,
        is_hedge: bool,
        future: "asyncio.Future",
    ) -> None:
        if future.cancelled():
            result, error = None, asyncio.CancelledError()
        else:
            error = future.exception()
            result = future.result() if error is None else None
        self._finish_attempt(
            state, shard_index, is_hedge, result, error, slot_held=True
        )

    def _finish_attempt(
        self,
        state: "_AsyncResilientCall",
        shard_index: int,
        is_hedge: bool,
        result,
        error: Optional[BaseException],
        slot_held: bool,
        rejected: bool = False,
        throttled: bool = False,
    ) -> None:
        res = self._resilience
        # breaker accounting before the slot settles: every outcome of a
        # wave is buffered by the time the idle-edge sync runs
        if res is not None and (error is None or is_transient(error)):
            res.record_outcome(shard_index, state.seq, error is None)
        if slot_held:
            self._settle(shard_index, rejected=rejected, throttled=throttled)
        self._attempt_outcome(state, shard_index, is_hedge, result, error)

    def _attempt_outcome(
        self,
        state: "_AsyncResilientCall",
        shard_index: int,
        is_hedge: bool,
        result,
        error: Optional[BaseException],
    ) -> None:
        res = self._resilience
        state.inflight -= 1
        if state.settled:
            if state.hedged:
                if res is not None:
                    res.counters["hedge_losers"] += 1
                self._gateway_decision(
                    ledger_events.HEDGE,
                    "loser",
                    state.fingerprint,
                    state.seq,
                    shard_index,
                )
            return
        if error is None:
            state.settled = True
            self._cancel_timers(state)
            if is_hedge:
                res.counters["hedge_wins"] += 1
                self._gateway_decision(
                    ledger_events.HEDGE,
                    "won",
                    state.fingerprint,
                    state.seq,
                    shard_index,
                )
            self._settle_outer(state, result=result)
            return
        retry_target = None
        if res is not None and not is_hedge and not self.core.draining:
            if res.should_retry(error, state.attempt):
                candidate = res.retry_target(shard_index, state.attempt + 1)
                if candidate is not None:
                    res.spend_retry()
                    retry_target = candidate
        if retry_target is not None:
            state.attempt += 1
            delay = res.policy.retry.delay(state.fingerprint, state.attempt)
            self._gateway_decision(
                ledger_events.RETRY,
                type(error).__name__,
                state.fingerprint,
                state.seq,
                retry_target,
                attributes={
                    "attempt": state.attempt,
                    "delay": round(delay, 6),
                },
            )
            next_directive = None
            if self._injector is not None:
                # a retry routed back into a blackout window still fails
                next_directive = self._injector.peek_window(
                    state.index, retry_target
                )
            handle = asyncio.get_running_loop().call_later(
                delay, self._fire_retry, state, retry_target, next_directive
            )
            state.retry_handle = handle
            self._retry_handles[state] = handle
            return
        if state.inflight > 0:
            return  # a hedge twin is still running; let it decide
        state.settled = True
        self._cancel_timers(state)
        self._settle_outer(state, error=error)

    def _fire_retry(
        self,
        state: "_AsyncResilientCall",
        target: int,
        directive: Optional[dict],
    ) -> None:
        self._retry_handles.pop(state, None)
        state.retry_handle = None
        if self.core.draining:
            self._shed_parked_retry(state)
            return
        self._begin_attempt(state, target, directive, cause="retry")

    def _shed_parked_retry(self, state: "_AsyncResilientCall") -> None:
        """Settle a request parked in retry backoff as shed (drain path)."""
        if state.settled:
            return
        state.settled = True
        self.core.shed += 1
        if self._resilience is not None:
            self._resilience.counters["shed_on_drain"] += 1
        self._gateway_decision(
            ledger_events.SHED,
            "drained_during_backoff",
            state.fingerprint,
            state.seq,
            None,
        )
        self._settle_outer(
            state,
            error=CircuitOpenError("gateway drained during retry backoff"),
        )

    def _maybe_schedule_hedge(
        self, state: "_AsyncResilientCall", primary: int
    ) -> None:
        res = self._resilience
        if res is None or res.policy.hedge is None:
            return
        samples: list[float] = []
        for service in self._shard_services:
            samples.extend(service.metrics.latency_samples())
        threshold = res.policy.hedge.threshold(samples)
        state.hedge_handle = asyncio.get_running_loop().call_later(
            threshold, self._fire_hedge, state, primary
        )

    def _fire_hedge(self, state: "_AsyncResilientCall", primary: int) -> None:
        res = self._resilience
        state.hedge_handle = None
        if (
            state.settled
            or state.inflight == 0
            or state.hedged
            or self.core.draining
        ):
            return
        target = res.hedge_target(primary)
        if target is None:
            return
        state.hedged = True
        res.counters["hedges"] += 1
        self._gateway_decision(
            ledger_events.HEDGE,
            "latency_threshold",
            state.fingerprint,
            state.seq,
            target,
        )
        directive = None
        if self._injector is not None:
            directive = self._injector.peek_window(state.index, target)
        self._begin_attempt(
            state, target, directive, cause="hedge", is_hedge=True
        )

    def _cancel_timers(self, state: "_AsyncResilientCall") -> None:
        handle = self._retry_handles.pop(state, None)
        if handle is not None:
            handle.cancel()
        state.retry_handle = None
        if state.hedge_handle is not None:
            state.hedge_handle.cancel()
            state.hedge_handle = None

    def _settle_outer(
        self,
        state: "_AsyncResilientCall",
        result=None,
        error: Optional[BaseException] = None,
    ) -> None:
        # bookkeeping first so the wave-boundary sync runs before any
        # awaiter of the outer future can submit the next wave
        self._open_calls -= 1
        if self._open_calls == 0 and self.core.idle():
            self._sync_resilience()
            self._went_idle.set()
        if not state.outer.done():
            if error is not None:
                state.outer.set_exception(error)
            else:
                state.outer.set_result(result)


# ----------------------------------------------------------------------
# awaitable bulk + replay APIs
# ----------------------------------------------------------------------


async def estimate_many_async(
    service: AsyncEstimationService,
    requests: Sequence[tuple[WorkloadConfig, DeviceSpec]],
    share_profiles: bool = True,
    return_exceptions: bool = False,
) -> list:
    """Estimate every (workload, device) pair; results in request order.

    The awaitable mirror of :func:`repro.service.batch.estimate_many`:
    with ``share_profiles`` (and a trace-capable estimator), workloads
    repeated across devices are profiled once up front — the planning
    itself is CPU-bound, so it runs on the service's executor while the
    loop stays responsive.  With ``return_exceptions``, failures come
    back in-place instead of raising on the first bad request.
    """
    traces: dict[tuple, Trace] = {}
    if share_profiles and getattr(service, "accepts_trace", False):
        loop = asyncio.get_running_loop()
        traces = await loop.run_in_executor(
            service._executor, plan_shared_traces, service, requests
        )
    futures: list = []
    for workload, device in requests:
        try:
            futures.append(
                service.submit(
                    workload, device, trace=traces.get(workload.to_key())
                )
            )
        except Exception as error:
            if not return_exceptions:
                raise
            futures.append(error)
    results: list = []
    for item in futures:
        if isinstance(item, Exception):
            results.append(item)
            continue
        try:
            results.append(await item)
        except Exception as error:
            if not return_exceptions:
                raise
            results.append(error)
    return results


async def replay_async(trace: TrafficTrace, target) -> ReplayReport:
    """Replay a traffic trace against an async service or gateway.

    The awaitable mirror of :func:`repro.service.traffic.replay`: each
    wave is submitted back-to-back on the loop and awaited before the
    next begins — bursts stress single-flight and queues, wave boundaries
    let caches matter.  Sheds and validation rejections are counted, not
    raised, with accounting identical to the sync replayer so driver
    comparisons are apples-to-apples.

    Sheds are counted wherever they surface: in-process drivers raise
    :class:`RateLimitExceededError` synchronously from ``submit``, while
    a network client only learns of a shed from the response frame — its
    future fails with the same exception instead.  ``target.stats()`` may
    likewise be a coroutine on network clients (one more round trip).
    """
    report = ReplayReport(scenario=trace.scenario, num_requests=len(trace))
    started = time.perf_counter()
    for wave in trace.waves():
        futures = []
        for request in wave:
            bucket = (
                report.tenant_bucket(request.tenant)
                if request.tenant
                else None
            )
            if bucket is not None:
                bucket["submitted"] += 1
            # kwargs only off their defaults: untenanted traces call
            # submit() exactly as pre-control-plane replays did
            kwargs = {}
            if request.tenant:
                kwargs["tenant"] = request.tenant
            if request.priority != 1:
                kwargs["priority"] = request.priority
            submitted_at = time.perf_counter()
            try:
                futures.append(
                    (
                        request,
                        submitted_at,
                        target.submit(
                            request.workload, request.device, **kwargs
                        ),
                    )
                )
            except QuotaExceededError:
                report.shed += 1
                report.quota_shed += 1
                if bucket is not None:
                    bucket["shed"] += 1
                    bucket["quota_shed"] += 1
            except RateLimitExceededError:
                report.shed += 1
                if bucket is not None:
                    bucket["shed"] += 1
            except RequestRejectedError:
                report.rejected += 1
                if bucket is not None:
                    bucket["rejected"] += 1
        for request, submitted_at, future in futures:
            bucket = (
                report.tenant_bucket(request.tenant)
                if request.tenant
                else None
            )
            try:
                await future
                report.answered += 1
                if bucket is not None:
                    bucket["answered"] += 1
                    report.note_latency(
                        request.tenant,
                        time.perf_counter() - submitted_at,
                    )
            except QuotaExceededError:
                report.shed += 1
                report.quota_shed += 1
                if bucket is not None:
                    bucket["shed"] += 1
                    bucket["quota_shed"] += 1
            except RateLimitExceededError:
                report.shed += 1
                if bucket is not None:
                    bucket["shed"] += 1
            except RequestRejectedError:
                report.rejected += 1
                if bucket is not None:
                    bucket["rejected"] += 1
            except Exception:
                report.errors += 1
                if bucket is not None:
                    bucket["errors"] += 1
    report.elapsed_seconds = time.perf_counter() - started
    stats = target.stats()
    if asyncio.iscoroutine(stats):
        stats = await stats
    report.stats = stats
    return report
