"""The thread-driven sharded gateway over replicated estimation services.

One :class:`~repro.service.engine.EstimationService` is a single worker
pool behind a single cache; cluster-rate traffic needs N of them.  The
:class:`ServiceGateway` fans requests across replicated service *shards*
and owns the three policies a serving tier needs:

* **Routing** (:class:`~repro.service.routing.RoutingPolicy`) — which
  shard answers a request.  The default
  :class:`~repro.service.routing.ConsistentHashRouting` keys on the
  request fingerprint, so every repeat of a workload lands on the same
  shard and per-shard caches stay hot (the whole point of sharding a
  cache).
* **Backpressure** — each shard accepts at most ``max_queue_depth``
  queued-or-running requests; beyond that the gateway *sheds*, raising
  :class:`~repro.errors.RateLimitExceededError` so callers can retry
  with the usual hint.  Validation/rate-limit rejections from the shard's
  own middleware chain pass through unchanged.
* **Lifecycle** — ``drain()`` stops intake and waits for in-flight work;
  ``close()`` drains then shuts every shard down.

All three are decided by the sans-IO :class:`~repro.service.core.GatewayCore`
state machine; this module adds only the thread substrate — a lock
serializing the core's mutations, a condition variable ``drain()`` blocks
on, and ``concurrent.futures`` plumbing.  The asyncio driver
(:class:`~repro.service.aio.AsyncServiceGateway`) drives the identical
core from an event loop.

``stats()`` aggregates every shard's metrics into one fleet-level
snapshot (summed counters, recomputed hit rate, percentiles over the
union of latency samples) next to the per-shard breakdown, so dashboards
see both the fleet and its skew.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Callable, Optional, Sequence

from ..errors import (
    RateLimitExceededError,
    RequestRejectedError,
)
from ..trace.reader import Trace
from ..workload import DeviceSpec, WorkloadConfig
from .core import GatewayCore, aggregate_shard_stats
from .engine import EstimationService
from .telemetry import ledger as ledger_events
from .telemetry.spans import GATEWAY_SPAN
from .routing import (
    DEFAULT_VNODES,
    POLICY_NAMES,
    BroadcastWarmupRouting,
    ConsistentHashRouting,
    LeastLoadedRouting,
    RandomRouting,
    RoutingPolicy,
    make_policy,
)

__all__ = [
    "BroadcastWarmupRouting",
    "ConsistentHashRouting",
    "DEFAULT_MAX_QUEUE_DEPTH",
    "DEFAULT_NUM_SHARDS",
    "DEFAULT_VNODES",
    "LeastLoadedRouting",
    "POLICY_NAMES",
    "RandomRouting",
    "RoutingPolicy",
    "ServiceGateway",
    "SyncGatewayShell",
    "aggregate_shard_stats",
    "make_policy",
]

DEFAULT_NUM_SHARDS = 4
DEFAULT_MAX_QUEUE_DEPTH = 64


class SyncGatewayShell:
    """The thread-substrate gateway shell, shared by the sync drivers.

    Everything a lock-and-condition-variable gateway does — routing
    under the lock, admit/shed/settle against :class:`GatewayCore`,
    best-effort warm-up replicas, ``drain()`` blocking on the idle
    condition, fleet ``stats()`` aggregation — is identical whether the
    shards run estimation on worker threads
    (:class:`ServiceGateway`) or in a process pool
    (:class:`~repro.service.procpool.ProcServiceGateway`); only shard
    construction and substrate teardown differ.  Subclasses call
    :meth:`_init_shell` from their constructor and override
    :meth:`_shutdown_substrate` / :meth:`_snapshot_extra` as needed.
    (The asyncio gateway shares none of this: its serialization is the
    event loop, not a lock.)
    """

    def _init_shell(
        self,
        shards: Sequence,
        policy: Optional[RoutingPolicy],
        max_queue_depth: int,
        telemetry=None,
    ) -> None:
        self._shard_services = tuple(shards)
        self.core = GatewayCore(
            num_shards=len(self._shard_services),
            policy=(
                policy
                if policy is not None
                else ConsistentHashRouting(len(self._shard_services))
            ),
            max_queue_depth=max_queue_depth,
        )
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        # one Telemetry bundle spans the whole fleet: every shard core is
        # stamped with its position and pointed at the shared tracer +
        # ledger (unless the shard was pre-built with its own), so one
        # request yields one trace across gateway and shard layers and
        # the ledger records provenance per shard
        self.telemetry = telemetry
        for index, service in enumerate(self._shard_services):
            shard_core = getattr(service, "core", None)
            if shard_core is None:
                continue
            shard_core.shard_id = index
            if telemetry is not None:
                if shard_core.tracer is None:
                    shard_core.tracer = telemetry.tracer
                if shard_core.ledger is None:
                    shard_core.ledger = telemetry.ledger

    def _gateway_decision(
        self,
        event: str,
        cause: str,
        fingerprint: str,
        seq: Optional[int],
        shard_index: int,
    ) -> None:
        """Ledger one gateway-layer decision (no-op unledgered)."""
        if self.telemetry is None:
            return
        self.telemetry.ledger.record(
            event,
            cause=cause,
            fingerprint=fingerprint,
            request_id=seq if seq is not None else 0,
            shard=shard_index,
            attributes={"layer": "gateway"},
        )

    # -- substrate hooks ----------------------------------------------
    def _shutdown_substrate(self, wait: bool) -> None:
        """Tear down any substrate the subclass owns beyond the shards."""
        return None

    def _snapshot_extra(self) -> dict:
        """Substrate-specific keys merged into the gateway snapshot."""
        return {}

    # ------------------------------------------------------------------
    # public API (mirrors EstimationService)
    # ------------------------------------------------------------------
    @property
    def policy(self) -> RoutingPolicy:
        return self.core.policy

    @property
    def max_queue_depth(self) -> int:
        return self.core.max_queue_depth

    @property
    def num_shards(self) -> int:
        return len(self._shard_services)

    @property
    def shards(self) -> tuple:
        """The underlying services, for tests and warm-up hooks."""
        return self._shard_services

    def fingerprint(
        self, workload: WorkloadConfig, device: DeviceSpec
    ) -> str:
        """The routing/cache key — identical on every (replica) shard."""
        return self._shard_services[0].fingerprint(workload, device)

    def shard_for(self, workload: WorkloadConfig, device: DeviceSpec) -> int:
        """The primary shard the current policy would pick right now."""
        fingerprint = self.fingerprint(workload, device)
        with self._lock:
            return self.core.route(fingerprint)[0]

    def submit(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace] = None,
    ) -> Future:
        """Route one request to its shard; returns the shard's future.

        Raises :class:`ServiceClosedError` after ``drain()``/``close()``,
        :class:`RateLimitExceededError` when the target shard's queue is
        full (shed — nothing was enqueued), and passes through the shard
        middleware's own synchronous rejections.
        """
        fingerprint = self.fingerprint(workload, device)
        with self._lock:
            self.core.count_request()
            seq = self.core.requests
            # stateful policies (the seeded RNG) rely on the driver for
            # serialization, so routing happens inside the lock too
            primary, replicas = self.core.route(fingerprint)
        span = None
        metadata = None
        if self.telemetry is not None:
            span = self.telemetry.tracer.start_trace(
                f"g{seq:06d}-{fingerprint[:12]}",
                name=GATEWAY_SPAN,
                attributes={
                    "policy": self.core.policy.name,
                    "shard": primary,
                    "fingerprint": fingerprint,
                },
            )
            # the shard-level request span re-parents under this one via
            # the span context riding the metadata bag
            metadata = {
                "telemetry": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                }
            }
        future = self._dispatch(
            primary,
            workload,
            device,
            trace,
            fingerprint,
            metadata=metadata,
            span=span,
            seq=seq,
        )
        for shard_index in replicas:
            self._replicate(
                shard_index, workload, device, trace, fingerprint, seq=seq
            )
        return future

    def estimate(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace] = None,
    ):
        """Blocking request — the drop-in for ``service.estimate()``."""
        return self.submit(workload, device, trace=trace).result()

    def pending(self) -> int:
        """Requests admitted by the gateway and not yet resolved."""
        with self._lock:
            return self.core.pending()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting requests and wait for in-flight ones to finish.

        Returns True when the fleet went idle within ``timeout`` (None =
        wait forever).  Idempotent; ``submit`` raises afterwards.
        """
        with self._idle:
            self.core.draining = True
            return self._idle.wait_for(self.core.idle, timeout=timeout)

    def close(self, wait: bool = True) -> None:
        """Drain (when ``wait``), shut every shard down, then release
        whatever substrate the subclass owns."""
        if wait:
            self.drain()
        with self._lock:
            self.core.draining = True
            self.core.closed = True
        for service in self._shard_services:
            service.close(wait=wait)
        self._shutdown_substrate(wait)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        """Gateway counters + per-shard snapshots + fleet aggregate."""
        shard_stats = [service.stats() for service in self._shard_services]
        samples: list[float] = []
        for service in self._shard_services:
            samples.extend(service.metrics.latency_samples())
        with self._lock:
            gateway = self.core.snapshot()
        gateway.update(self._snapshot_extra())
        return {
            "gateway": gateway,
            "aggregate": aggregate_shard_stats(shard_stats, samples),
            "shards": shard_stats,
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _dispatch(
        self,
        shard_index: int,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace],
        fingerprint: str,
        metadata: Optional[dict] = None,
        span=None,
        seq: Optional[int] = None,
    ) -> Future:
        service = self._shard_services[shard_index]
        try:
            with self._lock:
                # admit re-checks the gate while reserving the slot: a
                # drain()/close() racing between submit()'s gate and here
                # must either see our pending slot or turn us away — never
                # report idle and then let this request hit a closed shard
                self.core.admit(shard_index)
        except RateLimitExceededError:
            self._gateway_decision(
                ledger_events.SHED, "queue_full", fingerprint, seq, shard_index
            )
            self._close_span(span, "shed")
            raise
        self._gateway_decision(
            ledger_events.ADMIT, "route", fingerprint, seq, shard_index
        )
        try:
            future = service.submit(
                workload,
                device,
                trace=trace,
                fingerprint=fingerprint,
                metadata=metadata,
            )
        except RateLimitExceededError:
            self._settle(shard_index, throttled=True)
            self._close_span(span, "throttled")
            raise
        except RequestRejectedError:
            self._settle(shard_index, rejected=True)
            self._close_span(span, "rejected")
            raise
        except BaseException:
            self._settle(shard_index)
            self._close_span(span, "error")
            raise
        future.add_done_callback(
            lambda f, index=shard_index: self._settle_dispatched(
                f, index, span
            )
        )
        return future

    def _settle_dispatched(self, future: Future, shard_index: int, span) -> None:
        self._settle(shard_index)
        if span is not None:
            failed = future.cancelled() or future.exception() is not None
            self._close_span(span, "error" if failed else "ok")

    def _close_span(self, span, status: str) -> None:
        if span is not None and self.telemetry is not None:
            self.telemetry.tracer.end(span, status=status)

    def _replicate(
        self,
        shard_index: int,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace],
        fingerprint: str,
        seq: Optional[int] = None,
    ) -> None:
        """Best-effort warm-up duplicate: never surfaces to the caller."""
        service = self._shard_services[shard_index]
        with self._lock:
            if not self.core.admit_replica(shard_index):
                return  # warm-up never sheds real traffic
        self._gateway_decision(
            ledger_events.WARMUP, "replica", fingerprint, seq, shard_index
        )
        try:
            future = service.submit(
                workload, device, trace=trace, fingerprint=fingerprint
            )
        except BaseException:
            self._settle(shard_index)
            return
        future.add_done_callback(
            lambda f, index=shard_index: (f.exception(), self._settle(index))
        )

    def _settle(
        self, shard_index: int, rejected: bool = False, throttled: bool = False
    ) -> None:
        with self._idle:
            if self.core.settle(
                shard_index, rejected=rejected, throttled=throttled
            ):
                self._idle.notify_all()


class ServiceGateway(SyncGatewayShell):
    """Routes estimation requests across N thread-driven service shards.

    Construct either from explicit ``shards`` (pre-built services, e.g.
    with custom middleware stacks) or from ``num_shards`` plus an
    ``estimator_factory`` — each shard then gets its *own* estimator
    instance and its own cache, which is what process-per-shard
    deployments will look like.

    The gateway mirrors the single-service surface (``submit`` /
    ``estimate`` / ``stats`` / context manager), so anything written
    against :class:`EstimationService` — the admission controller, the
    batch helpers' caller side — can point at a gateway unchanged.
    """

    def __init__(
        self,
        shards: Optional[Sequence[EstimationService]] = None,
        num_shards: int = DEFAULT_NUM_SHARDS,
        estimator_factory: Optional[Callable[[], object]] = None,
        policy: Optional[RoutingPolicy] = None,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
        max_workers_per_shard: int = 2,
        telemetry=None,
    ):
        if shards is None:
            if num_shards < 1:
                raise ValueError("gateway needs at least one shard")
            shards = [
                EstimationService(
                    estimator=(
                        estimator_factory() if estimator_factory else None
                    ),
                    max_workers=max_workers_per_shard,
                )
                for _ in range(num_shards)
            ]
        elif not shards:
            raise ValueError("gateway needs at least one shard")
        self._init_shell(shards, policy, max_queue_depth, telemetry=telemetry)
