"""A sharded gateway over replicated estimation services.

One :class:`~repro.service.engine.EstimationService` is a single worker
pool behind a single cache; cluster-rate traffic needs N of them.  The
:class:`ServiceGateway` fans requests across replicated service *shards*
and owns the three policies a serving tier needs:

* **Routing** (:class:`RoutingPolicy`) — which shard answers a request.
  The default :class:`ConsistentHashRouting` keys on the request
  fingerprint, so every repeat of a workload lands on the same shard and
  per-shard caches stay hot (the whole point of sharding a cache).
  :class:`LeastLoadedRouting` trades locality for balance,
  :class:`RandomRouting` is the locality-free baseline, and
  :class:`BroadcastWarmupRouting` replicates each primary answer to every
  other shard to pre-warm a fresh fleet.
* **Backpressure** — each shard accepts at most ``max_queue_depth``
  queued-or-running requests; beyond that the gateway *sheds*, raising
  :class:`~repro.errors.RateLimitExceededError` so callers can retry
  with the usual hint.  Validation/rate-limit rejections from the shard's
  own middleware chain pass through unchanged.
* **Lifecycle** — ``drain()`` stops intake and waits for in-flight work;
  ``close()`` drains then shuts every shard down.

``stats()`` aggregates every shard's metrics into one fleet-level
snapshot (summed counters, recomputed hit rate, percentiles over the
union of latency samples) next to the per-shard breakdown, so dashboards
see both the fleet and its skew.
"""

from __future__ import annotations

import bisect
import hashlib
import random
import threading
from concurrent.futures import Future
from typing import Callable, Optional, Sequence

from ..errors import (
    RateLimitExceededError,
    RequestRejectedError,
    ServiceClosedError,
)
from ..trace.reader import Trace
from ..workload import DeviceSpec, WorkloadConfig
from .engine import EstimationService
from .metrics import percentile

DEFAULT_NUM_SHARDS = 4
DEFAULT_MAX_QUEUE_DEPTH = 64

#: virtual nodes per shard on the consistent-hash ring (smooths the
#: key-space split so a 4-shard ring is within a few percent of 25/25/25/25)
DEFAULT_VNODES = 64


def _ring_hash(token: str) -> int:
    """Stable 64-bit position on the hash ring (process-independent)."""
    return int.from_bytes(
        hashlib.sha256(token.encode("utf-8")).digest()[:8], "big"
    )


class RoutingPolicy:
    """Picks the shard(s) that serve one fingerprint.

    ``select`` returns a non-empty tuple of shard indices: the first is
    the *primary* (its future is the caller's answer); any others receive
    best-effort warm-up replicas whose results and failures are ignored.
    ``loads`` is the current queued-or-running count per shard.
    """

    name = "policy"

    def select(
        self, fingerprint: str, loads: Sequence[int]
    ) -> tuple[int, ...]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class ConsistentHashRouting(RoutingPolicy):
    """Fingerprint-keyed consistent hashing: repeats share a shard.

    Classic ring construction — each shard owns ``vnodes`` pseudo-random
    arcs; a fingerprint routes to the first vnode clockwise from its own
    hash.  Cache locality is structural: identical fingerprints always
    map to the same shard, and resizing the fleet remaps only ~1/N of the
    key space (the arcs the new shard takes over).
    """

    name = "hash"

    def __init__(self, num_shards: int, vnodes: int = DEFAULT_VNODES):
        if num_shards < 1 or vnodes < 1:
            raise ValueError("need at least one shard and one vnode")
        positions = [
            (_ring_hash(f"shard-{shard}/vnode-{vnode}"), shard)
            for shard in range(num_shards)
            for vnode in range(vnodes)
        ]
        positions.sort()
        self._ring = [position for position, _ in positions]
        self._owner = [shard for _, shard in positions]

    def shard_for(self, fingerprint: str) -> int:
        index = bisect.bisect(self._ring, _ring_hash(fingerprint))
        return self._owner[index % len(self._owner)]

    def select(self, fingerprint, loads):
        return (self.shard_for(fingerprint),)


class RandomRouting(RoutingPolicy):
    """Seeded uniform routing — the no-locality baseline.

    A hot fingerprint is smeared across every shard, so each shard pays
    its own cold miss for the same key; benchmarks use this as the
    control :class:`ConsistentHashRouting` must beat on hit rate.
    """

    name = "random"

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def select(self, fingerprint, loads):
        with self._lock:
            return (self._rng.randrange(len(loads)),)


class LeastLoadedRouting(RoutingPolicy):
    """Routes to the shard with the shortest queue (ties → lowest index).

    Ignores the fingerprint entirely: best when requests rarely repeat
    (cache locality is worthless) and worst-case queueing dominates.
    """

    name = "least_loaded"

    def select(self, fingerprint, loads):
        return (min(range(len(loads)), key=lambda index: loads[index]),)


class BroadcastWarmupRouting(RoutingPolicy):
    """Wraps a primary policy and replicates every request to all shards.

    The caller's answer comes from the primary policy's shard; the other
    shards receive best-effort duplicates that populate their caches.
    Use for fleet warm-up (every shard learns the catalog), then swap the
    gateway back to the plain primary policy.
    """

    name = "broadcast"

    def __init__(self, primary: Optional[RoutingPolicy] = None):
        self.primary = primary

    def select(self, fingerprint, loads):
        if self.primary is not None:
            first = self.primary.select(fingerprint, loads)[0]
        else:
            first = _ring_hash(fingerprint) % len(loads)
        return (first,) + tuple(
            shard for shard in range(len(loads)) if shard != first
        )


def make_policy(name: str, num_shards: int, seed: int = 0) -> RoutingPolicy:
    """Build a routing policy from its CLI/benchmark name."""
    if name == "hash":
        return ConsistentHashRouting(num_shards)
    if name == "random":
        return RandomRouting(seed=seed)
    if name == "least_loaded":
        return LeastLoadedRouting()
    if name == "broadcast":
        return BroadcastWarmupRouting(ConsistentHashRouting(num_shards))
    raise ValueError(
        f"unknown routing policy {name!r}; choose from {sorted(POLICY_NAMES)}"
    )


POLICY_NAMES = ("broadcast", "hash", "least_loaded", "random")


class _Shard:
    """One replicated service plus its gateway-side admission counter."""

    __slots__ = ("service", "pending", "routed", "lock")

    def __init__(self, service: EstimationService):
        self.service = service
        self.pending = 0  # queued-or-running requests admitted by us
        self.routed = 0  # lifetime requests this shard was primary for
        self.lock = threading.Lock()


class ServiceGateway:
    """Routes estimation requests across N service shards.

    Construct either from explicit ``shards`` (pre-built services, e.g.
    with custom middleware stacks) or from ``num_shards`` plus an
    ``estimator_factory`` — each shard then gets its *own* estimator
    instance and its own cache, which is what process-per-shard
    deployments will look like.

    The gateway mirrors the single-service surface (``submit`` /
    ``estimate`` / ``stats`` / context manager), so anything written
    against :class:`EstimationService` — the admission controller, the
    batch helpers' caller side — can point at a gateway unchanged.
    """

    def __init__(
        self,
        shards: Optional[Sequence[EstimationService]] = None,
        num_shards: int = DEFAULT_NUM_SHARDS,
        estimator_factory: Optional[Callable[[], object]] = None,
        policy: Optional[RoutingPolicy] = None,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
        max_workers_per_shard: int = 2,
    ):
        if shards is None:
            if num_shards < 1:
                raise ValueError("gateway needs at least one shard")
            shards = [
                EstimationService(
                    estimator=(
                        estimator_factory() if estimator_factory else None
                    ),
                    max_workers=max_workers_per_shard,
                )
                for _ in range(num_shards)
            ]
        elif not shards:
            raise ValueError("gateway needs at least one shard")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self._shards = [_Shard(service) for service in shards]
        self.policy = (
            policy
            if policy is not None
            else ConsistentHashRouting(len(self._shards))
        )
        self.max_queue_depth = max_queue_depth
        self._lock = threading.Lock()
        self._draining = False
        self._closed = False
        self._idle = threading.Condition(self._lock)
        # gateway-level counters (shard services keep their own)
        self._requests = 0
        self._shed = 0
        self._rejected = 0
        self._throttled = 0
        self._warmup_replicas = 0

    # ------------------------------------------------------------------
    # public API (mirrors EstimationService)
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> tuple[EstimationService, ...]:
        """The underlying services, for tests and warm-up hooks."""
        return tuple(shard.service for shard in self._shards)

    def fingerprint(
        self, workload: WorkloadConfig, device: DeviceSpec
    ) -> str:
        """The routing/cache key — identical on every (replica) shard."""
        return self._shards[0].service.fingerprint(workload, device)

    def shard_for(self, workload: WorkloadConfig, device: DeviceSpec) -> int:
        """The primary shard the current policy would pick right now."""
        fingerprint = self.fingerprint(workload, device)
        return self.policy.select(fingerprint, self._loads())[0]

    def submit(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace] = None,
    ) -> Future:
        """Route one request to its shard; returns the shard's future.

        Raises :class:`ServiceClosedError` after ``drain()``/``close()``,
        :class:`RateLimitExceededError` when the target shard's queue is
        full (shed — nothing was enqueued), and passes through the shard
        middleware's own synchronous rejections.
        """
        with self._lock:
            if self._closed or self._draining:
                raise ServiceClosedError("gateway is closed to new requests")
            self._requests += 1
        fingerprint = self.fingerprint(workload, device)
        selected = self.policy.select(fingerprint, self._loads())
        primary, replicas = selected[0], selected[1:]
        future = self._dispatch(primary, workload, device, trace, fingerprint)
        for shard_index in replicas:
            self._replicate(shard_index, workload, device, trace, fingerprint)
        return future

    def estimate(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace] = None,
    ):
        """Blocking request — the drop-in for ``service.estimate()``."""
        return self.submit(workload, device, trace=trace).result()

    def pending(self) -> int:
        """Requests admitted by the gateway and not yet resolved."""
        with self._lock:
            return sum(shard.pending for shard in self._shards)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting requests and wait for in-flight ones to finish.

        Returns True when the fleet went idle within ``timeout`` (None =
        wait forever).  Idempotent; ``submit`` raises afterwards.
        """
        with self._idle:
            self._draining = True
            return self._idle.wait_for(
                lambda: all(s.pending == 0 for s in self._shards),
                timeout=timeout,
            )

    def close(self, wait: bool = True) -> None:
        """Drain (when ``wait``) and shut every shard down."""
        if wait:
            self.drain()
        with self._lock:
            self._draining = True
            self._closed = True
        for shard in self._shards:
            shard.service.close(wait=wait)

    def __enter__(self) -> "ServiceGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        """Gateway counters + per-shard snapshots + fleet aggregate."""
        shard_stats = [shard.service.stats() for shard in self._shards]
        samples: list[float] = []
        for shard in self._shards:
            samples.extend(shard.service.metrics.latency_samples())
        with self._lock:
            gateway = {
                "policy": self.policy.name,
                "num_shards": len(self._shards),
                "max_queue_depth": self.max_queue_depth,
                "requests": self._requests,
                "shed": self._shed,
                "rejected": self._rejected,
                "throttled": self._throttled,
                "warmup_replicas": self._warmup_replicas,
                "pending": sum(s.pending for s in self._shards),
                "routed_per_shard": [s.routed for s in self._shards],
            }
        return {
            "gateway": gateway,
            "aggregate": aggregate_shard_stats(shard_stats, samples),
            "shards": shard_stats,
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _loads(self) -> list[int]:
        with self._lock:
            return [shard.pending for shard in self._shards]

    def _dispatch(
        self,
        shard_index: int,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace],
        fingerprint: str,
    ) -> Future:
        shard = self._shards[shard_index]
        with self._lock:
            # re-check the gate while reserving the slot: a drain()/close()
            # racing between submit()'s gate and here must either see our
            # pending slot or turn us away — never report idle and then
            # let this request hit a closed shard
            if self._closed or self._draining:
                raise ServiceClosedError("gateway is closed to new requests")
            if shard.pending >= self.max_queue_depth:
                self._shed += 1
                raise RateLimitExceededError(
                    retry_after_seconds=0.05 * (shard.pending + 1)
                )
            shard.pending += 1
            shard.routed += 1
        try:
            future = shard.service.submit(
                workload, device, trace=trace, fingerprint=fingerprint
            )
        except RateLimitExceededError:
            self._settle(shard, throttled=True)
            raise
        except RequestRejectedError:
            self._settle(shard, rejected=True)
            raise
        except BaseException:
            self._settle(shard)
            raise
        future.add_done_callback(lambda _f, s=shard: self._settle(s))
        return future

    def _replicate(
        self,
        shard_index: int,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace],
        fingerprint: str,
    ) -> None:
        """Best-effort warm-up duplicate: never surfaces to the caller."""
        shard = self._shards[shard_index]
        with self._lock:
            if (
                self._closed
                or self._draining
                or shard.pending >= self.max_queue_depth
            ):
                return  # warm-up never sheds real traffic
            shard.pending += 1
            self._warmup_replicas += 1
        try:
            future = shard.service.submit(
                workload, device, trace=trace, fingerprint=fingerprint
            )
        except BaseException:
            self._settle(shard)
            return
        future.add_done_callback(
            lambda f, s=shard: (f.exception(), self._settle(s))
        )

    def _settle(
        self, shard: _Shard, rejected: bool = False, throttled: bool = False
    ) -> None:
        with self._idle:
            shard.pending -= 1
            if rejected:
                self._rejected += 1
            if throttled:
                self._throttled += 1
            if all(s.pending == 0 for s in self._shards):
                self._idle.notify_all()


def aggregate_shard_stats(
    shard_stats: Sequence[dict],
    latency_samples: Optional[Sequence[float]] = None,
) -> dict:
    """Fold per-shard ``service.stats()`` snapshots into fleet totals.

    Counters sum; the hit rate is recomputed from the summed numerators
    (averaging per-shard rates would weight an idle shard like a busy
    one); latency percentiles are taken over ``latency_samples`` — the
    union of every shard's reservoir — which is exact as long as no
    reservoir overflowed.
    """
    service_keys = (
        "requests",
        "cache_hits",
        "computed",
        "deduplicated",
        "rejected",
        "throttled",
        "errors",
    )
    cache_keys = ("hits", "misses", "evictions", "expirations", "size")
    totals = {key: 0 for key in service_keys}
    cache = {key: 0 for key in cache_keys}
    samples = list(latency_samples or ())
    inflight = 0
    stages: dict[str, dict] = {}
    for snapshot in shard_stats:
        service = snapshot["service"]
        for key in service_keys:
            totals[key] += service[key]
        for key in cache_keys:
            cache[key] += snapshot["cache"][key]
        inflight += snapshot.get("inflight", 0)
        for stage, data in service.get("stages", {}).items():
            fleet = stages.setdefault(
                stage, {"count": 0, "total_seconds": 0.0}
            )
            fleet["count"] += data["count"]
            fleet["total_seconds"] += data["total_seconds"]
    for fleet in stages.values():
        fleet["mean_seconds"] = (
            fleet["total_seconds"] / fleet["count"] if fleet["count"] else None
        )
    answered = totals["cache_hits"] + totals["computed"]
    cache_lookups = cache["hits"] + cache["misses"]
    return {
        **totals,
        "inflight": inflight,
        "cache_hit_rate": (
            totals["cache_hits"] / answered if answered else 0.0
        ),
        "cache": {
            **cache,
            "hit_rate": (
                cache["hits"] / cache_lookups if cache_lookups else 0.0
            ),
        },
        "latency_seconds": {
            "count": len(samples),
            "p50": percentile(samples, 50),
            "p95": percentile(samples, 95),
            "p99": percentile(samples, 99),
            "max": max(samples) if samples else None,
        },
        "stages": stages,
    }
