"""The thread-driven sharded gateway over replicated estimation services.

One :class:`~repro.service.engine.EstimationService` is a single worker
pool behind a single cache; cluster-rate traffic needs N of them.  The
:class:`ServiceGateway` fans requests across replicated service *shards*
and owns the three policies a serving tier needs:

* **Routing** (:class:`~repro.service.routing.RoutingPolicy`) — which
  shard answers a request.  The default
  :class:`~repro.service.routing.ConsistentHashRouting` keys on the
  request fingerprint, so every repeat of a workload lands on the same
  shard and per-shard caches stay hot (the whole point of sharding a
  cache).
* **Backpressure** — each shard accepts at most ``max_queue_depth``
  queued-or-running requests; beyond that the gateway *sheds*, raising
  :class:`~repro.errors.RateLimitExceededError` so callers can retry
  with the usual hint.  Validation/rate-limit rejections from the shard's
  own middleware chain pass through unchanged.
* **Lifecycle** — ``drain()`` stops intake and waits for in-flight work;
  ``close()`` drains then shuts every shard down.

All three are decided by the sans-IO :class:`~repro.service.core.GatewayCore`
state machine; this module adds only the thread substrate — a lock
serializing the core's mutations, a condition variable ``drain()`` blocks
on, and ``concurrent.futures`` plumbing.  The asyncio driver
(:class:`~repro.service.aio.AsyncServiceGateway`) drives the identical
core from an event loop.

``stats()`` aggregates every shard's metrics into one fleet-level
snapshot (summed counters, recomputed hit rate, percentiles over the
union of latency samples) next to the per-shard breakdown, so dashboards
see both the fleet and its skew.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError, Future
from typing import Callable, Optional, Sequence

from ..errors import (
    CircuitOpenError,
    DeadlineExceededError,
    QuotaExceededError,
    RateLimitExceededError,
    RequestRejectedError,
    ServiceClosedError,
    ShardBlackoutError,
)
from ..trace.reader import Trace
from ..workload import DeviceSpec, WorkloadConfig
from .control import DEFAULT_PRIORITY, ControlPlane
from .core import GatewayCore, aggregate_shard_stats
from .engine import EstimationService
from .faults import FaultInjector, FaultPlan
from .resilience import ResilienceCore, ResiliencePolicy, is_transient
from .telemetry import ledger as ledger_events
from .telemetry.spans import GATEWAY_SPAN
from .routing import (
    DEFAULT_VNODES,
    POLICY_NAMES,
    BroadcastWarmupRouting,
    ConsistentHashRouting,
    LeastLoadedRouting,
    RandomRouting,
    RoutingPolicy,
    make_policy,
)

__all__ = [
    "BroadcastWarmupRouting",
    "ConsistentHashRouting",
    "DEFAULT_MAX_QUEUE_DEPTH",
    "DEFAULT_NUM_SHARDS",
    "DEFAULT_VNODES",
    "LeastLoadedRouting",
    "POLICY_NAMES",
    "RandomRouting",
    "RoutingPolicy",
    "ServiceGateway",
    "SyncGatewayShell",
    "aggregate_shard_stats",
    "make_policy",
]

DEFAULT_NUM_SHARDS = 4
DEFAULT_MAX_QUEUE_DEPTH = 64


class _ResilientCall:
    """Gateway-side state for one request under the resilience plane.

    The caller holds the *outer* future; attempts (first dispatch,
    retries, hedges) come and go underneath it.  ``lock`` guards the
    settled/inflight bookkeeping — lock order is always
    ``state.lock`` -> gateway lock, never the reverse.
    """

    __slots__ = (
        "workload",
        "device",
        "trace",
        "fingerprint",
        "seq",
        "index",
        "tenant",
        "priority",
        "deadline",
        "metadata",
        "attempt",
        "outer",
        "lock",
        "settled",
        "inflight",
        "hedged",
        "retry_timer",
        "hedge_timer",
    )

    def __init__(
        self,
        workload,
        device,
        trace,
        fingerprint,
        seq,
        index,
        tenant="",
        priority=DEFAULT_PRIORITY,
        deadline=None,
        metadata=None,
    ):
        self.workload = workload
        self.device = device
        self.trace = trace
        self.fingerprint = fingerprint
        self.seq = seq
        self.index = index
        self.tenant = tenant
        self.priority = priority
        self.deadline = deadline
        self.metadata = metadata
        self.attempt = 1
        self.outer: Future = Future()
        self.lock = threading.Lock()
        self.settled = False
        self.inflight = 0
        self.hedged = False
        self.retry_timer: Optional[threading.Timer] = None
        self.hedge_timer: Optional[threading.Timer] = None


class SyncGatewayShell:
    """The thread-substrate gateway shell, shared by the sync drivers.

    Everything a lock-and-condition-variable gateway does — routing
    under the lock, admit/shed/settle against :class:`GatewayCore`,
    best-effort warm-up replicas, ``drain()`` blocking on the idle
    condition, fleet ``stats()`` aggregation — is identical whether the
    shards run estimation on worker threads
    (:class:`ServiceGateway`) or in a process pool
    (:class:`~repro.service.procpool.ProcServiceGateway`); only shard
    construction and substrate teardown differ.  Subclasses call
    :meth:`_init_shell` from their constructor and override
    :meth:`_shutdown_substrate` / :meth:`_snapshot_extra` as needed.
    (The asyncio gateway shares none of this: its serialization is the
    event loop, not a lock.)
    """

    def _init_shell(
        self,
        shards: Sequence,
        policy: Optional[RoutingPolicy],
        max_queue_depth: int,
        telemetry=None,
        resilience: Optional[ResiliencePolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        control: Optional[ControlPlane] = None,
    ) -> None:
        self._shard_services = tuple(shards)
        # resilience plane (PR 8): both optional, and when both are None
        # submit() runs the exact pre-resilience code path
        self._resilience = (
            ResilienceCore(len(self._shard_services), resilience)
            if resilience is not None
            else None
        )
        self._injector = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        self._retry_states: dict[_ResilientCall, threading.Timer] = {}
        self._open_calls = 0
        self.core = GatewayCore(
            num_shards=len(self._shard_services),
            policy=(
                policy
                if policy is not None
                else ConsistentHashRouting(len(self._shard_services))
            ),
            max_queue_depth=max_queue_depth,
            control=control,
        )
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        # one Telemetry bundle spans the whole fleet: every shard core is
        # stamped with its position and pointed at the shared tracer +
        # ledger (unless the shard was pre-built with its own), so one
        # request yields one trace across gateway and shard layers and
        # the ledger records provenance per shard
        self.telemetry = telemetry
        for index, service in enumerate(self._shard_services):
            shard_core = getattr(service, "core", None)
            if shard_core is None:
                continue
            shard_core.shard_id = index
            if telemetry is not None:
                if shard_core.tracer is None:
                    shard_core.tracer = telemetry.tracer
                if shard_core.ledger is None:
                    shard_core.ledger = telemetry.ledger

    def _gateway_decision(
        self,
        event: str,
        cause: str,
        fingerprint: str,
        seq: Optional[int],
        shard_index: Optional[int],
        attributes: Optional[dict] = None,
    ) -> None:
        """Ledger one gateway-layer decision (no-op unledgered)."""
        if self.telemetry is None:
            return
        attrs = {"layer": "gateway"}
        if attributes:
            attrs.update(attributes)
        self.telemetry.ledger.record(
            event,
            cause=cause,
            fingerprint=fingerprint,
            request_id=seq if seq is not None else 0,
            shard=shard_index,
            attributes=attrs,
        )

    # -- substrate hooks ----------------------------------------------
    def _shutdown_substrate(self, wait: bool) -> None:
        """Tear down any substrate the subclass owns beyond the shards."""
        return None

    def _snapshot_extra(self) -> dict:
        """Substrate-specific keys merged into the gateway snapshot."""
        return {}

    # ------------------------------------------------------------------
    # public API (mirrors EstimationService)
    # ------------------------------------------------------------------
    @property
    def policy(self) -> RoutingPolicy:
        return self.core.policy

    @property
    def max_queue_depth(self) -> int:
        return self.core.max_queue_depth

    @property
    def num_shards(self) -> int:
        return len(self._shard_services)

    @property
    def shards(self) -> tuple:
        """The underlying services, for tests and warm-up hooks."""
        return self._shard_services

    def fingerprint(
        self, workload: WorkloadConfig, device: DeviceSpec
    ) -> str:
        """The routing/cache key — identical on every (replica) shard."""
        return self._shard_services[0].fingerprint(workload, device)

    def shard_for(self, workload: WorkloadConfig, device: DeviceSpec) -> int:
        """The primary shard the current policy would pick right now."""
        fingerprint = self.fingerprint(workload, device)
        with self._lock:
            return self.core.route(fingerprint)[0]

    def submit(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace] = None,
        deadline: Optional[float] = None,
        metadata: Optional[dict] = None,
        tenant: str = "",
        priority: int = DEFAULT_PRIORITY,
    ) -> Future:
        """Route one request to its shard; returns the shard's future.

        Raises :class:`ServiceClosedError` after ``drain()``/``close()``,
        :class:`RateLimitExceededError` when the target shard's queue is
        full (shed — nothing was enqueued), and passes through the shard
        middleware's own synchronous rejections.  With a
        :class:`~repro.service.control.ControlPlane` configured on the
        core, ``tenant``/``priority``/``deadline`` are additionally
        subject to quota, fair-share, and hopeless-deadline admission
        (:class:`~repro.errors.QuotaExceededError` and friends) before
        any queue slot is reserved.

        With a :class:`~repro.service.resilience.ResiliencePolicy` or
        :class:`~repro.service.faults.FaultPlan` configured, the future
        returned is gateway-owned: attempts (retries, hedges) come and
        go underneath it and it settles exactly once with the final
        result or a typed error.
        """
        if self._resilience is not None or self._injector is not None:
            return self._submit_resilient(
                workload,
                device,
                trace,
                deadline=deadline,
                metadata=metadata,
                tenant=tenant,
                priority=priority,
            )
        fingerprint = self.fingerprint(workload, device)
        with self._lock:
            self.core.count_request()
            seq = self.core.requests
            # stateful policies (the seeded RNG) rely on the driver for
            # serialization, so routing happens inside the lock too
            primary, replicas = self.core.route(fingerprint)
        span = None
        metadata = dict(metadata) if metadata else None
        if self.telemetry is not None:
            span = self.telemetry.tracer.start_trace(
                f"g{seq:06d}-{fingerprint[:12]}",
                name=GATEWAY_SPAN,
                attributes={
                    "policy": self.core.policy.name,
                    "shard": primary,
                    "fingerprint": fingerprint,
                },
            )
            # the shard-level request span re-parents under this one via
            # the span context riding the metadata bag
            metadata = {
                **(metadata or {}),
                "telemetry": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                },
            }
        future = self._dispatch(
            primary,
            workload,
            device,
            trace,
            fingerprint,
            metadata=metadata,
            span=span,
            seq=seq,
            deadline=deadline,
            tenant=tenant,
            priority=priority,
        )
        for shard_index in replicas:
            self._replicate(
                shard_index, workload, device, trace, fingerprint, seq=seq
            )
        return future

    def estimate(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace] = None,
    ):
        """Blocking request — the drop-in for ``service.estimate()``."""
        return self.submit(workload, device, trace=trace).result()

    def pending(self) -> int:
        """Requests admitted by the gateway and not yet resolved."""
        with self._lock:
            return self.core.pending()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting requests and wait for in-flight ones to finish.

        Returns True when the fleet went idle within ``timeout`` (None =
        wait forever).  Idempotent; ``submit`` raises afterwards.

        Under the resilience plane, requests parked in retry backoff
        (e.g. against a blacked-out shard whose circuit is open) hold no
        shard slot — they are settled immediately as shed with a typed
        :class:`~repro.errors.CircuitOpenError` rather than waited for,
        so drain never blocks on a circuit that may stay open forever.
        """
        with self._idle:
            self.core.draining = True
            parked = list(self._retry_states.items())
            self._retry_states.clear()
        for state, timer in parked:
            timer.cancel()
            self._shed_parked_retry(state)
        with self._idle:
            done = self._idle.wait_for(
                lambda: self.core.idle() and self._open_calls == 0,
                timeout=timeout,
            )
            if done:
                self._sync_resilience_locked()
            return done

    def close(self, wait: bool = True) -> None:
        """Drain (when ``wait``), shut every shard down, then release
        whatever substrate the subclass owns."""
        if wait:
            self.drain()
        with self._lock:
            self.core.draining = True
            self.core.closed = True
        for service in self._shard_services:
            service.close(wait=wait)
        self._shutdown_substrate(wait)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        """Gateway counters + per-shard snapshots + fleet aggregate."""
        shard_stats = [service.stats() for service in self._shard_services]
        samples: list[float] = []
        for service in self._shard_services:
            samples.extend(service.metrics.latency_samples())
        with self._lock:
            gateway = self.core.snapshot()
            if self._resilience is not None:
                gateway["resilience"] = self._resilience.snapshot()
            if self._injector is not None:
                gateway["faults"] = self._injector.snapshot()
        gateway.update(self._snapshot_extra())
        return {
            "gateway": gateway,
            "aggregate": aggregate_shard_stats(shard_stats, samples),
            "shards": shard_stats,
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _dispatch(
        self,
        shard_index: int,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace],
        fingerprint: str,
        metadata: Optional[dict] = None,
        span=None,
        seq: Optional[int] = None,
        deadline: Optional[float] = None,
        tenant: str = "",
        priority: int = DEFAULT_PRIORITY,
    ) -> Future:
        service = self._shard_services[shard_index]
        deadline_remaining = (
            None if deadline is None else deadline - time.perf_counter()
        )
        try:
            with self._lock:
                # admit re-checks the gate while reserving the slot: a
                # drain()/close() racing between submit()'s gate and here
                # must either see our pending slot or turn us away — never
                # report idle and then let this request hit a closed shard
                self.core.admit(
                    shard_index,
                    tenant=tenant,
                    priority=priority,
                    deadline_remaining=deadline_remaining,
                )
        except QuotaExceededError as error:
            self._gateway_decision(
                ledger_events.QUOTA,
                f"{error.scope}:{error.tenant}",
                fingerprint,
                seq,
                shard_index,
            )
            self._close_span(span, "shed")
            raise
        except DeadlineExceededError:
            self._gateway_decision(
                ledger_events.DEADLINE,
                "hopeless_at_gateway",
                fingerprint,
                seq,
                shard_index,
            )
            self._close_span(span, "rejected")
            raise
        except RequestRejectedError as error:
            # the control plane's auth refusal (strict mode)
            self._gateway_decision(
                ledger_events.AUTH,
                type(error).__name__,
                fingerprint,
                seq,
                shard_index,
            )
            self._close_span(span, "rejected")
            raise
        except RateLimitExceededError:
            self._gateway_decision(
                ledger_events.SHED, "queue_full", fingerprint, seq, shard_index
            )
            self._close_span(span, "shed")
            raise
        self._gateway_decision(
            ledger_events.ADMIT, "route", fingerprint, seq, shard_index
        )
        try:
            future = service.submit(
                workload,
                device,
                trace=trace,
                fingerprint=fingerprint,
                deadline=deadline,
                metadata=metadata,
                tenant=tenant,
                priority=priority,
            )
        except RateLimitExceededError:
            self._settle(shard_index, throttled=True)
            self._close_span(span, "throttled")
            raise
        except RequestRejectedError:
            self._settle(shard_index, rejected=True)
            self._close_span(span, "rejected")
            raise
        except BaseException:
            self._settle(shard_index)
            self._close_span(span, "error")
            raise
        future.add_done_callback(
            lambda f, index=shard_index: self._settle_dispatched(
                f, index, span
            )
        )
        return future

    def _settle_dispatched(self, future: Future, shard_index: int, span) -> None:
        self._settle(shard_index)
        if span is not None:
            failed = future.cancelled() or future.exception() is not None
            self._close_span(span, "error" if failed else "ok")

    def _close_span(self, span, status: str) -> None:
        if span is not None and self.telemetry is not None:
            self.telemetry.tracer.end(span, status=status)

    def _replicate(
        self,
        shard_index: int,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace],
        fingerprint: str,
        seq: Optional[int] = None,
    ) -> None:
        """Best-effort warm-up duplicate: never surfaces to the caller."""
        service = self._shard_services[shard_index]
        with self._lock:
            if not self.core.admit_replica(shard_index):
                return  # warm-up never sheds real traffic
        self._gateway_decision(
            ledger_events.WARMUP, "replica", fingerprint, seq, shard_index
        )
        try:
            future = service.submit(
                workload, device, trace=trace, fingerprint=fingerprint
            )
        except BaseException:
            self._settle(shard_index)
            return
        future.add_done_callback(
            lambda f, index=shard_index: (f.exception(), self._settle(index))
        )

    def _settle(
        self, shard_index: int, rejected: bool = False, throttled: bool = False
    ) -> None:
        with self._idle:
            if self.core.settle(
                shard_index, rejected=rejected, throttled=throttled
            ):
                if self._open_calls == 0:
                    # idle *and* every outer future settled: a wave
                    # boundary — apply deferred breaker outcomes so
                    # transitions depend only on the request stream
                    self._sync_resilience_locked()
                self._idle.notify_all()

    # ------------------------------------------------------------------
    # resilience plane (retries, breakers, hedging, fault injection)
    # ------------------------------------------------------------------
    def _sync_resilience_locked(self) -> None:
        """Apply deferred breaker outcomes; caller holds the lock."""
        if self._resilience is None:
            return
        transitions = self._resilience.sync()
        if transitions and self.telemetry is not None:
            seq = self.core.requests
            for shard, transition in transitions:
                self.telemetry.ledger.record(
                    ledger_events.BREAKER,
                    cause=transition,
                    fingerprint="",
                    request_id=seq,
                    shard=shard,
                    attributes={"layer": "gateway"},
                )

    def _submit_resilient(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace],
        deadline: Optional[float] = None,
        metadata: Optional[dict] = None,
        tenant: str = "",
        priority: int = DEFAULT_PRIORITY,
    ) -> Future:
        res = self._resilience
        fingerprint = self.fingerprint(workload, device)
        with self._lock:
            self.core.count_request()
            seq = self.core.requests
            transitions = res.tick() if res is not None else []
            primary, replicas = self.core.route(fingerprint)
            if res is not None:
                target, rerouted = res.choose_shard(primary)
            else:
                target, rerouted = primary, False
            index = (
                self._injector.next_index()
                if self._injector is not None
                else None
            )
            if target is None:
                res.counters["shed_open_circuit"] += 1
                self.core.shed += 1
        for shard, transition in transitions:
            self._gateway_decision(
                ledger_events.BREAKER, transition, "", seq, shard
            )
        if target is None:
            self._gateway_decision(
                ledger_events.SHED, "circuit_open", fingerprint, seq, primary
            )
            raise CircuitOpenError("every candidate shard's breaker is open")
        if rerouted:
            self._gateway_decision(
                ledger_events.REROUTE, "circuit_open", fingerprint, seq, target
            )
        directive = None
        if self._injector is not None:
            directive = self._injector.directive_for(index, target)
            if directive is not None:
                self._gateway_decision(
                    ledger_events.FAULT,
                    directive["kind"],
                    fingerprint,
                    seq,
                    target,
                )
        state = _ResilientCall(
            workload,
            device,
            trace,
            fingerprint,
            seq,
            index,
            tenant=tenant,
            priority=priority,
            deadline=deadline,
            metadata=metadata,
        )
        with self._lock:
            self._open_calls += 1
        self._begin_attempt(state, target, directive, cause="route")
        self._maybe_schedule_hedge(state, target)
        for shard_index in replicas:
            self._replicate(
                shard_index, workload, device, trace, fingerprint, seq=seq
            )
        return state.outer

    def _begin_attempt(
        self,
        state: _ResilientCall,
        shard_index: int,
        directive: Optional[dict],
        cause: str,
        is_hedge: bool = False,
    ) -> None:
        with state.lock:
            if state.settled:
                return  # drained/settled while this attempt was scheduled
            # symmetric with the decrement in _attempt_outcome: every
            # path below funnels through _finish_attempt exactly once
            state.inflight += 1
        service = self._shard_services[shard_index]
        if directive is not None and directive.get("kind") == "shard_blackout":
            # a blacked-out shard is *unreachable*: the attempt fails at
            # the gateway without touching the shard (its cache included)
            self._finish_attempt(
                state,
                shard_index,
                is_hedge,
                None,
                ShardBlackoutError(shard_index),
                slot_held=False,
            )
            return
        deadline_remaining = (
            None
            if state.deadline is None
            else state.deadline - time.perf_counter()
        )
        try:
            with self._lock:
                self.core.admit(
                    shard_index,
                    tenant=state.tenant,
                    priority=state.priority,
                    deadline_remaining=deadline_remaining,
                )
        except QuotaExceededError as error:
            self._gateway_decision(
                ledger_events.QUOTA,
                f"{error.scope}:{error.tenant}",
                state.fingerprint,
                state.seq,
                shard_index,
            )
            self._finish_attempt(
                state, shard_index, is_hedge, None, error, slot_held=False
            )
            return
        except DeadlineExceededError as error:
            self._gateway_decision(
                ledger_events.DEADLINE,
                "hopeless_at_gateway",
                state.fingerprint,
                state.seq,
                shard_index,
            )
            self._finish_attempt(
                state, shard_index, is_hedge, None, error, slot_held=False
            )
            return
        except RequestRejectedError as error:
            # the control plane's auth refusal (strict mode)
            self._gateway_decision(
                ledger_events.AUTH,
                type(error).__name__,
                state.fingerprint,
                state.seq,
                shard_index,
            )
            self._finish_attempt(
                state, shard_index, is_hedge, None, error, slot_held=False
            )
            return
        except (RateLimitExceededError, ServiceClosedError) as error:
            shed_cause = (
                "queue_full"
                if isinstance(error, RateLimitExceededError)
                else "closed"
            )
            self._gateway_decision(
                ledger_events.SHED,
                shed_cause,
                state.fingerprint,
                state.seq,
                shard_index,
            )
            self._finish_attempt(
                state, shard_index, is_hedge, None, error, slot_held=False
            )
            return
        self._gateway_decision(
            ledger_events.ADMIT,
            cause,
            state.fingerprint,
            state.seq,
            shard_index,
            attributes={"attempt": state.attempt} if state.attempt > 1 else None,
        )
        metadata: dict = {
            **(state.metadata or {}),
            "attempt": state.attempt,
        }
        if directive is not None:
            metadata["fault"] = directive
        try:
            future = service.submit(
                state.workload,
                state.device,
                trace=state.trace,
                fingerprint=state.fingerprint,
                deadline=state.deadline,
                metadata=metadata,
                tenant=state.tenant,
                priority=state.priority,
            )
        except RateLimitExceededError as error:
            self._finish_attempt(
                state,
                shard_index,
                is_hedge,
                None,
                error,
                slot_held=True,
                throttled=True,
            )
            return
        except RequestRejectedError as error:
            self._finish_attempt(
                state,
                shard_index,
                is_hedge,
                None,
                error,
                slot_held=True,
                rejected=True,
            )
            return
        except BaseException as error:
            self._finish_attempt(
                state, shard_index, is_hedge, None, error, slot_held=True
            )
            return
        future.add_done_callback(
            lambda f, index=shard_index, hedge=is_hedge: (
                self._resilient_dispatched(state, index, hedge, f)
            )
        )

    def _resilient_dispatched(
        self,
        state: _ResilientCall,
        shard_index: int,
        is_hedge: bool,
        future: Future,
    ) -> None:
        if future.cancelled():
            result, error = None, CancelledError()
        else:
            error = future.exception()
            result = future.result() if error is None else None
        self._finish_attempt(
            state, shard_index, is_hedge, result, error, slot_held=True
        )

    def _finish_attempt(
        self,
        state: _ResilientCall,
        shard_index: int,
        is_hedge: bool,
        result,
        error: Optional[BaseException],
        slot_held: bool,
        rejected: bool = False,
        throttled: bool = False,
    ) -> None:
        res = self._resilience
        # breaker accounting happens *before* the slot settles so every
        # outcome of a wave is buffered by the time the idle-edge sync
        # runs (determinism of deferred breaker transitions)
        if res is not None and (error is None or is_transient(error)):
            with self._lock:
                res.record_outcome(shard_index, state.seq, error is None)
        if slot_held:
            self._settle(shard_index, rejected=rejected, throttled=throttled)
        self._attempt_outcome(state, shard_index, is_hedge, result, error)

    def _attempt_outcome(
        self,
        state: _ResilientCall,
        shard_index: int,
        is_hedge: bool,
        result,
        error: Optional[BaseException],
    ) -> None:
        res = self._resilience
        loser = False
        settle_result = False
        settle_error: Optional[BaseException] = None
        won_by_hedge = False
        retry_target: Optional[int] = None
        retry_delay = 0.0
        with state.lock:
            state.inflight -= 1
            if state.settled:
                loser = state.hedged
            elif error is None:
                state.settled = True
                settle_result = True
                won_by_hedge = is_hedge
            else:
                if res is not None and not is_hedge:
                    with self._lock:
                        if not self.core.draining and res.should_retry(
                            error, state.attempt
                        ):
                            candidate = res.retry_target(
                                shard_index, state.attempt + 1
                            )
                            if candidate is not None:
                                res.spend_retry()
                                retry_target = candidate
                if retry_target is not None:
                    state.attempt += 1
                    retry_delay = res.policy.retry.delay(
                        state.fingerprint, state.attempt
                    )
                elif state.inflight > 0:
                    pass  # a hedge twin is still running; let it decide
                else:
                    state.settled = True
                    settle_error = error
        if loser:
            if res is not None:
                with self._lock:
                    res.counters["hedge_losers"] += 1
            self._gateway_decision(
                ledger_events.HEDGE,
                "loser",
                state.fingerprint,
                state.seq,
                shard_index,
            )
            return
        if settle_result:
            self._cancel_timers(state)
            if won_by_hedge:
                with self._lock:
                    res.counters["hedge_wins"] += 1
                self._gateway_decision(
                    ledger_events.HEDGE,
                    "won",
                    state.fingerprint,
                    state.seq,
                    shard_index,
                )
            self._settle_outer(state, result=result)
            return
        if retry_target is not None:
            self._gateway_decision(
                ledger_events.RETRY,
                type(error).__name__,
                state.fingerprint,
                state.seq,
                retry_target,
                attributes={
                    "attempt": state.attempt,
                    "delay": round(retry_delay, 6),
                },
            )
            next_directive = None
            if self._injector is not None:
                # re-check the plan against the retry's destination: a
                # retry routed back into a blackout window still fails
                next_directive = self._injector.peek_window(
                    state.index, retry_target
                )
            self._schedule_retry(state, retry_target, next_directive, retry_delay)
            return
        if settle_error is not None:
            self._cancel_timers(state)
            self._settle_outer(state, error=settle_error)

    def _schedule_retry(
        self,
        state: _ResilientCall,
        target: int,
        directive: Optional[dict],
        delay: float,
    ) -> None:
        timer = threading.Timer(
            delay, self._fire_retry, args=(state, target, directive)
        )
        timer.daemon = True
        with self._lock:
            if self.core.draining:
                drain_now = True
            else:
                state.retry_timer = timer
                self._retry_states[state] = timer
                drain_now = False
        if drain_now:
            self._shed_parked_retry(state)
            return
        timer.start()

    def _fire_retry(
        self, state: _ResilientCall, target: int, directive: Optional[dict]
    ) -> None:
        with self._lock:
            self._retry_states.pop(state, None)
            draining = self.core.draining
        state.retry_timer = None
        if draining:
            self._shed_parked_retry(state)
            return
        self._begin_attempt(state, target, directive, cause="retry")

    def _shed_parked_retry(self, state: _ResilientCall) -> None:
        """Settle a request parked in retry backoff as shed (drain path)."""
        with state.lock:
            if state.settled:
                return
            state.settled = True
        with self._lock:
            self.core.shed += 1
            if self._resilience is not None:
                self._resilience.counters["shed_on_drain"] += 1
        self._gateway_decision(
            ledger_events.SHED,
            "drained_during_backoff",
            state.fingerprint,
            state.seq,
            None,
        )
        self._settle_outer(
            state,
            error=CircuitOpenError("gateway drained during retry backoff"),
        )

    def _maybe_schedule_hedge(
        self, state: _ResilientCall, primary: int
    ) -> None:
        res = self._resilience
        if res is None or res.policy.hedge is None:
            return
        samples: list[float] = []
        for service in self._shard_services:
            samples.extend(service.metrics.latency_samples())
        threshold = res.policy.hedge.threshold(samples)
        timer = threading.Timer(
            threshold, self._fire_hedge, args=(state, primary)
        )
        timer.daemon = True
        state.hedge_timer = timer
        timer.start()

    def _fire_hedge(self, state: _ResilientCall, primary: int) -> None:
        res = self._resilience
        state.hedge_timer = None
        with state.lock:
            if state.settled or state.inflight == 0 or state.hedged:
                return
            state.hedged = True
        with self._lock:
            if self.core.draining:
                return
            target = res.hedge_target(primary)
            if target is None:
                return
            res.counters["hedges"] += 1
        self._gateway_decision(
            ledger_events.HEDGE,
            "latency_threshold",
            state.fingerprint,
            state.seq,
            target,
        )
        directive = None
        if self._injector is not None:
            directive = self._injector.peek_window(state.index, target)
        self._begin_attempt(state, target, directive, cause="hedge", is_hedge=True)

    def _cancel_timers(self, state: _ResilientCall) -> None:
        with self._lock:
            timer = self._retry_states.pop(state, None)
        if timer is not None:
            timer.cancel()
        hedge_timer = state.hedge_timer
        if hedge_timer is not None:
            hedge_timer.cancel()
            state.hedge_timer = None

    def _settle_outer(
        self,
        state: _ResilientCall,
        result=None,
        error: Optional[BaseException] = None,
    ) -> None:
        # bookkeeping first: by the time the caller observes the outer
        # future, the wave-boundary sync has already run, so the next
        # submission sees post-sync breaker state (determinism)
        with self._idle:
            self._open_calls -= 1
            if self._open_calls == 0 and self.core.idle():
                self._sync_resilience_locked()
            self._idle.notify_all()
        if error is not None:
            state.outer.set_exception(error)
        else:
            state.outer.set_result(result)


class ServiceGateway(SyncGatewayShell):
    """Routes estimation requests across N thread-driven service shards.

    Construct either from explicit ``shards`` (pre-built services, e.g.
    with custom middleware stacks) or from ``num_shards`` plus an
    ``estimator_factory`` — each shard then gets its *own* estimator
    instance and its own cache, which is what process-per-shard
    deployments will look like.

    The gateway mirrors the single-service surface (``submit`` /
    ``estimate`` / ``stats`` / context manager), so anything written
    against :class:`EstimationService` — the admission controller, the
    batch helpers' caller side — can point at a gateway unchanged.
    """

    def __init__(
        self,
        shards: Optional[Sequence[EstimationService]] = None,
        num_shards: int = DEFAULT_NUM_SHARDS,
        estimator_factory: Optional[Callable[[], object]] = None,
        policy: Optional[RoutingPolicy] = None,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
        max_workers_per_shard: int = 2,
        telemetry=None,
        resilience: Optional[ResiliencePolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        control: Optional[ControlPlane] = None,
    ):
        if shards is None:
            if num_shards < 1:
                raise ValueError("gateway needs at least one shard")
            shards = [
                EstimationService(
                    estimator=(
                        estimator_factory() if estimator_factory else None
                    ),
                    max_workers=max_workers_per_shard,
                )
                for _ in range(num_shards)
            ]
        elif not shards:
            raise ValueError("gateway needs at least one shard")
        self._init_shell(
            shards,
            policy,
            max_queue_depth,
            telemetry=telemetry,
            resilience=resilience,
            fault_plan=fault_plan,
            control=control,
        )
