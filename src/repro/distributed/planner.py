"""Pipeline-parallel memory planning over per-layer profiles (§6.2).

Given the per-layer memory map of a model that does not fit on one GPU,
the planner partitions the layer sequence into contiguous pipeline stages
so that every stage's training memory (weights + gradients + optimizer
state + activations + scratch) fits its device budget, balancing the
stages.  This is exactly the use the paper sketches: the single-node CPU
profile supplies the per-layer data; the planner simulates the
distributed decision without ever running distributed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import format_bytes
from ..workload import DeviceSpec
from .profiles import LayerProfile, ModelMemoryMap


@dataclass(frozen=True)
class PipelineStage:
    """One contiguous group of layers assigned to one device."""

    index: int
    layers: tuple[str, ...]
    memory_bytes: int

    def __str__(self) -> str:
        return (
            f"stage {self.index}: {len(self.layers)} layers, "
            f"{format_bytes(self.memory_bytes)}"
        )


@dataclass(frozen=True)
class PipelinePlan:
    """A complete assignment of layers to pipeline stages."""

    stages: tuple[PipelineStage, ...]
    device_budget: int
    optimizer_state_multiplier: float

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def max_stage_bytes(self) -> int:
        return max(s.memory_bytes for s in self.stages)

    @property
    def balance(self) -> float:
        """max/mean stage memory; 1.0 is perfectly balanced."""
        mean = sum(s.memory_bytes for s in self.stages) / len(self.stages)
        return self.max_stage_bytes / mean if mean else 1.0

    def fits(self) -> bool:
        return self.max_stage_bytes <= self.device_budget


class PlanningError(ValueError):
    """No valid pipeline partition exists for the given budget."""


def _stage_cost(
    layers: list[LayerProfile], optimizer_state_multiplier: float
) -> int:
    # weights/grads/state add up; activations add up (all stages hold
    # their activations simultaneously in a 1F1B schedule); scratch is
    # the max since only one op runs at a time per stage
    weights = sum(
        int(p.parameter_bytes * (2 + optimizer_state_multiplier))
        for p in layers
    )
    activations = sum(p.activation_bytes for p in layers)
    scratch = max((p.workspace_bytes for p in layers), default=0)
    return weights + activations + scratch


def plan_pipeline(
    memory_map: ModelMemoryMap,
    device: DeviceSpec,
    num_stages: int,
    optimizer_state_multiplier: float = 2.0,
) -> PipelinePlan:
    """Partition layers into ``num_stages`` contiguous stages minimizing
    the maximum stage memory (classic linear-partition DP).

    Raises :class:`PlanningError` when even the optimal partition exceeds
    the device budget (use more stages or a frugal optimizer).
    """
    layers = memory_map.layers
    if num_stages < 1:
        raise ValueError("need at least one stage")
    if num_stages > len(layers):
        raise PlanningError(
            f"cannot split {len(layers)} layers into {num_stages} stages"
        )

    count = len(layers)

    def cost(start: int, end: int) -> int:  # [start, end)
        return _stage_cost(layers[start:end], optimizer_state_multiplier)

    # dp[k][i] = minimal possible max-stage-cost splitting layers[:i] into k
    infinity = float("inf")
    dp = [[infinity] * (count + 1) for _ in range(num_stages + 1)]
    cut = [[0] * (count + 1) for _ in range(num_stages + 1)]
    dp[0][0] = 0
    for k in range(1, num_stages + 1):
        for i in range(k, count + 1):
            for j in range(k - 1, i):
                candidate = max(dp[k - 1][j], cost(j, i))
                if candidate < dp[k][i]:
                    dp[k][i] = candidate
                    cut[k][i] = j
    if dp[num_stages][count] is infinity:
        raise PlanningError("no feasible partition")  # pragma: no cover

    # reconstruct
    bounds = [count]
    k, i = num_stages, count
    while k > 0:
        j = cut[k][i]
        bounds.append(j)
        i, k = j, k - 1
    bounds.reverse()
    stages = []
    for index in range(num_stages):
        start, end = bounds[index], bounds[index + 1]
        stages.append(
            PipelineStage(
                index=index,
                layers=tuple(p.name for p in layers[start:end]),
                memory_bytes=cost(start, end),
            )
        )
    plan = PipelinePlan(
        stages=tuple(stages),
        device_budget=device.job_budget(),
        optimizer_state_multiplier=optimizer_state_multiplier,
    )
    if not plan.fits():
        raise PlanningError(
            f"optimal {num_stages}-stage partition needs "
            f"{format_bytes(plan.max_stage_bytes)} per device, budget is "
            f"{format_bytes(plan.device_budget)}"
        )
    return plan


def minimum_stages(
    memory_map: ModelMemoryMap,
    device: DeviceSpec,
    max_stages: int = 32,
    optimizer_state_multiplier: float = 2.0,
) -> PipelinePlan:
    """Smallest stage count whose optimal partition fits the device."""
    last_error: PlanningError | None = None
    for num_stages in range(1, min(max_stages, len(memory_map.layers)) + 1):
        try:
            return plan_pipeline(
                memory_map, device, num_stages, optimizer_state_multiplier
            )
        except PlanningError as error:
            last_error = error
    raise PlanningError(
        f"model does not fit in {max_stages} stages: {last_error}"
    )
