"""Distributed-training preparation (paper §6.2): per-layer profiles and
pipeline-stage planning from a single-node CPU profile."""

from .planner import (
    PipelinePlan,
    PipelineStage,
    PlanningError,
    minimum_stages,
    plan_pipeline,
)
from .profiles import LayerProfile, ModelMemoryMap, extract_layer_profiles

__all__ = [
    "LayerProfile",
    "ModelMemoryMap",
    "PipelinePlan",
    "PipelineStage",
    "PlanningError",
    "extract_layer_profiles",
    "minimum_stages",
    "plan_pipeline",
]
