"""Per-layer memory profiles — the §6.2 distributed foundation.

The paper argues that planning model/pipeline parallelism "would be based
on guesswork" without per-layer memory data, and that xMem's Analyzer
already produces it: every activation block is attributed to the module
that allocated it, while parameters (and hence gradients and optimizer
state) are read from the model structure.  This module combines the two
into the per-layer profiles a partitioner consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import units
from ..core.analyzer import AnalyzedTrace
from ..core.lifecycle import peak_live_bytes
from ..framework.module import Module
from ..framework.tensor import TensorRole


@dataclass
class LayerProfile:
    """Memory demand of one top-level layer across an iteration."""

    name: str
    parameter_bytes: int = 0
    activation_bytes: int = 0  # peak concurrent activations attributed here
    workspace_bytes: int = 0  # largest transient scratch observed
    num_blocks: int = 0
    #: first allocation timestamp attributed here — execution order
    first_ts: int = 2**62

    @property
    def gradient_bytes(self) -> int:
        """Parameter gradients mirror parameter bytes."""
        return self.parameter_bytes

    def training_bytes(self, optimizer_state_multiplier: float = 0.0) -> int:
        """Memory when this layer trains on one device: weights + grads +
        optimizer state + its activations and scratch."""
        return int(
            self.parameter_bytes * (2 + optimizer_state_multiplier)
            + self.activation_bytes
            + self.workspace_bytes
        )

    def __str__(self) -> str:
        return (
            f"{self.name}: params={units.format_bytes(self.parameter_bytes)} "
            f"act={units.format_bytes(self.activation_bytes)} "
            f"ws={units.format_bytes(self.workspace_bytes)}"
        )


def _layer_key(module_path: str | None, depth: int) -> str | None:
    """Truncate an attribution path to pipeline-stage granularity.

    Attribution paths come from the python_function stack and look like
    ``model/distilgpt2/block3/attn`` (plan root, model module, then
    children); ``depth`` keeps ``depth`` segments below the model module,
    matching the keys :func:`_accumulate_params` derives from the module
    tree.  Paths outside the model (the autograd engine) yield None;
    top-level siblings of the model (the loss head) keep their own name.
    """
    if not module_path or module_path.startswith("autograd"):
        return None
    segments = [s for s in module_path.split("/") if s]
    if len(segments) < 2:
        return None
    keep = segments[2 : 2 + depth]
    if keep:
        return "/".join(keep)
    return segments[1]


def extract_layer_profiles(
    analyzed: AnalyzedTrace,
    model: Module,
    depth: int = 2,
) -> "ModelMemoryMap":
    """Build per-layer profiles from an analyzed trace plus the model.

    Activation bytes are the *peak concurrent* footprint per layer
    (computed from block lifecycles), not a sum — the quantity pipeline
    planning actually needs.
    """
    profiles: dict[str, LayerProfile] = {}
    activation_blocks: dict[str, list] = {}
    for item in analyzed.blocks:
        key = _layer_key(item.module_path, depth)
        if key is None:
            continue
        profile = profiles.setdefault(key, LayerProfile(name=key))
        profile.num_blocks += 1
        profile.first_ts = min(profile.first_ts, item.block.alloc_ts)
        if item.role is TensorRole.TEMPORARY:
            profile.workspace_bytes = max(
                profile.workspace_bytes, item.block.size
            )
        elif item.role in (TensorRole.ACTIVATION, TensorRole.SAVED):
            activation_blocks.setdefault(key, []).append(item.block)
    for key, blocks in activation_blocks.items():
        profiles[key].activation_bytes = peak_live_bytes(blocks)

    # parameters per layer from the model structure
    for child in model.children():
        _accumulate_params(child, child.name, profiles, depth)

    # pipeline stages need layers in *execution* order
    ordered = sorted(profiles.values(), key=lambda p: (p.first_ts, p.name))
    return ModelMemoryMap(layers=ordered)


def _accumulate_params(
    module: Module,
    path: str,
    profiles: dict[str, LayerProfile],
    depth: int,
    level: int = 1,
) -> None:
    """Assign parameter bytes to the same truncated keys as the trace."""
    if level >= depth or not module.children():
        key = "/".join(path.split("/")[:depth])
        profile = profiles.setdefault(key, LayerProfile(name=key))
        profile.parameter_bytes += module.parameter_bytes()
        return
    own = module.own_param_bytes()
    if own:
        profile = profiles.setdefault(path, LayerProfile(name=path))
        profile.parameter_bytes += own
    for child in module.children():
        _accumulate_params(
            child, f"{path}/{child.name}", profiles, depth, level + 1
        )


@dataclass
class ModelMemoryMap:
    """All layer profiles of one workload plus convenience totals."""

    layers: list[LayerProfile] = field(default_factory=list)

    def total_parameter_bytes(self) -> int:
        return sum(p.parameter_bytes for p in self.layers)

    def total_activation_bytes(self) -> int:
        return sum(p.activation_bytes for p in self.layers)

    def layer(self, name: str) -> LayerProfile:
        for profile in self.layers:
            if profile.name == name:
                return profile
        raise KeyError(name)

    def __len__(self) -> int:
        return len(self.layers)
