"""Memory-lifecycle reconstruction (paper §3.2).

Raw ``cpu_instant_event`` records are a flat stream of signed byte deltas
keyed by address.  This module pairs allocations with their deallocations
— handling address reuse — to produce :class:`MemoryBlock` lifecycles:
size, CPU allocation time, CPU deallocation time (or "persistent" when no
free appears in the trace).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from ..errors import LifecycleError
from ..trace.events import MemoryEvent

_block_ids = itertools.count(1)


@dataclass(frozen=True)
class MemoryBlock:
    """One reconstructed allocation lifecycle ("memory block" in the paper)."""

    addr: int
    size: int
    alloc_ts: int
    free_ts: Optional[int] = None  # None -> persistent for the trace
    block_id: int = field(default_factory=lambda: next(_block_ids))

    @property
    def persistent(self) -> bool:
        return self.free_ts is None

    def lifespan_within(self, start: int, end: int) -> bool:
        if self.free_ts is None:
            return False
        return start <= self.alloc_ts and self.free_ts <= end

    def overlaps(self, start: int, end: int) -> bool:
        free_ts = self.free_ts if self.free_ts is not None else end
        return self.alloc_ts <= end and free_ts >= start

    def with_free_ts(self, free_ts: Optional[int]) -> "MemoryBlock":
        """Copy with an adjusted deallocation time (keeps the block id)."""
        return replace(self, free_ts=free_ts)


@dataclass(frozen=True)
class LifecycleReport:
    """Result of lifecycle reconstruction plus diagnostics."""

    blocks: list[MemoryBlock]
    #: frees that matched no live allocation (e.g. buffers allocated before
    #: profiling started) — counted, not fatal
    unmatched_frees: int
    #: reused addresses observed (sanity signal for tests)
    reused_addresses: int


def reconstruct_lifecycles(
    memory_events: Iterable[MemoryEvent],
    strict: bool = False,
) -> LifecycleReport:
    """Pair allocation/deallocation events into lifecycles.

    Events must be in timestamp order.  With ``strict=True``, frees that
    match no live allocation and size-mismatched frees raise
    :class:`LifecycleError`; otherwise they are tolerated and counted, the
    way the paper's Analyzer must tolerate truncated traces.
    """
    open_blocks: dict[int, tuple[int, int]] = {}  # addr -> (alloc_ts, size)
    seen_addrs: set[int] = set()
    blocks: list[MemoryBlock] = []
    unmatched = 0
    reused = 0
    last_ts = None
    for event in memory_events:
        if last_ts is not None and event.ts < last_ts:
            raise LifecycleError(
                f"memory events out of order at ts={event.ts}"
            )
        last_ts = event.ts
        if event.is_alloc:
            if event.addr in open_blocks:
                if strict:
                    raise LifecycleError(
                        f"allocation at live address {event.addr:#x} "
                        f"(ts={event.ts})"
                    )
                # tolerate: close the phantom block as freed here
                alloc_ts, size = open_blocks.pop(event.addr)
                blocks.append(
                    MemoryBlock(
                        addr=event.addr,
                        size=size,
                        alloc_ts=alloc_ts,
                        free_ts=event.ts,
                    )
                )
            if event.addr in seen_addrs:
                reused += 1
            seen_addrs.add(event.addr)
            open_blocks[event.addr] = (event.ts, event.size)
        else:
            record = open_blocks.pop(event.addr, None)
            if record is None:
                unmatched += 1
                if strict:
                    raise LifecycleError(
                        f"free of unknown address {event.addr:#x} "
                        f"(ts={event.ts})"
                    )
                continue
            alloc_ts, size = record
            if size != event.size and strict:
                raise LifecycleError(
                    f"free size {event.size} != alloc size {size} at "
                    f"{event.addr:#x}"
                )
            blocks.append(
                MemoryBlock(
                    addr=event.addr,
                    size=size,
                    alloc_ts=alloc_ts,
                    free_ts=event.ts,
                )
            )
    for addr, (alloc_ts, size) in open_blocks.items():
        blocks.append(
            MemoryBlock(addr=addr, size=size, alloc_ts=alloc_ts, free_ts=None)
        )
    blocks.sort(key=lambda b: (b.alloc_ts, b.block_id))
    return LifecycleReport(
        blocks=blocks, unmatched_frees=unmatched, reused_addresses=reused
    )


def peak_live_bytes(blocks: Iterable[MemoryBlock]) -> int:
    """Peak of the sum of live block sizes (tensor-level peak, no allocator)."""
    deltas: list[tuple[int, int, int]] = []
    horizon = 0
    materialized = list(blocks)
    for block in materialized:
        horizon = max(
            horizon,
            block.alloc_ts,
            block.free_ts if block.free_ts is not None else 0,
        )
    horizon += 1
    for block in materialized:
        # frees sort before allocs at equal timestamps (order=0 vs 1), the
        # conservative reading of simultaneous events
        deltas.append((block.alloc_ts, 1, block.size))
        free_ts = block.free_ts if block.free_ts is not None else horizon
        deltas.append((free_ts, 0, -block.size))
    deltas.sort()
    live = peak = 0
    for _, _, delta in deltas:
        live += delta
        peak = max(peak, live)
    return peak
