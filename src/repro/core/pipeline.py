"""The xMem pipeline as explicit stages with intermediate-artifact caches.

:class:`EstimationPipeline` splits ``XMemEstimator.estimate`` into its four
stages — ``profile -> analyze -> orchestrate -> simulate`` — and gives the
first three content-addressed caches (:class:`PipelineCache`):

* **profile** — traces keyed by (model, optimizer, batch size, zero-grad
  placement, set_to_none, iterations): the full workload/loop identity the
  CPU profiler consumes;
* **analyze** — analyzed traces keyed by the trace's content fingerprint
  plus the analyzer's strictness;
* **orchestrate** — replayable sequences keyed by the trace fingerprint
  plus the orchestration rule set.

Only the simulator — the stage that actually depends on the allocator
configuration, the two-level ablation knob, and the accounting mode —
re-runs when requests differ in those knobs alone, so a batch-size sweep
profiles once per size and an allocator ablation profiles once in total.
Caching at each stage instead of only at the service edge is the
middleware-style composition the paper argues for: the final-result cache
stays exact, and the stage caches recover the shared upstream work that
exact fingerprints cannot.

Each store dedups concurrent misses per key (stage-level single-flight),
so a cold fleet warming up does not profile the same workload N times.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..allocator.constants import DEFAULT_CONFIG, AllocatorConfig
from ..runtime.loop import TrainLoopConfig
from ..runtime.profiler import DEFAULT_PROFILE_ITERATIONS, profile_on_cpu
from ..trace.reader import Trace
from ..workload import WorkloadConfig
from .analyzer import AnalyzedTrace, Analyzer
from .artifacts import resolve_artifact_store
from .orchestrator import (
    MemoryOrchestrator,
    OrchestratedSequence,
    sequence_fingerprint,
)
from .simulator import MemorySimulator, SimulationResult

#: Stage names, in execution order (also the keys of ``stage_seconds``).
PROFILE = "profile"
ANALYZE = "analyze"
ORCHESTRATE = "orchestrate"
SIMULATE = "simulate"
STAGES = (PROFILE, ANALYZE, ORCHESTRATE, SIMULATE)

#: Attribute memoizing a trace's content fingerprint on the instance.
_TRACE_KEY_ATTR = "_xmem_trace_key"


def trace_fingerprint(trace: Trace) -> str:
    """Stable content address of a trace (memoized on the instance).

    Traces produced by the pipeline's own profile stage carry a key derived
    from the profile-cache key, so they are never re-hashed; caller-supplied
    traces are hashed over their spans, memory events, and metadata once.
    """
    cached = trace.__dict__.get(_TRACE_KEY_ATTR)
    if cached is not None:
        return cached
    # one digest.update over a single joined buffer: per-span update calls
    # dominate hashing cost on large traces (satellite of PR 9)
    lines: list[str] = []
    for span in trace.spans:
        lines.append(
            f"s|{span.name}|{span.category.value}|{span.ts}|{span.dur}"
            f"|{span.tid}\n"
        )
    for event in trace.memory_events:
        lines.append(f"m|{event.ts}|{event.addr}|{event.nbytes}\n")
    for key in sorted(trace.metadata):
        lines.append(f"d|{key}|{trace.metadata[key]}\n")
    digest = hashlib.sha256("".join(lines).encode("utf-8"))
    fingerprint = "content:" + digest.hexdigest()[:32]
    # Trace is a frozen dataclass; memoize past the frozen guard — the
    # fingerprint is derived state, not a field
    object.__setattr__(trace, _TRACE_KEY_ATTR, fingerprint)
    return fingerprint


#: Where a stage's artifact came from (``stage_sources`` vocabulary).
SOURCE_MEMORY = "memory"  # in-process L1 hit (or caller-supplied input)
SOURCE_STORE = "store"  # persistent artifact-store (L2) hit
SOURCE_COMPUTE = "compute"  # actually built this time


class _StageStore:
    """Thread-safe bounded LRU with per-key single-flight on misses.

    ``artifacts`` attaches an optional persistent L2
    (:class:`~repro.core.artifacts.ArtifactStore`): on an L1 miss the
    single-flight owner consults the store before building, and publishes
    its build back, so later processes start warm.
    """

    def __init__(self, max_entries: int, stage: str = "", artifacts=None):
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        self.max_entries = max_entries
        self.stage = stage
        self._artifacts = artifacts
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        self._inflight: dict[Any, threading.Event] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.store_hits = 0

    def get_or_compute(
        self, key: Any, build: Callable[[], Any]
    ) -> tuple[Any, bool]:
        """Return ``(value, was_cached)``; concurrent misses build once."""
        value, source = self.get_or_compute_traced(key, build)
        return value, source is not SOURCE_COMPUTE

    def get_or_compute_traced(
        self, key: Any, build: Callable[[], Any]
    ) -> tuple[Any, str]:
        """Return ``(value, source)`` with the artifact's provenance."""
        while True:
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return self._entries[key], SOURCE_MEMORY
                gate = self._inflight.get(key)
                if gate is None:
                    gate = self._inflight[key] = threading.Event()
                    owner = True
                else:
                    owner = False
            if not owner:
                # another thread is building this key: wait, then re-check
                # (its success is our hit; its failure makes us the owner)
                gate.wait()
                continue
            # the gate MUST be released on every exit from here on — a
            # builder that raises (or a bug in the bookkeeping itself)
            # would otherwise strand every waiter on gate.wait() forever
            try:
                source = SOURCE_COMPUTE
                if self._artifacts is not None:
                    value, stored = self._artifacts.get_or_compute(
                        self.stage, key, build
                    )
                    if stored:
                        source = SOURCE_STORE
                        self.store_hits += 1
                else:
                    value = build()
                with self._lock:
                    self.misses += 1
                    if self.max_entries > 0:
                        self._entries[key] = value
                        self._entries.move_to_end(key)
                        while len(self._entries) > self.max_entries:
                            self._entries.popitem(last=False)
                            self.evictions += 1
                return value, source
            finally:
                with self._lock:
                    self._inflight.pop(key, None)
                gate.set()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "store_hits": self.store_hits,
                "size": len(self._entries),
                "max_entries": self.max_entries,
            }


class PipelineCache:
    """The three intermediate-artifact stores of one staged pipeline.

    Safe to share between estimators (e.g. every shard-local worker of one
    service): all stores are internally locked, and the cached artifacts —
    traces, analyzed traces, orchestrated sequences — are treated as
    immutable by every pipeline stage.
    """

    def __init__(
        self,
        max_traces: int = 16,
        max_analyses: int = 16,
        max_sequences: int = 64,
        max_simulations: int = 64,
        artifact_store=None,
    ):
        store = resolve_artifact_store(artifact_store)
        self.artifacts = store
        self.traces = _StageStore(max_traces, stage=PROFILE, artifacts=store)
        self.analyses = _StageStore(
            max_analyses, stage=ANALYZE, artifacts=store
        )
        self.sequences = _StageStore(
            max_sequences, stage=ORCHESTRATE, artifacts=store
        )
        # peak profiles hold per-event arrays, so this store is L1-only —
        # persisting them would store more bytes than re-deriving costs
        self.simulations = _StageStore(max_simulations, stage=SIMULATE)

    def attach_artifact_store(self, artifact_store) -> None:
        """Wire a persistent L2 under the profile/analyze/orchestrate
        stores of an already-built cache (idempotent)."""
        store = resolve_artifact_store(artifact_store)
        self.artifacts = store
        for stage_store in (self.traces, self.analyses, self.sequences):
            stage_store._artifacts = store

    def clear(self) -> None:
        self.traces.clear()
        self.analyses.clear()
        self.sequences.clear()
        self.simulations.clear()

    def stats(self) -> dict:
        """JSON-ready hit/miss/eviction counters per stage store."""
        stats = {
            "traces": self.traces.stats(),
            "analyses": self.analyses.stats(),
            "sequences": self.sequences.stats(),
            "simulations": self.simulations.stats(),
        }
        if self.artifacts is not None:
            stats["artifacts"] = self.artifacts.stats()
        return stats


@dataclass
class PipelineRun:
    """One staged estimation: every intermediate artifact plus timings."""

    trace: Trace
    analyzed: AnalyzedTrace
    sequence: OrchestratedSequence
    simulation: SimulationResult
    #: wall-clock seconds spent in each stage (cache hits cost ~0)
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: True where the stage was answered from the cache (or, for profile,
    #: from a caller-supplied trace)
    stage_cached: dict[str, bool] = field(default_factory=dict)
    #: artifact provenance per stage: "memory" / "store" / "compute"
    stage_sources: dict[str, str] = field(default_factory=dict)

    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())


class EstimationPipeline:
    """Runs the four xMem stages with optional per-stage caching.

    ``cache=None`` disables stage caching entirely — every call recomputes
    the full chain, byte-identical to the pre-staged estimator.
    """

    def __init__(
        self,
        iterations: int = DEFAULT_PROFILE_ITERATIONS,
        analyzer: Optional[Analyzer] = None,
        orchestrator: Optional[MemoryOrchestrator] = None,
        cache: Optional[PipelineCache] = None,
    ):
        if iterations < 1:
            raise ValueError("profiling needs at least one iteration")
        self.iterations = iterations
        self.analyzer = analyzer if analyzer is not None else Analyzer()
        self.orchestrator = (
            orchestrator if orchestrator is not None else MemoryOrchestrator()
        )
        self.cache = cache
        self._rules_key_memo: Optional[tuple] = None

    # ------------------------------------------------------------------
    # cache keys
    # ------------------------------------------------------------------
    def profile_key(self, workload: WorkloadConfig) -> tuple:
        """Everything the CPU profiler's output depends on."""
        return ("profile", *workload.to_key(), self.iterations)

    def rules_key(self) -> tuple:
        """Identity of the orchestration rule set (and analyzer mode).

        Rules are identified by class + name; a custom rule with tunable
        state should encode that state in its ``name`` to stay cacheable.
        Memoized per (rule set, strictness) — this runs on every
        orchestrate lookup, so rebuilding the strings each call shows up
        on the warm path.
        """
        strict = bool(self.analyzer.strict)
        rules = self.orchestrator.rules
        memo = self._rules_key_memo
        if memo is not None and memo[0] is rules and memo[1] == strict:
            return memo[2]
        key = (
            strict,
            tuple(
                f"{type(rule).__name__}:{rule.name}" for rule in rules
            ),
        )
        self._rules_key_memo = (rules, strict, key)
        return key

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------
    def profile(self, workload: WorkloadConfig) -> Trace:
        """Stage 1: CPU-profile the workload (cached by workload identity)."""
        return self._profile_stage(workload)[0]

    def analyze(self, trace: Trace) -> AnalyzedTrace:
        """Stage 2: lifecycle + attribution analysis (cached by content)."""
        return self._analyze_stage(trace)[0]

    def orchestrate(self, analyzed: AnalyzedTrace) -> OrchestratedSequence:
        """Stage 3: rule-refined replayable sequence (cached by trace+rules)."""
        return self._orchestrate_stage(analyzed)[0]

    def simulate(
        self,
        sequence: OrchestratedSequence,
        allocator_config: AllocatorConfig = DEFAULT_CONFIG,
        two_level: bool = True,
        capacity_bytes: Optional[int] = None,
        curve: bool = True,
    ) -> SimulationResult:
        """Stage 4: allocator replay, delta-cached on the peak-only path.

        ``curve=True`` always replays (the usage curve is the product).
        ``curve=False`` — the serving fast path — goes through the
        simulate cache: one unbounded peak-profile replay per (sequence,
        allocator config, two-level knob) serves every later peak query
        for the same knobs in O(1), including capacity-bounded queries
        that the profile proves cannot OOM.  A query whose capacity the
        unbounded peak exceeds falls back to a real bounded replay (the
        reclaim/OOM machinery diverges from the unbounded run there).
        """
        return self._simulate_stage(
            sequence, allocator_config, two_level, capacity_bytes, curve
        )[0]

    def _simulate_stage(
        self,
        sequence: OrchestratedSequence,
        allocator_config: AllocatorConfig,
        two_level: bool,
        capacity_bytes: Optional[int],
        curve: bool,
    ) -> tuple[SimulationResult, str]:
        if curve or self.cache is None:
            result = MemorySimulator(
                capacity_bytes=capacity_bytes,
                allocator_config=allocator_config,
                two_level=two_level,
            ).replay(sequence, record_timeline=curve)
            return result, SOURCE_COMPUTE
        key = (sequence_fingerprint(sequence), allocator_config, two_level)
        profile, source = self.cache.simulations.get_or_compute_traced(
            key,
            lambda: MemorySimulator(
                allocator_config=allocator_config, two_level=two_level
            ).replay_peak_profile(sequence),
        )
        result = profile.query(capacity_bytes)
        if result is None:
            # the capacity bound would trip OOM: the closed form can only
            # screen for that; reclaim behaviour needs an honest replay
            result = MemorySimulator(
                capacity_bytes=capacity_bytes,
                allocator_config=allocator_config,
                two_level=two_level,
            ).replay(sequence, record_timeline=False)
            return result, SOURCE_COMPUTE
        return result, source

    # ------------------------------------------------------------------
    # the full chain
    # ------------------------------------------------------------------
    def run(
        self,
        workload: WorkloadConfig,
        trace: Optional[Trace] = None,
        allocator_config: AllocatorConfig = DEFAULT_CONFIG,
        two_level: bool = True,
        capacity_bytes: Optional[int] = None,
        curve: bool = True,
    ) -> PipelineRun:
        """Run all four stages; ``trace`` short-circuits profiling."""
        stage_seconds: dict[str, float] = {}
        stage_cached: dict[str, bool] = {}
        stage_sources: dict[str, str] = {}

        started = time.perf_counter()
        if trace is None:
            trace, source = self._profile_stage(workload)
        else:
            source = SOURCE_MEMORY  # supplied by the caller: cost nothing
        stage_seconds[PROFILE] = time.perf_counter() - started
        stage_cached[PROFILE] = source is not SOURCE_COMPUTE
        stage_sources[PROFILE] = source

        started = time.perf_counter()
        analyzed, source = self._analyze_stage(trace)
        stage_seconds[ANALYZE] = time.perf_counter() - started
        stage_cached[ANALYZE] = source is not SOURCE_COMPUTE
        stage_sources[ANALYZE] = source

        started = time.perf_counter()
        sequence, source = self._orchestrate_stage(analyzed)
        stage_seconds[ORCHESTRATE] = time.perf_counter() - started
        stage_cached[ORCHESTRATE] = source is not SOURCE_COMPUTE
        stage_sources[ORCHESTRATE] = source

        started = time.perf_counter()
        simulation, source = self._simulate_stage(
            sequence, allocator_config, two_level, capacity_bytes, curve
        )
        stage_seconds[SIMULATE] = time.perf_counter() - started
        stage_cached[SIMULATE] = source is not SOURCE_COMPUTE
        stage_sources[SIMULATE] = source

        return PipelineRun(
            trace=trace,
            analyzed=analyzed,
            sequence=sequence,
            simulation=simulation,
            stage_seconds=stage_seconds,
            stage_cached=stage_cached,
            stage_sources=stage_sources,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _profile_stage(self, workload: WorkloadConfig) -> tuple[Trace, str]:
        if self.cache is None:
            return self._run_profiler(workload), SOURCE_COMPUTE
        return self.cache.traces.get_or_compute_traced(
            self.profile_key(workload), lambda: self._run_profiler(workload)
        )

    def _run_profiler(self, workload: WorkloadConfig) -> Trace:
        trace = profile_on_cpu(
            workload.model,
            batch_size=workload.batch_size,
            optimizer=workload.optimizer,
            loop=TrainLoopConfig(
                iterations=self.iterations,
                zero_grad_position=workload.zero_grad_position,
                set_to_none=workload.set_to_none,
            ),
            iterations=self.iterations,
        )
        # the profile key fully determines this trace: skip content hashing
        key = "|".join(str(part) for part in self.profile_key(workload))
        object.__setattr__(trace, _TRACE_KEY_ATTR, key)
        return trace

    def _analyze_stage(self, trace: Trace) -> tuple[AnalyzedTrace, str]:
        if self.cache is None:
            return self.analyzer.analyze(trace), SOURCE_COMPUTE
        key = (trace_fingerprint(trace), bool(self.analyzer.strict))
        return self.cache.analyses.get_or_compute_traced(
            key, lambda: self.analyzer.analyze(trace)
        )

    def _orchestrate_stage(
        self, analyzed: AnalyzedTrace
    ) -> tuple[OrchestratedSequence, str]:
        if self.cache is None or analyzed.trace is None:
            return self.orchestrator.orchestrate(analyzed), SOURCE_COMPUTE
        key = (trace_fingerprint(analyzed.trace), self.rules_key())
        return self.cache.sequences.get_or_compute_traced(
            key, lambda: self._run_orchestrator(analyzed, key)
        )

    def _run_orchestrator(
        self, analyzed: AnalyzedTrace, key: tuple
    ) -> OrchestratedSequence:
        sequence = self.orchestrator.orchestrate(analyzed)
        # the orchestrate key fully determines this sequence: stamp it as
        # the sequence fingerprint so the simulate cache keys stably
        # (including across processes) without hashing the event list
        sequence.fingerprint = f"orch:{key!r}"
        return sequence
