"""The xMem pipeline as explicit stages with intermediate-artifact caches.

:class:`EstimationPipeline` splits ``XMemEstimator.estimate`` into its four
stages — ``profile -> analyze -> orchestrate -> simulate`` — and gives the
first three content-addressed caches (:class:`PipelineCache`):

* **profile** — traces keyed by (model, optimizer, batch size, zero-grad
  placement, set_to_none, iterations): the full workload/loop identity the
  CPU profiler consumes;
* **analyze** — analyzed traces keyed by the trace's content fingerprint
  plus the analyzer's strictness;
* **orchestrate** — replayable sequences keyed by the trace fingerprint
  plus the orchestration rule set.

Only the simulator — the stage that actually depends on the allocator
configuration, the two-level ablation knob, and the accounting mode —
re-runs when requests differ in those knobs alone, so a batch-size sweep
profiles once per size and an allocator ablation profiles once in total.
Caching at each stage instead of only at the service edge is the
middleware-style composition the paper argues for: the final-result cache
stays exact, and the stage caches recover the shared upstream work that
exact fingerprints cannot.

Each store dedups concurrent misses per key (stage-level single-flight),
so a cold fleet warming up does not profile the same workload N times.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..allocator.constants import DEFAULT_CONFIG, AllocatorConfig
from ..runtime.loop import TrainLoopConfig
from ..runtime.profiler import DEFAULT_PROFILE_ITERATIONS, profile_on_cpu
from ..trace.reader import Trace
from ..workload import WorkloadConfig
from .analyzer import AnalyzedTrace, Analyzer
from .orchestrator import MemoryOrchestrator, OrchestratedSequence
from .simulator import MemorySimulator, SimulationResult

#: Stage names, in execution order (also the keys of ``stage_seconds``).
PROFILE = "profile"
ANALYZE = "analyze"
ORCHESTRATE = "orchestrate"
SIMULATE = "simulate"
STAGES = (PROFILE, ANALYZE, ORCHESTRATE, SIMULATE)

#: Attribute memoizing a trace's content fingerprint on the instance.
_TRACE_KEY_ATTR = "_xmem_trace_key"


def trace_fingerprint(trace: Trace) -> str:
    """Stable content address of a trace (memoized on the instance).

    Traces produced by the pipeline's own profile stage carry a key derived
    from the profile-cache key, so they are never re-hashed; caller-supplied
    traces are hashed over their spans, memory events, and metadata once.
    """
    cached = trace.__dict__.get(_TRACE_KEY_ATTR)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for span in trace.spans:
        digest.update(
            f"s|{span.name}|{span.category.value}|{span.ts}|{span.dur}"
            f"|{span.tid}\n".encode("utf-8")
        )
    for event in trace.memory_events:
        digest.update(
            f"m|{event.ts}|{event.addr}|{event.nbytes}\n".encode("utf-8")
        )
    for key in sorted(trace.metadata):
        digest.update(f"d|{key}|{trace.metadata[key]}\n".encode("utf-8"))
    fingerprint = "content:" + digest.hexdigest()[:32]
    # Trace is a frozen dataclass; memoize past the frozen guard — the
    # fingerprint is derived state, not a field
    object.__setattr__(trace, _TRACE_KEY_ATTR, fingerprint)
    return fingerprint


class _StageStore:
    """Thread-safe bounded LRU with per-key single-flight on misses."""

    def __init__(self, max_entries: int):
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        self._inflight: dict[Any, threading.Event] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_compute(
        self, key: Any, build: Callable[[], Any]
    ) -> tuple[Any, bool]:
        """Return ``(value, was_cached)``; concurrent misses build once."""
        while True:
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return self._entries[key], True
                gate = self._inflight.get(key)
                if gate is None:
                    gate = self._inflight[key] = threading.Event()
                    owner = True
                else:
                    owner = False
            if not owner:
                # another thread is building this key: wait, then re-check
                # (its success is our hit; its failure makes us the owner)
                gate.wait()
                continue
            try:
                value = build()
            except BaseException:
                with self._lock:
                    self._inflight.pop(key, None)
                gate.set()
                raise
            with self._lock:
                self.misses += 1
                if self.max_entries > 0:
                    self._entries[key] = value
                    self._entries.move_to_end(key)
                    while len(self._entries) > self.max_entries:
                        self._entries.popitem(last=False)
                        self.evictions += 1
                self._inflight.pop(key, None)
            gate.set()
            return value, False

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "max_entries": self.max_entries,
            }


class PipelineCache:
    """The three intermediate-artifact stores of one staged pipeline.

    Safe to share between estimators (e.g. every shard-local worker of one
    service): all stores are internally locked, and the cached artifacts —
    traces, analyzed traces, orchestrated sequences — are treated as
    immutable by every pipeline stage.
    """

    def __init__(
        self,
        max_traces: int = 16,
        max_analyses: int = 16,
        max_sequences: int = 64,
    ):
        self.traces = _StageStore(max_traces)
        self.analyses = _StageStore(max_analyses)
        self.sequences = _StageStore(max_sequences)

    def clear(self) -> None:
        self.traces.clear()
        self.analyses.clear()
        self.sequences.clear()

    def stats(self) -> dict:
        """JSON-ready hit/miss/eviction counters per stage store."""
        return {
            "traces": self.traces.stats(),
            "analyses": self.analyses.stats(),
            "sequences": self.sequences.stats(),
        }


@dataclass
class PipelineRun:
    """One staged estimation: every intermediate artifact plus timings."""

    trace: Trace
    analyzed: AnalyzedTrace
    sequence: OrchestratedSequence
    simulation: SimulationResult
    #: wall-clock seconds spent in each stage (cache hits cost ~0)
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: True where the stage was answered from the cache (or, for profile,
    #: from a caller-supplied trace)
    stage_cached: dict[str, bool] = field(default_factory=dict)

    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())


class EstimationPipeline:
    """Runs the four xMem stages with optional per-stage caching.

    ``cache=None`` disables stage caching entirely — every call recomputes
    the full chain, byte-identical to the pre-staged estimator.
    """

    def __init__(
        self,
        iterations: int = DEFAULT_PROFILE_ITERATIONS,
        analyzer: Optional[Analyzer] = None,
        orchestrator: Optional[MemoryOrchestrator] = None,
        cache: Optional[PipelineCache] = None,
    ):
        if iterations < 1:
            raise ValueError("profiling needs at least one iteration")
        self.iterations = iterations
        self.analyzer = analyzer if analyzer is not None else Analyzer()
        self.orchestrator = (
            orchestrator if orchestrator is not None else MemoryOrchestrator()
        )
        self.cache = cache

    # ------------------------------------------------------------------
    # cache keys
    # ------------------------------------------------------------------
    def profile_key(self, workload: WorkloadConfig) -> tuple:
        """Everything the CPU profiler's output depends on."""
        return ("profile", *workload.to_key(), self.iterations)

    def rules_key(self) -> tuple:
        """Identity of the orchestration rule set (and analyzer mode).

        Rules are identified by class + name; a custom rule with tunable
        state should encode that state in its ``name`` to stay cacheable.
        """
        return (
            bool(self.analyzer.strict),
            tuple(
                f"{type(rule).__name__}:{rule.name}"
                for rule in self.orchestrator.rules
            ),
        )

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------
    def profile(self, workload: WorkloadConfig) -> Trace:
        """Stage 1: CPU-profile the workload (cached by workload identity)."""
        return self._profile_stage(workload)[0]

    def analyze(self, trace: Trace) -> AnalyzedTrace:
        """Stage 2: lifecycle + attribution analysis (cached by content)."""
        return self._analyze_stage(trace)[0]

    def orchestrate(self, analyzed: AnalyzedTrace) -> OrchestratedSequence:
        """Stage 3: rule-refined replayable sequence (cached by trace+rules)."""
        return self._orchestrate_stage(analyzed)[0]

    def simulate(
        self,
        sequence: OrchestratedSequence,
        allocator_config: AllocatorConfig = DEFAULT_CONFIG,
        two_level: bool = True,
        capacity_bytes: Optional[int] = None,
        curve: bool = True,
    ) -> SimulationResult:
        """Stage 4: allocator replay — never cached; this is the stage that
        depends on the simulation knobs, and with a warm upstream it is the
        only work an estimate costs."""
        simulator = MemorySimulator(
            capacity_bytes=capacity_bytes,
            allocator_config=allocator_config,
            two_level=two_level,
        )
        return simulator.replay(sequence, record_timeline=curve)

    # ------------------------------------------------------------------
    # the full chain
    # ------------------------------------------------------------------
    def run(
        self,
        workload: WorkloadConfig,
        trace: Optional[Trace] = None,
        allocator_config: AllocatorConfig = DEFAULT_CONFIG,
        two_level: bool = True,
        capacity_bytes: Optional[int] = None,
        curve: bool = True,
    ) -> PipelineRun:
        """Run all four stages; ``trace`` short-circuits profiling."""
        stage_seconds: dict[str, float] = {}
        stage_cached: dict[str, bool] = {}

        started = time.perf_counter()
        if trace is None:
            trace, hit = self._profile_stage(workload)
        else:
            hit = True  # supplied by the caller: cost nothing here
        stage_seconds[PROFILE] = time.perf_counter() - started
        stage_cached[PROFILE] = hit

        started = time.perf_counter()
        analyzed, hit = self._analyze_stage(trace)
        stage_seconds[ANALYZE] = time.perf_counter() - started
        stage_cached[ANALYZE] = hit

        started = time.perf_counter()
        sequence, hit = self._orchestrate_stage(analyzed)
        stage_seconds[ORCHESTRATE] = time.perf_counter() - started
        stage_cached[ORCHESTRATE] = hit

        started = time.perf_counter()
        simulation = self.simulate(
            sequence,
            allocator_config=allocator_config,
            two_level=two_level,
            capacity_bytes=capacity_bytes,
            curve=curve,
        )
        stage_seconds[SIMULATE] = time.perf_counter() - started
        stage_cached[SIMULATE] = False

        return PipelineRun(
            trace=trace,
            analyzed=analyzed,
            sequence=sequence,
            simulation=simulation,
            stage_seconds=stage_seconds,
            stage_cached=stage_cached,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _profile_stage(self, workload: WorkloadConfig) -> tuple[Trace, bool]:
        if self.cache is None:
            return self._run_profiler(workload), False
        return self.cache.traces.get_or_compute(
            self.profile_key(workload), lambda: self._run_profiler(workload)
        )

    def _run_profiler(self, workload: WorkloadConfig) -> Trace:
        trace = profile_on_cpu(
            workload.model,
            batch_size=workload.batch_size,
            optimizer=workload.optimizer,
            loop=TrainLoopConfig(
                iterations=self.iterations,
                zero_grad_position=workload.zero_grad_position,
                set_to_none=workload.set_to_none,
            ),
            iterations=self.iterations,
        )
        # the profile key fully determines this trace: skip content hashing
        key = "|".join(str(part) for part in self.profile_key(workload))
        object.__setattr__(trace, _TRACE_KEY_ATTR, key)
        return trace

    def _analyze_stage(self, trace: Trace) -> tuple[AnalyzedTrace, bool]:
        if self.cache is None:
            return self.analyzer.analyze(trace), False
        key = (trace_fingerprint(trace), bool(self.analyzer.strict))
        return self.cache.analyses.get_or_compute(
            key, lambda: self.analyzer.analyze(trace)
        )

    def _orchestrate_stage(
        self, analyzed: AnalyzedTrace
    ) -> tuple[OrchestratedSequence, bool]:
        if self.cache is None or analyzed.trace is None:
            return self.orchestrator.orchestrate(analyzed), False
        key = (trace_fingerprint(analyzed.trace), self.rules_key())
        return self.cache.sequences.get_or_compute(
            key, lambda: self.orchestrator.orchestrate(analyzed)
        )
