"""Hierarchical time-based attribution (paper §3.2, Fig. 5).

Connects each reconstructed memory block to the operator / component that
produced it, using the execution windows of ``cpu_op`` and
``python_function`` events plus the training-loop ``user_annotation``
markers.  Everything is derived from timestamps — the trace carries no
explicit linkage, exactly the challenge the paper describes.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional

from ..framework.tensor import TensorRole
from ..trace.events import EventCategory, SpanEvent
from ..trace.reader import Trace
from .lifecycle import MemoryBlock


@dataclass
class AttributedBlock:
    """A memory block plus its attributed execution context."""

    block: MemoryBlock
    op: Optional[SpanEvent] = None  # innermost cpu_op at allocation
    module_path: Optional[str] = None  # python_function stack at allocation
    annotation: Optional[SpanEvent] = None  # innermost loop annotation
    iteration: Optional[int] = None  # ProfilerStep index, None = setup
    backward: bool = False  # allocated inside the backward engine
    #: role classified by the Analyzer (None until classification runs)
    role: Optional[TensorRole] = None

    @property
    def op_name(self) -> Optional[str]:
        return self.op.name if self.op is not None else None

    @property
    def annotation_name(self) -> Optional[str]:
        return self.annotation.name if self.annotation is not None else None


class _SpanIndex:
    """Point-in-span lookup over possibly nested spans of one category."""

    def __init__(self, spans: list[SpanEvent]):
        self._spans = sorted(spans, key=lambda e: (e.ts, -e.dur))
        self._starts = [e.ts for e in self._spans]

    def innermost_at(self, ts: int) -> Optional[SpanEvent]:
        """Deepest span containing ``ts`` (latest start wins)."""
        index = bisect.bisect_right(self._starts, ts)
        best: Optional[SpanEvent] = None
        # Walk left; stop early once starts are so old every enclosing span
        # would already have been found.  Nested spans start later than
        # their parents, so the first hit walking left is the innermost.
        for position in range(index - 1, -1, -1):
            span = self._spans[position]
            if span.contains_time(ts):
                best = span
                break
        return best

    def stack_at(self, ts: int) -> list[SpanEvent]:
        """All spans containing ``ts``, outermost first."""
        index = bisect.bisect_right(self._starts, ts)
        found = [
            span
            for span in self._spans[:index]
            if span.contains_time(ts)
        ]
        found.sort(key=lambda e: (e.ts, -e.dur))
        return found


def attribute_blocks(
    trace: Trace, blocks: list[MemoryBlock]
) -> list[AttributedBlock]:
    """Attribute every block to its operator, module stack, and loop phase."""
    op_index = _SpanIndex(trace.by_category(EventCategory.CPU_OP))
    fn_index = _SpanIndex(trace.by_category(EventCategory.PYTHON_FUNCTION))
    ann_index = _SpanIndex(trace.by_category(EventCategory.USER_ANNOTATION))
    iterations = trace.iterations()
    iter_starts = [w.ts for w in iterations]

    attributed: list[AttributedBlock] = []
    for block in blocks:
        ts = block.alloc_ts
        op = op_index.innermost_at(ts)
        fn_stack = fn_index.stack_at(ts)
        module_path = (
            "/".join(
                span.name.removeprefix("nn.Module: ") for span in fn_stack
            )
            or None
        )
        backward = any(
            span.name.startswith("autograd::") for span in fn_stack
        ) or (op is not None and op.is_backward)
        annotation = ann_index.innermost_at(ts)
        iteration: Optional[int] = None
        position = bisect.bisect_right(iter_starts, ts) - 1
        if position >= 0 and iterations[position].contains_time(ts):
            iteration = position
        attributed.append(
            AttributedBlock(
                block=block,
                op=op,
                module_path=module_path,
                annotation=annotation,
                iteration=iteration,
                backward=backward,
            )
        )
    return attributed


def operator_filter(attributed: list[AttributedBlock]) -> list[AttributedBlock]:
    """The paper's operator-centric filter (§3.2).

    Keep a block when either: (i) its whole lifespan falls within its
    operator's window, or (ii) it was allocated in an operator window and
    persists beyond it (activations, gradients, states).  Blocks allocated
    inside loop annotations (parameters during ``Module.to``, batch data
    during ``dataloader.__next__``, optimizer state during
    ``Optimizer.step``) are kept via their annotation window.  Blocks
    attributable to nothing — temporaries of the surrounding script — are
    presumed CPU-only and dropped.
    """
    kept: list[AttributedBlock] = []
    for item in attributed:
        if item.op is not None:
            kept.append(item)
            continue
        if item.annotation is not None:
            kept.append(item)
            continue
        # python-function-only blocks: script temporaries — dropped
    return kept
