"""Human-readable estimation reports.

Scheduler operators and model developers read these to understand *where*
an estimate comes from: the role breakdown (parameters vs optimizer state
vs activations), the orchestration adjustments applied, and the headroom
against the device budget.  Rendered by ``xmem estimate --explain``.
"""

from __future__ import annotations

from ..units import format_bytes, format_gb
from .result import EstimationResult

_ROLE_ORDER = (
    "parameter",
    "gradient",
    "optimizer_state",
    "activation",
    "saved",
    "batch_data",
    "temporary",
)


def render_report(result: EstimationResult) -> str:
    """Render a multi-line explanation of one estimation result."""
    lines = [
        f"workload        : {result.workload.label()}",
        f"device          : {result.device.name} "
        f"({format_gb(result.device.capacity_bytes)} capacity, "
        f"{format_gb(result.device.job_budget())} job budget)",
        f"estimator       : {result.estimator}",
        f"estimated peak  : {format_gb(result.peak_bytes)}",
    ]
    if not result.supported:
        lines.append("status          : workload not supported")
        return "\n".join(lines)
    budget = result.device.job_budget()
    headroom = budget - result.peak_bytes
    verdict = "OOM predicted" if result.predicts_oom() else "fits"
    lines.append(
        f"verdict         : {verdict} "
        f"(headroom {format_gb(headroom)})"
    )
    lines.append(f"estimator time  : {result.runtime_seconds:.2f}s")

    role_bytes = result.detail.get("role_bytes")
    if role_bytes:
        lines.append("memory by role (bytes allocated over the profile):")
        total = sum(role_bytes.values()) or 1
        for role in _ROLE_ORDER:
            size = role_bytes.get(role)
            if not size:
                continue
            share = size / total * 100
            lines.append(
                f"  {role:<16} {format_bytes(size):>12}  ({share:4.1f}%)"
            )
    peak_allocated = result.detail.get("peak_allocated_bytes")
    if peak_allocated:
        overhead = result.peak_bytes - peak_allocated
        lines.append(
            f"allocator overhead at peak: {format_bytes(overhead)} "
            f"(segments vs tensors — caching, rounding, fragmentation)"
        )
    adjustments = result.detail.get("rule_adjustments")
    if adjustments:
        applied = {k: v for k, v in adjustments.items() if v}
        if applied:
            lines.append("orchestration adjustments:")
            for rule, count in sorted(applied.items()):
                lines.append(f"  {rule:<32} {count} block(s)")
        else:
            lines.append("orchestration adjustments: none needed")
    dropped = result.detail.get("dropped_blocks")
    if dropped:
        lines.append(
            f"CPU-only blocks filtered by attribution: {dropped}"
        )
    num_blocks = result.detail.get("num_blocks")
    if num_blocks:
        lines.append(f"memory blocks analysed: {num_blocks}")
    return "\n".join(lines)
