"""The xMem pipeline: Analyzer -> Memory Orchestrator -> Memory Simulator."""

from .analyzer import AnalyzedTrace, Analyzer
from .artifacts import ArtifactStore, open_artifact_store
from .base import Estimator
from .attribution import AttributedBlock, attribute_blocks, operator_filter
from .estimator import XMemEstimator
from .report import render_report
from .precision import PrecisionPlan, estimate_precision_peak, rescale_sequence
from .verify import CurveFidelity, SnapshotDiff, compare_curves, diff_snapshots
from .lifecycle import (
    LifecycleReport,
    MemoryBlock,
    peak_live_bytes,
    reconstruct_lifecycles,
)
from .orchestrator import (
    DEFAULT_RULES,
    BatchDataRule,
    EventKind,
    GradientRule,
    MemoryOp,
    MemoryOrchestrator,
    OptimizerStateRule,
    OrchestratedSequence,
    OrchestrationRule,
    ParameterRule,
    raw_sequence,
    sequence_fingerprint,
)
from .pipeline import (
    STAGES,
    EstimationPipeline,
    PipelineCache,
    PipelineRun,
    trace_fingerprint,
)
from .result import EstimationResult
from .simulator import MemorySimulator, PeakProfile, SimulationResult

__all__ = [
    "AnalyzedTrace",
    "ArtifactStore",
    "CurveFidelity",
    "PrecisionPlan",
    "SnapshotDiff",
    "compare_curves",
    "diff_snapshots",
    "estimate_precision_peak",
    "render_report",
    "rescale_sequence",
    "Analyzer",
    "AttributedBlock",
    "BatchDataRule",
    "DEFAULT_RULES",
    "EstimationPipeline",
    "EstimationResult",
    "Estimator",
    "EventKind",
    "PipelineCache",
    "PipelineRun",
    "STAGES",
    "trace_fingerprint",
    "GradientRule",
    "LifecycleReport",
    "MemoryBlock",
    "MemoryOp",
    "MemoryOrchestrator",
    "MemorySimulator",
    "OptimizerStateRule",
    "OrchestratedSequence",
    "OrchestrationRule",
    "ParameterRule",
    "PeakProfile",
    "SimulationResult",
    "XMemEstimator",
    "attribute_blocks",
    "open_artifact_store",
    "operator_filter",
    "peak_live_bytes",
    "raw_sequence",
    "reconstruct_lifecycles",
    "sequence_fingerprint",
]
