"""Estimator interface shared by xMem and the baselines."""

from __future__ import annotations

from ..workload import DeviceSpec, WorkloadConfig
from .result import EstimationResult


class Estimator:
    """A peak-GPU-memory estimator.

    Implementations return an :class:`EstimationResult`; when a workload is
    outside an estimator's scope (e.g. LLMem on CNNs) they return a result
    with ``supported=False`` so evaluation can mark the cell N/A exactly as
    the paper does.
    """

    name = "estimator"

    def supports(self, workload: WorkloadConfig) -> bool:
        raise NotImplementedError

    def estimate(
        self, workload: WorkloadConfig, device: DeviceSpec
    ) -> EstimationResult:
        raise NotImplementedError

    def unsupported_result(
        self, workload: WorkloadConfig, device: DeviceSpec
    ) -> EstimationResult:
        return EstimationResult(
            estimator=self.name,
            workload=workload,
            device=device,
            peak_bytes=0,
            runtime_seconds=0.0,
            supported=False,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
