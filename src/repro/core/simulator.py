"""The Memory Simulator: final stage of the xMem pipeline (§3.4).

Replays the orchestrated memory sequence through the two-level allocator
simulation (framework caching allocator + device allocator) and reports
the peak Segment (reserved) memory — the quantity NVML measures and an
estimate must predict — plus the full usage curve.

Ablation knobs reproduce the design-choice comparisons in DESIGN.md:
``account="tensor"`` sums live tensor bytes (Horus-style), ``two_level=
False`` drops cached-segment reclamation (DNNMem-style), and any
:class:`~repro.allocator.constants.AllocatorConfig` can be swapped in.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..allocator.caching import CachingAllocator
from ..allocator.constants import DEFAULT_CONFIG, AllocatorConfig
from ..allocator.device import DeviceAllocator
from ..allocator.stats import AllocatorStats, TimelineRecorder
from ..errors import SimOutOfMemoryError
from .orchestrator import EventKind, OrchestratedSequence

#: Effectively-unbounded device used when measuring an unconstrained peak.
UNBOUNDED_CAPACITY = 1 << 50


@dataclass(frozen=True)
class SimulationResult:
    """Replay outcome."""

    peak_reserved_bytes: int  # Segment curve peak (the estimate)
    peak_allocated_bytes: int  # Tensor curve peak
    oom: bool
    oom_ts: Optional[int]
    timeline: TimelineRecorder
    stats: AllocatorStats
    num_events: int

    def peak(self, account: str = "segment") -> int:
        if account == "segment":
            return self.peak_reserved_bytes
        if account == "tensor":
            return self.peak_allocated_bytes
        raise ValueError(f"unknown accounting mode {account!r}")


class MemorySimulator:
    """Replays orchestrated sequences through the allocator simulation."""

    def __init__(
        self,
        capacity_bytes: Optional[int] = None,
        allocator_config: AllocatorConfig = DEFAULT_CONFIG,
        two_level: bool = True,
    ):
        self.capacity_bytes = capacity_bytes or UNBOUNDED_CAPACITY
        if not two_level:
            allocator_config = replace(allocator_config, reclaim_on_oom=False)
        self.allocator_config = allocator_config
        self.two_level = two_level

    def replay(self, sequence: OrchestratedSequence) -> SimulationResult:
        """Replay the sequence chronologically; stops at the first OOM."""
        device = DeviceAllocator(capacity=self.capacity_bytes)
        allocator = CachingAllocator(device, config=self.allocator_config)
        oom = False
        oom_ts: Optional[int] = None
        processed = 0
        live: set[int] = set()
        for event in sequence.events:
            try:
                if event.kind is EventKind.ALLOC:
                    allocator.malloc(event.size, ts=event.ts, owner=event.block_id)
                    live.add(event.block_id)
                else:
                    if event.block_id not in live:
                        continue  # free of a block dropped by a failed alloc
                    allocator.free_owner(event.block_id, ts=event.ts)
                    live.discard(event.block_id)
            except SimOutOfMemoryError:
                oom = True
                oom_ts = event.ts
                break
            processed += 1
        timeline = allocator.timeline or TimelineRecorder()
        return SimulationResult(
            peak_reserved_bytes=allocator.peak_reserved_bytes,
            peak_allocated_bytes=allocator.peak_allocated_bytes,
            oom=oom,
            oom_ts=oom_ts,
            timeline=timeline,
            stats=allocator.stats,
            num_events=processed,
        )
