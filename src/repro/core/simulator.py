"""The Memory Simulator: final stage of the xMem pipeline (§3.4).

Replays the orchestrated memory sequence through the two-level allocator
simulation (framework caching allocator + device allocator) and reports
the peak Segment (reserved) memory — the quantity NVML measures and an
estimate must predict — plus the full usage curve.

Ablation knobs reproduce the design-choice comparisons in DESIGN.md:
``account="tensor"`` sums live tensor bytes (Horus-style), ``two_level=
False`` drops cached-segment reclamation (DNNMem-style), and any
:class:`~repro.allocator.constants.AllocatorConfig` can be swapped in.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..allocator.caching import CachingAllocator
from ..allocator.constants import DEFAULT_CONFIG, AllocatorConfig
from ..allocator.device import DeviceAllocator
from ..allocator.stats import AllocatorStats, TimelineRecorder
from ..errors import SimOutOfMemoryError
from .orchestrator import OrchestratedSequence

#: Effectively-unbounded device used when measuring an unconstrained peak.
UNBOUNDED_CAPACITY = 1 << 50


@dataclass(frozen=True)
class SimulationResult:
    """Replay outcome."""

    peak_reserved_bytes: int  # Segment curve peak (the estimate)
    peak_allocated_bytes: int  # Tensor curve peak
    oom: bool
    oom_ts: Optional[int]
    timeline: TimelineRecorder
    stats: AllocatorStats
    num_events: int

    def peak(self, account: str = "segment") -> int:
        if account == "segment":
            return self.peak_reserved_bytes
        if account == "tensor":
            return self.peak_allocated_bytes
        raise ValueError(f"unknown accounting mode {account!r}")


class MemorySimulator:
    """Replays orchestrated sequences through the allocator simulation."""

    def __init__(
        self,
        capacity_bytes: Optional[int] = None,
        allocator_config: AllocatorConfig = DEFAULT_CONFIG,
        two_level: bool = True,
        timeline_max_points: Optional[int] = None,
    ):
        self.capacity_bytes = capacity_bytes or UNBOUNDED_CAPACITY
        if not two_level:
            allocator_config = replace(allocator_config, reclaim_on_oom=False)
        self.allocator_config = allocator_config
        self.two_level = two_level
        self.timeline_max_points = timeline_max_points

    def replay(
        self,
        sequence: OrchestratedSequence,
        record_timeline: bool = True,
    ) -> SimulationResult:
        """Replay the sequence chronologically; stops at the first OOM.

        ``record_timeline=False`` is the fast path for callers that only
        need the peaks: the allocator's stat counters track both peaks in
        the same single pass, so no usage curve is materialized and the
        returned ``timeline`` is empty.
        """
        device = DeviceAllocator(capacity=self.capacity_bytes)
        allocator = CachingAllocator(
            device,
            config=self.allocator_config,
            record_timeline=record_timeline,
            timeline_max_points=self.timeline_max_points,
        )
        oom = False
        oom_ts: Optional[int] = None
        processed = 0
        live: set[int] = set()
        # the flat stream skips per-event dataclass attribute lookups and
        # EventKind comparisons — this loop dominates warm-cache estimates
        malloc = allocator.malloc
        free_owner = allocator.free_owner
        for ts, is_alloc, block_id, size in sequence.event_stream():
            try:
                if is_alloc:
                    malloc(size, ts, block_id)
                    live.add(block_id)
                else:
                    if block_id not in live:
                        continue  # free of a block dropped by a failed alloc
                    free_owner(block_id, ts)
                    live.discard(block_id)
            except SimOutOfMemoryError:
                oom = True
                oom_ts = ts
                break
            processed += 1
        timeline = (
            allocator.timeline
            if allocator.timeline is not None
            else TimelineRecorder()
        )
        return SimulationResult(
            peak_reserved_bytes=allocator.peak_reserved_bytes,
            peak_allocated_bytes=allocator.peak_allocated_bytes,
            oom=oom,
            oom_ts=oom_ts,
            timeline=timeline,
            stats=allocator.stats,
            num_events=processed,
        )
