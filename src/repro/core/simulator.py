"""The Memory Simulator: final stage of the xMem pipeline (§3.4).

Replays the orchestrated memory sequence through the two-level allocator
simulation (framework caching allocator + device allocator) and reports
the peak Segment (reserved) memory — the quantity NVML measures and an
estimate must predict — plus the full usage curve.

Ablation knobs reproduce the design-choice comparisons in DESIGN.md:
``account="tensor"`` sums live tensor bytes (Horus-style), ``two_level=
False`` drops cached-segment reclamation (DNNMem-style), and any
:class:`~repro.allocator.constants.AllocatorConfig` can be swapped in.
"""

from __future__ import annotations

import bisect
from array import array
from dataclasses import dataclass, field, replace
from typing import Optional

from ..allocator.caching import CachingAllocator
from ..allocator.constants import DEFAULT_CONFIG, AllocatorConfig
from ..allocator.device import DeviceAllocator
from ..allocator.stats import AllocatorStats, TimelineRecorder
from ..errors import SimOutOfMemoryError
from .orchestrator import OrchestratedSequence

#: Effectively-unbounded device used when measuring an unconstrained peak.
UNBOUNDED_CAPACITY = 1 << 50


@dataclass(frozen=True)
class SimulationResult:
    """Replay outcome."""

    peak_reserved_bytes: int  # Segment curve peak (the estimate)
    peak_allocated_bytes: int  # Tensor curve peak
    oom: bool
    oom_ts: Optional[int]
    timeline: TimelineRecorder
    stats: AllocatorStats
    num_events: int

    def peak(self, account: str = "segment") -> int:
        if account == "segment":
            return self.peak_reserved_bytes
        if account == "tensor":
            return self.peak_allocated_bytes
        raise ValueError(f"unknown accounting mode {account!r}")


@dataclass(frozen=True)
class PeakProfile:
    """One unbounded peak-only replay, queryable for any capacity.

    The closed-form shortcut of the simulate cache: ``result`` is the
    replay outcome on an unbounded device, and the three arrays record,
    per processed event, its timestamp and the running maxima of the
    reserved/allocated curves (prefix-max over the event stream).

    Why this answers *bounded* queries exactly: a capacity-bounded replay
    is event-for-event identical to the unbounded one until the first
    device-allocation failure, and such a failure ever happens iff the
    unbounded ``peak_reserved_bytes`` exceeds the capacity.  So any
    query the profile proves OOM-free is served with the cached result —
    byte-identical peaks, accounting modes, and event counts — in O(1);
    a query that would OOM must fall back to a real bounded replay,
    because reclaim behaviour diverges from the unbounded run there.
    """

    result: SimulationResult
    event_ts: array = field(repr=False)
    reserved_running_max: array = field(repr=False)
    allocated_running_max: array = field(repr=False)

    def peak(self, account: str = "segment") -> int:
        return self.result.peak(account)

    def would_oom(self, capacity_bytes: Optional[int]) -> bool:
        """Would a replay under ``capacity_bytes`` hit device OOM?"""
        if capacity_bytes is None or capacity_bytes >= UNBOUNDED_CAPACITY:
            return False
        return self.result.peak_reserved_bytes > capacity_bytes

    def first_oom_event(self, capacity_bytes: Optional[int]) -> Optional[int]:
        """Index of the first event whose reserved footprint would exceed
        the capacity (None when it never does) — a bisect over the
        monotone running max, no replay."""
        if not self.would_oom(capacity_bytes):
            return None
        return bisect.bisect_right(self.reserved_running_max, capacity_bytes)

    def query(self, capacity_bytes: Optional[int] = None):
        """The exact bounded-replay result, or None when only a real
        replay can answer (the capacity would trip OOM)."""
        if self.would_oom(capacity_bytes):
            return None
        return self.result


class MemorySimulator:
    """Replays orchestrated sequences through the allocator simulation."""

    def __init__(
        self,
        capacity_bytes: Optional[int] = None,
        allocator_config: AllocatorConfig = DEFAULT_CONFIG,
        two_level: bool = True,
        timeline_max_points: Optional[int] = None,
    ):
        self.capacity_bytes = capacity_bytes or UNBOUNDED_CAPACITY
        if not two_level:
            allocator_config = replace(allocator_config, reclaim_on_oom=False)
        self.allocator_config = allocator_config
        self.two_level = two_level
        self.timeline_max_points = timeline_max_points

    def replay(
        self,
        sequence: OrchestratedSequence,
        record_timeline: bool = True,
    ) -> SimulationResult:
        """Replay the sequence chronologically; stops at the first OOM.

        ``record_timeline=False`` is the fast path for callers that only
        need the peaks: the allocator's stat counters track both peaks in
        the same single pass, so no usage curve is materialized and the
        returned ``timeline`` is empty.
        """
        device = DeviceAllocator(capacity=self.capacity_bytes)
        allocator = CachingAllocator(
            device,
            config=self.allocator_config,
            record_timeline=record_timeline,
            timeline_max_points=self.timeline_max_points,
        )
        oom = False
        oom_ts: Optional[int] = None
        processed = 0
        live: set[int] = set()
        # the flat stream skips per-event dataclass attribute lookups and
        # EventKind comparisons — this loop dominates warm-cache estimates
        malloc = allocator.malloc
        free_owner = allocator.free_owner
        for ts, is_alloc, block_id, size in sequence.event_stream():
            try:
                if is_alloc:
                    malloc(size, ts, block_id)
                    live.add(block_id)
                else:
                    if block_id not in live:
                        continue  # free of a block dropped by a failed alloc
                    free_owner(block_id, ts)
                    live.discard(block_id)
            except SimOutOfMemoryError:
                oom = True
                oom_ts = ts
                break
            processed += 1
        timeline = (
            allocator.timeline
            if allocator.timeline is not None
            else TimelineRecorder()
        )
        return SimulationResult(
            peak_reserved_bytes=allocator.peak_reserved_bytes,
            peak_allocated_bytes=allocator.peak_allocated_bytes,
            oom=oom,
            oom_ts=oom_ts,
            timeline=timeline,
            stats=allocator.stats,
            num_events=processed,
        )

    def replay_peak_profile(
        self, sequence: OrchestratedSequence
    ) -> PeakProfile:
        """One unbounded peak-only replay, instrumented per event.

        The same loop as :meth:`replay` with ``record_timeline=False``
        against an unbounded device (no allocation can fail, so no OOM
        branch), additionally recording the running peak curves that let
        :class:`PeakProfile` answer capacity-bounded peak queries without
        replaying.  Only valid for an unbounded simulator — a bounded one
        would diverge from the profile's premise at its first OOM.
        """
        if self.capacity_bytes != UNBOUNDED_CAPACITY:
            raise ValueError(
                "peak profiles are built over an unbounded replay; "
                "construct the simulator without capacity_bytes"
            )
        device = DeviceAllocator(capacity=UNBOUNDED_CAPACITY)
        allocator = CachingAllocator(
            device,
            config=self.allocator_config,
            record_timeline=False,
        )
        event_ts = array("q")
        reserved_max = array("q")
        allocated_max = array("q")
        processed = 0
        live: set[int] = set()
        malloc = allocator.malloc
        free_owner = allocator.free_owner
        stats = allocator.stats
        for ts, is_alloc, block_id, size in sequence.event_stream():
            if is_alloc:
                malloc(size, ts, block_id)
                live.add(block_id)
            else:
                if block_id not in live:
                    continue  # free of a block dropped by a failed alloc
                free_owner(block_id, ts)
                live.discard(block_id)
            processed += 1
            event_ts.append(ts)
            reserved_max.append(stats.reserved_bytes.peak)
            allocated_max.append(stats.allocated_bytes.peak)
        result = SimulationResult(
            peak_reserved_bytes=allocator.peak_reserved_bytes,
            peak_allocated_bytes=allocator.peak_allocated_bytes,
            oom=False,
            oom_ts=None,
            timeline=TimelineRecorder(),
            stats=allocator.stats,
            num_events=processed,
        )
        return PeakProfile(
            result=result,
            event_ts=event_ts,
            reserved_running_max=reserved_max,
            allocated_running_max=allocated_max,
        )
