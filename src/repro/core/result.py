"""Estimation results — the common output type of every estimator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..allocator.stats import TimelineRecorder
from ..units import format_gb
from ..workload import DeviceSpec, WorkloadConfig


@dataclass(frozen=True)
class EstimationResult:
    """One estimator's answer for one workload on one device."""

    estimator: str
    workload: WorkloadConfig
    device: DeviceSpec
    #: estimated peak job memory \hat{M}^{peak} (bytes); 0 when unsupported
    peak_bytes: int
    #: wall-clock seconds the estimation took (the paper's RQ4 runtime)
    runtime_seconds: float
    #: False when the estimator does not support this workload (e.g.
    #: LLMem on CNNs) — excluded from metrics like the paper's N/A cells
    supported: bool = True
    #: optional memory-usage curve over (virtual) time
    curve: Optional[TimelineRecorder] = None
    #: free-form diagnostics (role byte breakdown, rule hit counts, ...)
    detail: dict[str, Any] = field(default_factory=dict)
    #: wall-clock seconds per pipeline stage (profile/analyze/orchestrate/
    #: simulate) for estimators that expose staged execution; excluded
    #: from equality so cached replays stay byte-identical to cold runs
    stage_seconds: dict[str, float] = field(default_factory=dict, compare=False)
    #: which stages were served from an intermediate-artifact cache
    stage_cached: dict[str, bool] = field(default_factory=dict, compare=False)
    #: where each stage's artifact came from: "memory" (in-process cache),
    #: "store" (persistent artifact store), or "compute" (built this call)
    stage_sources: dict[str, str] = field(default_factory=dict, compare=False)

    def predicts_oom(self) -> bool:
        r"""Eq. (1): \hat{OOM} = [\hat{M}^{peak} > job budget]."""
        return self.peak_bytes > self.device.job_budget()

    def summary(self) -> str:
        state = "OOM" if self.predicts_oom() else "fits"
        return (
            f"{self.estimator}: {format_gb(self.peak_bytes)} "
            f"({state} on {self.device.name}) in {self.runtime_seconds:.2f}s"
        )
