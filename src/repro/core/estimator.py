"""The xMem estimator: the paper's contribution, end to end (Fig. 4).

``estimate`` runs the staged pipeline (:mod:`repro.core.pipeline`):
profile the first iterations of the workload on the CPU, analyse the
trace, orchestrate the memory sequence, and replay it through the
two-level allocator simulation.  The result is the estimated peak GPU
memory plus the optional usage curve — produced a priori, with zero
target-GPU involvement.

By default each estimator owns a :class:`~repro.core.pipeline.PipelineCache`
of intermediate artifacts, so repeat requests that share upstream work —
an allocator ablation over one trace, a device sweep of one workload —
only re-run the stages whose inputs actually changed.
"""

from __future__ import annotations

import time
from typing import Optional, Union

from ..allocator.constants import DEFAULT_CONFIG, AllocatorConfig
from .base import Estimator
from ..runtime.profiler import DEFAULT_PROFILE_ITERATIONS
from ..trace.reader import Trace
from ..workload import DeviceSpec, WorkloadConfig
from .analyzer import Analyzer
from .orchestrator import DEFAULT_RULES, MemoryOrchestrator
from .pipeline import EstimationPipeline, PipelineCache
from .result import EstimationResult


class XMemEstimator(Estimator):
    """CPU-only dynamic-analysis estimator (the paper's xMem).

    ``curve=False`` skips materializing the memory-usage curve (peaks are
    tracked in the same replay pass) — the serving stack's fast path.
    ``stage_cache`` is ``True`` (private cache), ``False`` (stage caching
    off; every call recomputes the full chain), or a shared
    :class:`PipelineCache` instance.  ``artifact_store`` (a path or an
    :class:`~repro.core.artifacts.ArtifactStore`) attaches a persistent
    cross-process L2 under the stage cache, so repeated runs — and every
    procpool worker sharing the path — start warm; as a plain string it
    pickles through ``functools.partial`` factories unchanged.
    """

    name = "xMem"

    def __init__(
        self,
        iterations: int = DEFAULT_PROFILE_ITERATIONS,
        orchestrate: bool = True,
        account: str = "segment",
        two_level: bool = True,
        allocator_config: AllocatorConfig = DEFAULT_CONFIG,
        curve: bool = True,
        stage_cache: Union[PipelineCache, bool] = True,
        artifact_store=None,
    ):
        if iterations < 1:
            raise ValueError("profiling needs at least one iteration")
        self.iterations = iterations
        self.orchestrate = orchestrate
        self.account = account
        self.two_level = two_level
        self.allocator_config = allocator_config
        self.curve = curve
        self.analyzer = Analyzer()
        self.orchestrator = MemoryOrchestrator(
            rules=DEFAULT_RULES if orchestrate else ()
        )
        if stage_cache is True:
            stage_cache = PipelineCache(artifact_store=artifact_store)
        elif stage_cache is False:
            stage_cache = None
        elif artifact_store is not None:
            stage_cache.attach_artifact_store(artifact_store)
        self.stage_cache: Optional[PipelineCache] = stage_cache
        self.pipeline = EstimationPipeline(
            iterations=iterations,
            analyzer=self.analyzer,
            orchestrator=self.orchestrator,
            cache=stage_cache,
        )

    def supports(self, workload: WorkloadConfig) -> bool:
        return True  # model-agnostic by construction

    def estimate(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace] = None,
    ) -> EstimationResult:
        """Estimate the peak GPU memory of ``workload`` on ``device``.

        ``trace`` short-circuits the profiling stage when the caller
        already holds profiler output (the deployment mode in which users
        hand xMem their existing profiling artifacts).
        """
        start = time.perf_counter()
        run = self.pipeline.run(
            workload,
            trace=trace,
            allocator_config=self.allocator_config,
            two_level=self.two_level,
            curve=self.curve,
        )
        simulation = run.simulation
        sequence = run.sequence
        runtime = time.perf_counter() - start
        return EstimationResult(
            estimator=self.name,
            workload=workload,
            device=device,
            peak_bytes=simulation.peak(self.account),
            runtime_seconds=runtime,
            curve=simulation.timeline if self.curve else None,
            stage_seconds=dict(run.stage_seconds),
            stage_cached=dict(run.stage_cached),
            stage_sources=dict(run.stage_sources),
            detail={
                "num_blocks": sequence.num_blocks,
                "num_events": simulation.num_events,
                "persistent_bytes": sequence.persistent_bytes,
                "rule_adjustments": dict(sequence.adjustments),
                "peak_allocated_bytes": simulation.peak_allocated_bytes,
                "role_bytes": {
                    role.value: size
                    for role, size in run.analyzed.role_bytes().items()
                },
                "dropped_blocks": run.analyzed.dropped_blocks,
            },
        )
