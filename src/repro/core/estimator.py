"""The xMem estimator: the paper's contribution, end to end (Fig. 4).

``estimate`` profiles the first iterations of the workload on the CPU,
analyses the trace, orchestrates the memory sequence, and replays it
through the two-level allocator simulation.  The result is the estimated
peak GPU memory plus the optional usage curve — produced a priori, with
zero target-GPU involvement.
"""

from __future__ import annotations

import time
from typing import Optional

from ..allocator.constants import DEFAULT_CONFIG, AllocatorConfig
from .base import Estimator
from ..runtime.loop import TrainLoopConfig
from ..runtime.profiler import DEFAULT_PROFILE_ITERATIONS, profile_on_cpu
from ..trace.reader import Trace
from ..workload import DeviceSpec, WorkloadConfig
from .analyzer import Analyzer
from .orchestrator import DEFAULT_RULES, MemoryOrchestrator
from .result import EstimationResult
from .simulator import MemorySimulator


class XMemEstimator(Estimator):
    """CPU-only dynamic-analysis estimator (the paper's xMem)."""

    name = "xMem"

    def __init__(
        self,
        iterations: int = DEFAULT_PROFILE_ITERATIONS,
        orchestrate: bool = True,
        account: str = "segment",
        two_level: bool = True,
        allocator_config: AllocatorConfig = DEFAULT_CONFIG,
    ):
        if iterations < 1:
            raise ValueError("profiling needs at least one iteration")
        self.iterations = iterations
        self.orchestrate = orchestrate
        self.account = account
        self.two_level = two_level
        self.allocator_config = allocator_config
        self.analyzer = Analyzer()
        self.orchestrator = MemoryOrchestrator(
            rules=DEFAULT_RULES if orchestrate else ()
        )

    def supports(self, workload: WorkloadConfig) -> bool:
        return True  # model-agnostic by construction

    def estimate(
        self,
        workload: WorkloadConfig,
        device: DeviceSpec,
        trace: Optional[Trace] = None,
    ) -> EstimationResult:
        """Estimate the peak GPU memory of ``workload`` on ``device``.

        ``trace`` short-circuits the profiling stage when the caller
        already holds profiler output (the deployment mode in which users
        hand xMem their existing profiling artifacts).
        """
        start = time.perf_counter()
        if trace is None:
            trace = profile_on_cpu(
                workload.model,
                batch_size=workload.batch_size,
                optimizer=workload.optimizer,
                loop=TrainLoopConfig(
                    iterations=self.iterations,
                    zero_grad_position=workload.zero_grad_position,
                    set_to_none=workload.set_to_none,
                ),
                iterations=self.iterations,
            )
        analyzed = self.analyzer.analyze(trace)
        sequence = self.orchestrator.orchestrate(analyzed)
        simulator = MemorySimulator(
            allocator_config=self.allocator_config,
            two_level=self.two_level,
        )
        simulation = simulator.replay(sequence)
        runtime = time.perf_counter() - start
        return EstimationResult(
            estimator=self.name,
            workload=workload,
            device=device,
            peak_bytes=simulation.peak(self.account),
            runtime_seconds=runtime,
            curve=simulation.timeline,
            detail={
                "num_blocks": sequence.num_blocks,
                "num_events": simulation.num_events,
                "persistent_bytes": sequence.persistent_bytes,
                "rule_adjustments": sequence.adjustments,
                "peak_allocated_bytes": simulation.peak_allocated_bytes,
                "role_bytes": {
                    role.value: size
                    for role, size in analyzed.role_bytes().items()
                },
                "dropped_blocks": analyzed.dropped_blocks,
            },
        )
