"""Persistent content-addressed artifact store: the stage caches' L2.

The in-memory :class:`~repro.core.pipeline.PipelineCache` (PR 3) won the
warm path, but it dies with the process: every new CLI run, CI job, and
procpool worker pays the cold profile/analyze/orchestrate chain again.
:class:`ArtifactStore` is the cross-process answer — a stdlib-``sqlite3``
blob store, content-addressed by stage name + cache key, that the stage
stores consult on an L1 miss and populate after a build.

Design points:

* **WAL mode** — concurrent readers never block the single writer, so a
  4-worker procpool can share one store file.
* **Versioned schema** — a ``schema_version`` mismatch (old store file,
  newer code) drops and recreates the tables instead of erroring.
* **Corruption tolerant** — a truncated blob, a checksum mismatch, an
  unpicklable payload, or a corrupt database file is always a *miss*,
  never a crash; bad rows are dropped, bad files recreated.
* **Size-capped with LRU reaping** — total payload bytes above
  ``max_bytes`` evict least-recently-*used* rows first.
* **Cross-process single-flight** — a ``claims`` table extends the stage
  stores' per-key in-process gating across processes: one worker builds,
  the rest poll the store and inherit the artifact. Claims go stale after
  ``claim_timeout`` seconds so a dead owner cannot wedge the fleet.
* **Persistent counters** — per-stage build/hit/miss counts survive the
  process, which is how a bench can assert "the profile stage ran exactly
  once per unique workload across all 4 workers".

Everything here fails open: if sqlite misbehaves the store degrades to
"always miss, builds run locally" and the pipeline stays correct.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sqlite3
import threading
import time
from typing import Any, Callable, Optional, Union

#: Bump when the table layout changes; old stores are dropped + recreated.
SCHEMA_VERSION = 1

#: Default payload-byte budget before LRU reaping kicks in (256 MiB).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Seconds after which another process's build claim is considered dead.
DEFAULT_CLAIM_TIMEOUT = 30.0

#: Internal miss sentinel (``None`` is a valid stored value).
_MISS = object()

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS artifacts (
    key TEXT PRIMARY KEY,
    stage TEXT NOT NULL,
    payload BLOB NOT NULL,
    checksum TEXT NOT NULL,
    nbytes INTEGER NOT NULL,
    created_at REAL NOT NULL,
    last_used_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS artifacts_lru ON artifacts (last_used_at);
CREATE TABLE IF NOT EXISTS claims (
    key TEXT PRIMARY KEY,
    owner TEXT NOT NULL,
    claimed_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS counters (
    name TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
"""


def artifact_key(stage: str, key: Any) -> str:
    """Content address of a stage-cache key.

    Stage keys are tuples of primitives (strings, ints, bools, frozen
    dataclasses with value reprs), so ``repr`` is a stable cross-process
    serialization — unlike ``hash()``, which is salted per process.
    """
    digest = hashlib.sha256(f"{stage}|{key!r}".encode("utf-8")).hexdigest()
    return f"{stage}:{digest[:40]}"


class ArtifactStore:
    """Content-addressed pickle-blob store over one sqlite file.

    Thread-safe (one connection guarded by a lock — WAL keeps *other*
    processes unblocked) and safe to share between every stage store of a
    process via :func:`open_artifact_store`.
    """

    def __init__(
        self,
        path: str,
        max_bytes: int = DEFAULT_MAX_BYTES,
        claim_timeout: float = DEFAULT_CLAIM_TIMEOUT,
        sqlite_timeout: float = 10.0,
    ):
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.path = os.fspath(path)
        self.max_bytes = max_bytes
        self.claim_timeout = claim_timeout
        self.sqlite_timeout = sqlite_timeout
        self._lock = threading.RLock()
        self._conn: Optional[sqlite3.Connection] = None
        self._owner = f"{os.getpid()}:{id(self):x}"
        # per-instance (process-local) counters; the persistent cross-
        # process counterparts live in the ``counters`` table
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.corrupt_dropped = 0
        self.schema_resets = 0
        self.errors = 0
        self._open()

    # ------------------------------------------------------------------
    # connection / schema lifecycle
    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            self.path, timeout=self.sqlite_timeout, check_same_thread=False
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute(f"PRAGMA busy_timeout={int(self.sqlite_timeout * 1000)}")
        return conn

    def _open(self) -> None:
        with self._lock:
            try:
                self._conn = self._connect()
                self._ensure_schema()
            except sqlite3.Error:
                # the file exists but is not a database (truncated,
                # overwritten, wrong format): recreate it from scratch
                self._recreate_file()

    def _recreate_file(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(self.path + suffix)
            except OSError:
                pass
        self._conn = self._connect()
        self._ensure_schema()
        self.schema_resets += 1

    def _ensure_schema(self) -> None:
        conn = self._conn
        assert conn is not None
        conn.executescript(_SCHEMA)
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )
            conn.commit()
        elif row[0] != str(SCHEMA_VERSION):
            # a future/past layout: drop everything rather than guess
            conn.executescript(
                "DROP TABLE IF EXISTS artifacts;"
                "DROP TABLE IF EXISTS claims;"
                "DROP TABLE IF EXISTS counters;"
                "DROP TABLE IF EXISTS meta;"
            )
            conn.executescript(_SCHEMA)
            conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )
            conn.commit()
            self.schema_resets += 1

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None

    # ------------------------------------------------------------------
    # blob get / put
    # ------------------------------------------------------------------
    def get(self, stage: str, key: Any) -> Any:
        """Return the stored value, or the module miss sentinel.

        Any failure — sqlite error, checksum mismatch, unpicklable blob —
        is a miss; corrupt rows are deleted on the way out.
        """
        address = artifact_key(stage, key)
        with self._lock:
            conn = self._conn
            if conn is None:
                self.misses += 1
                return _MISS
            try:
                row = conn.execute(
                    "SELECT payload, checksum FROM artifacts WHERE key = ?",
                    (address,),
                ).fetchone()
            except sqlite3.Error:
                self.errors += 1
                self.misses += 1
                return _MISS
            if row is None:
                self.misses += 1
                self._bump_counter(f"miss:{stage}")
                return _MISS
            payload, checksum = row
            try:
                if hashlib.sha256(payload).hexdigest() != checksum:
                    raise ValueError("artifact checksum mismatch")
                value = pickle.loads(payload)
            except Exception:
                # truncated / corrupt / stale-class blob: drop it, miss
                self.corrupt_dropped += 1
                self.misses += 1
                try:
                    conn.execute(
                        "DELETE FROM artifacts WHERE key = ?", (address,)
                    )
                    conn.commit()
                except sqlite3.Error:
                    self.errors += 1
                return _MISS
            self.hits += 1
            try:
                conn.execute(
                    "UPDATE artifacts SET last_used_at = ? WHERE key = ?",
                    (time.time(), address),
                )
                self._bump_counter(f"hit:{stage}", commit=False)
                conn.commit()
            except sqlite3.Error:
                self.errors += 1
            return value

    def put(self, stage: str, key: Any, value: Any) -> bool:
        """Store ``value``; returns False (and stays silent) on failure."""
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        checksum = hashlib.sha256(payload).hexdigest()
        address = artifact_key(stage, key)
        now = time.time()
        with self._lock:
            conn = self._conn
            if conn is None:
                return False
            try:
                conn.execute(
                    "INSERT OR REPLACE INTO artifacts "
                    "(key, stage, payload, checksum, nbytes, created_at, "
                    "last_used_at) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (
                        address,
                        stage,
                        payload,
                        checksum,
                        len(payload),
                        now,
                        now,
                    ),
                )
                self._bump_counter(f"put:{stage}", commit=False)
                conn.commit()
            except sqlite3.Error:
                self.errors += 1
                return False
            self.puts += 1
            self._reap()
            return True

    def _reap(self) -> None:
        """Evict least-recently-used rows until under the byte budget."""
        conn = self._conn
        if conn is None or self.max_bytes <= 0:
            return
        try:
            while True:
                total = conn.execute(
                    "SELECT COALESCE(SUM(nbytes), 0) FROM artifacts"
                ).fetchone()[0]
                if total <= self.max_bytes:
                    break
                victim = conn.execute(
                    "SELECT key FROM artifacts "
                    "ORDER BY last_used_at ASC, rowid ASC LIMIT 1"
                ).fetchone()
                if victim is None:
                    break
                conn.execute(
                    "DELETE FROM artifacts WHERE key = ?", (victim[0],)
                )
                self._bump_counter("evictions", commit=False)
                conn.commit()
                self.evictions += 1
        except sqlite3.Error:
            self.errors += 1

    # ------------------------------------------------------------------
    # cross-process single-flight
    # ------------------------------------------------------------------
    def _claim(self, address: str) -> bool:
        """Try to become the builder for ``address``.

        Fails open: on any sqlite error the caller builds locally, which
        costs duplicate work but never blocks.
        """
        now = time.time()
        with self._lock:
            conn = self._conn
            if conn is None:
                return True
            try:
                cursor = conn.execute(
                    "INSERT OR IGNORE INTO claims (key, owner, claimed_at) "
                    "VALUES (?, ?, ?)",
                    (address, self._owner, now),
                )
                conn.commit()
                if cursor.rowcount:
                    return True
                row = conn.execute(
                    "SELECT claimed_at FROM claims WHERE key = ?", (address,)
                ).fetchone()
                if row is None:
                    return False  # just released; retry via polling
                if now - row[0] > self.claim_timeout:
                    # the owner is presumed dead: steal the claim (the
                    # claimed_at guard keeps two stealers from both winning)
                    cursor = conn.execute(
                        "UPDATE claims SET owner = ?, claimed_at = ? "
                        "WHERE key = ? AND claimed_at = ?",
                        (self._owner, now, address, row[0]),
                    )
                    conn.commit()
                    return bool(cursor.rowcount)
                return False
            except sqlite3.Error:
                self.errors += 1
                return True

    def _release_claim(self, address: str) -> None:
        with self._lock:
            conn = self._conn
            if conn is None:
                return
            try:
                conn.execute(
                    "DELETE FROM claims WHERE key = ? AND owner = ?",
                    (address, self._owner),
                )
                conn.commit()
            except sqlite3.Error:
                self.errors += 1

    def get_or_compute(
        self, stage: str, key: Any, build: Callable[[], Any]
    ) -> tuple[Any, bool]:
        """Return ``(value, was_stored)``; one process builds per key.

        A loser polls the store while the claim holder builds, inheriting
        the artifact when it lands; if the claim goes stale (owner died)
        the loser takes over the build.
        """
        value = self.get(stage, key)
        if value is not _MISS:
            return value, True
        address = artifact_key(stage, key)
        if not self._claim(address):
            deadline = time.monotonic() + self.claim_timeout
            delay = 0.002
            while time.monotonic() < deadline:
                time.sleep(delay)
                delay = min(delay * 2, 0.05)
                value = self.get(stage, key)
                if value is not _MISS:
                    return value, True
                if self._claim(address):
                    break
            # deadline without an artifact or a claim: build locally
            # anyway — liveness beats deduplication
        try:
            value = build()
        except BaseException:
            self._release_claim(address)
            raise
        try:
            self.put(stage, key, value)
            self._bump_counter(f"build:{stage}")
        finally:
            self._release_claim(address)
        return value, False

    # ------------------------------------------------------------------
    # counters / stats
    # ------------------------------------------------------------------
    def _bump_counter(self, name: str, delta: int = 1, commit: bool = True):
        conn = self._conn
        if conn is None:
            return
        try:
            conn.execute(
                "INSERT INTO counters (name, value) VALUES (?, ?) "
                "ON CONFLICT(name) DO UPDATE SET value = value + ?",
                (name, delta, delta),
            )
            if commit:
                conn.commit()
        except sqlite3.Error:
            self.errors += 1

    def counters(self) -> dict[str, int]:
        """The persistent (cross-process, cross-run) counter table."""
        with self._lock:
            conn = self._conn
            if conn is None:
                return {}
            try:
                rows = conn.execute(
                    "SELECT name, value FROM counters"
                ).fetchall()
            except sqlite3.Error:
                self.errors += 1
                return {}
            return {name: value for name, value in rows}

    def total_bytes(self) -> int:
        with self._lock:
            conn = self._conn
            if conn is None:
                return 0
            try:
                return conn.execute(
                    "SELECT COALESCE(SUM(nbytes), 0) FROM artifacts"
                ).fetchone()[0]
            except sqlite3.Error:
                self.errors += 1
                return 0

    def __len__(self) -> int:
        with self._lock:
            conn = self._conn
            if conn is None:
                return 0
            try:
                return conn.execute(
                    "SELECT COUNT(*) FROM artifacts"
                ).fetchone()[0]
            except sqlite3.Error:
                self.errors += 1
                return 0

    def stats(self) -> dict:
        """JSON-ready: this instance's counters plus the persistent ones."""
        return {
            "path": self.path,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "corrupt_dropped": self.corrupt_dropped,
            "schema_resets": self.schema_resets,
            "errors": self.errors,
            "entries": len(self),
            "total_bytes": self.total_bytes(),
            "persistent": self.counters(),
        }

    def __enter__(self) -> "ArtifactStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Per-process store registry: every estimator/stage store in a process
#: that names the same file shares one connection (and its counters).
_OPEN_STORES: dict[str, ArtifactStore] = {}
_REGISTRY_LOCK = threading.Lock()


def open_artifact_store(path: str, **kwargs: Any) -> ArtifactStore:
    """Open (or reuse) the process-wide store for ``path``.

    ``kwargs`` (``max_bytes``, ``claim_timeout``) only apply when this
    call creates the instance; later callers inherit the first opener's
    configuration.
    """
    resolved = os.path.abspath(os.fspath(path))
    with _REGISTRY_LOCK:
        store = _OPEN_STORES.get(resolved)
        if store is None:
            store = ArtifactStore(resolved, **kwargs)
            _OPEN_STORES[resolved] = store
        return store


def resolve_artifact_store(
    store: Union[ArtifactStore, str, os.PathLike, None],
) -> Optional[ArtifactStore]:
    """Accept a store instance, a path, or None (the common knob shape)."""
    if store is None or isinstance(store, ArtifactStore):
        return store
    return open_artifact_store(store)
