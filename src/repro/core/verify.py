"""Simulator-fidelity verification against snapshots (paper §3.2/§3.4).

The paper validates both the Analyzer's block sequence and the Simulator's
replay against PyTorch's snapshot profiler.  This module implements that
verification loop for the reproduction: it diffs the allocator state a
replay produces against a reference run's snapshot, and compares whole
memory curves, producing a structured fidelity report (the numbers behind
Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..allocator.stats import TimelineRecorder


@dataclass(frozen=True)
class SnapshotDiff:
    """Structural difference between two allocator snapshots."""

    segments_a: int
    segments_b: int
    reserved_a: int
    reserved_b: int
    allocated_a: int
    allocated_b: int
    #: segment-size multiset difference (size -> count delta, a - b)
    segment_size_delta: dict[int, int]

    @property
    def reserved_gap(self) -> int:
        return abs(self.reserved_a - self.reserved_b)

    @property
    def allocated_gap(self) -> int:
        return abs(self.allocated_a - self.allocated_b)

    def matches(self, tolerance_bytes: int = 0) -> bool:
        return (
            self.reserved_gap <= tolerance_bytes
            and self.allocated_gap <= tolerance_bytes
        )


def diff_snapshots(a: list[dict], b: list[dict]) -> SnapshotDiff:
    """Diff two ``memory_snapshot`` exports."""
    sizes_a: dict[int, int] = {}
    sizes_b: dict[int, int] = {}
    for segment in a:
        sizes_a[segment["total_size"]] = sizes_a.get(segment["total_size"], 0) + 1
    for segment in b:
        sizes_b[segment["total_size"]] = sizes_b.get(segment["total_size"], 0) + 1
    delta = {}
    for size in set(sizes_a) | set(sizes_b):
        diff = sizes_a.get(size, 0) - sizes_b.get(size, 0)
        if diff:
            delta[size] = diff
    return SnapshotDiff(
        segments_a=len(a),
        segments_b=len(b),
        reserved_a=sum(s["total_size"] for s in a),
        reserved_b=sum(s["total_size"] for s in b),
        allocated_a=sum(s["allocated_size"] for s in a),
        allocated_b=sum(s["allocated_size"] for s in b),
        segment_size_delta=delta,
    )


@dataclass(frozen=True)
class CurveFidelity:
    """How closely a simulated memory curve tracks a reference curve."""

    peak_reference: int
    peak_simulated: int
    mean_abs_gap: int
    max_abs_gap: int
    samples: int

    @property
    def peak_error(self) -> float:
        if self.peak_reference == 0:
            return 0.0
        return abs(self.peak_simulated - self.peak_reference) / self.peak_reference

    @property
    def mean_gap_fraction(self) -> float:
        if self.peak_reference == 0:
            return 0.0
        return self.mean_abs_gap / self.peak_reference


def compare_curves(
    reference: TimelineRecorder,
    simulated: TimelineRecorder,
    samples: int = 256,
) -> CurveFidelity:
    """Resample both reserved-bytes curves onto a common fractional grid
    and report the gap statistics (the Fig. 6 overlay, numerically)."""
    if samples < 2:
        raise ValueError("need at least 2 comparison samples")
    ref_points = reference.points
    sim_points = simulated.points

    def value_at(points, fraction: float) -> int:
        if not points:
            return 0
        index = min(int(fraction * (len(points) - 1)), len(points) - 1)
        return points[index].reserved_bytes

    gaps = []
    for step in range(samples):
        fraction = step / (samples - 1)
        gaps.append(
            abs(value_at(ref_points, fraction) - value_at(sim_points, fraction))
        )
    return CurveFidelity(
        peak_reference=reference.peak_reserved(),
        peak_simulated=simulated.peak_reserved(),
        mean_abs_gap=sum(gaps) // len(gaps),
        max_abs_gap=max(gaps),
        samples=samples,
    )
