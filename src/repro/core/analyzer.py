"""The Analyzer: first stage of the xMem pipeline (paper §3.2).

Consumes the raw CPU profiling trace and produces a structured, temporally
ordered sequence of memory blocks with CPU lifecycles, each attributed to
its originating operator/component and classified by role (parameter,
batch data, activation, gradient, optimizer state, temporary) from the
trace structure alone — no cooperation from the runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TraceError
from ..framework.tensor import TensorRole
from ..trace.events import (
    DATALOADER_NEXT,
    MODEL_TO_DEVICE,
    OPTIMIZER_STEP_PREFIX,
    ZERO_GRAD_PREFIX,
    SpanEvent,
)
from ..trace.reader import Trace
from .attribution import AttributedBlock, attribute_blocks, operator_filter
from .lifecycle import reconstruct_lifecycles


@dataclass
class AnalyzedTrace:
    """Analyzer output: classified blocks plus the loop structure."""

    trace: Trace
    blocks: list[AttributedBlock]
    iterations: list[SpanEvent]
    zero_grads: list[SpanEvent]
    optimizer_steps: list[SpanEvent]
    unmatched_frees: int = 0
    reused_addresses: int = 0
    dropped_blocks: int = 0
    #: distinct sizes of blocks allocated during Module.to — the model's
    #: parameter-tensor sizes, used by the optimizer-state filter (§3.3)
    parameter_sizes: set[int] = field(default_factory=set)

    def blocks_by_role(self, role: TensorRole) -> list[AttributedBlock]:
        return [b for b in self.blocks if b.role is role]

    def role_bytes(self) -> dict[TensorRole, int]:
        totals: dict[TensorRole, int] = {}
        for item in self.blocks:
            if item.role is not None:
                totals[item.role] = totals.get(item.role, 0) + item.block.size
        return totals


class Analyzer:
    """Parses profiling data into an attributed, classified block sequence."""

    def __init__(self, strict: bool = False):
        self.strict = strict

    def analyze(self, trace: Trace) -> AnalyzedTrace:
        """Run lifecycle reconstruction, attribution, and classification."""
        if not trace.memory_events:
            raise TraceError("trace contains no memory events")
        iterations = trace.iterations()
        if not iterations:
            raise TraceError(
                "trace has no ProfilerStep annotations — cannot segment "
                "iterations"
            )
        report = reconstruct_lifecycles(trace.memory_events, strict=self.strict)
        attributed = attribute_blocks(trace, report.blocks)
        kept = operator_filter(attributed)
        dropped = len(attributed) - len(kept)
        analyzed = AnalyzedTrace(
            trace=trace,
            blocks=kept,
            iterations=iterations,
            zero_grads=trace.zero_grad_spans(),
            optimizer_steps=trace.optimizer_step_spans(),
            unmatched_frees=report.unmatched_frees,
            reused_addresses=report.reused_addresses,
            dropped_blocks=dropped,
        )
        self._classify(analyzed)
        return analyzed

    # ------------------------------------------------------------------
    # role classification
    # ------------------------------------------------------------------
    def _classify(self, analyzed: AnalyzedTrace) -> None:
        """Assign a :class:`TensorRole` to every block from trace structure.

        Rules (matching the §3.3 orchestration categories):

        * allocated inside ``Module.to`` -> PARAMETER;
        * allocated inside ``dataloader.__next__`` -> BATCH_DATA;
        * allocated inside ``Optimizer.step`` and persisting beyond it ->
          OPTIMIZER_STATE (sizes cross-checked against parameter sizes);
        * allocated in the backward pass and either never freed or freed at
          an iteration boundary / inside a ``zero_grad`` window -> GRADIENT;
        * freed within its own operator window -> TEMPORARY;
        * everything else -> ACTIVATION.
        """
        zero_grad_windows = [
            (w.ts, w.end) for w in analyzed.zero_grads
        ]
        step_windows = [(w.ts, w.end) for w in analyzed.optimizer_steps]
        # The tail of each iteration — after the optimizer step, before the
        # ProfilerStep span closes — is where the CPU run's deferred
        # collection releases gradient buffers.
        cleanup_windows: list[tuple[int, int]] = []
        for window in analyzed.iterations:
            steps_inside = [
                s for s in analyzed.optimizer_steps
                if window.contains_span(s)
            ]
            start = max((s.end for s in steps_inside), default=window.ts)
            cleanup_windows.append((start, window.end))

        for item in analyzed.blocks:
            block = item.block
            name = item.annotation_name or ""
            if name == MODEL_TO_DEVICE:
                item.role = TensorRole.PARAMETER
                analyzed.parameter_sizes.add(block.size)
                continue
            if name == DATALOADER_NEXT:
                item.role = TensorRole.BATCH_DATA
                continue
            if name.startswith(ZERO_GRAD_PREFIX):
                item.role = TensorRole.TEMPORARY
                continue
            if name.startswith(OPTIMIZER_STEP_PREFIX):
                if self._freed_within(block, step_windows):
                    item.role = TensorRole.TEMPORARY
                else:
                    item.role = TensorRole.OPTIMIZER_STATE
                continue
            if item.backward and self._looks_like_gradient(
                block, zero_grad_windows, cleanup_windows
            ):
                item.role = TensorRole.GRADIENT
                continue
            if (
                item.op is not None
                and block.free_ts is not None
                and item.op.contains_interval(block.alloc_ts, block.free_ts)
            ):
                item.role = TensorRole.TEMPORARY
                continue
            item.role = TensorRole.ACTIVATION

    @staticmethod
    def _freed_within(block, windows: list[tuple[int, int]]) -> bool:
        if block.free_ts is None:
            return False
        return any(start <= block.free_ts <= end for start, end in windows)

    def _looks_like_gradient(
        self,
        block,
        zero_grad_windows: list[tuple[int, int]],
        cleanup_windows: list[tuple[int, int]],
    ) -> bool:
        """Backward-allocated block whose free aligns with gradient clearing.

        Parameter gradients are freed inside a ``zero_grad`` window (GPU
        semantics), in an iteration's cleanup tail (the CPU trace's
        deferred collection), or never (the final iteration).  Activation
        gradients die inside the backward pass itself and fall through.
        """
        if block.free_ts is None:
            return True
        if self._freed_within(block, zero_grad_windows):
            return True
        return self._freed_within(block, cleanup_windows)
