"""The Memory Orchestrator: second stage of the xMem pipeline (§3.3).

Refines the CPU-derived lifecycle of every block so that it reflects the
block's expected lifecycle on the target GPU:

1. **Model parameters** — persistent for the analysed window.
2. **Batch data** — lifecycle limited to its training iteration.
3. **Activations** — CPU timings retained (they approximate GPU timings).
4. **Gradients** — deallocation snapped to the ``optimizer.zero_grad()``
   call that clears them (the CPU trace releases them late, at the
   iteration boundary, because the profiler pins them).
5. **Optimizer state** — persistent from its first allocation.

Rules are pluggable (:class:`OrchestrationRule`) so new frameworks or
training-loop styles can add their own adjustments (paper §6.4).
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..framework.tensor import TensorRole
from .analyzer import AnalyzedTrace
from .attribution import AttributedBlock


class EventKind(str, Enum):
    ALLOC = "alloc"
    FREE = "free"


@dataclass(frozen=True, slots=True)
class MemoryOp:
    """One replayable allocator operation."""

    ts: int
    kind: EventKind
    block_id: int
    size: int
    role: Optional[TensorRole] = None

    def sort_key(self) -> tuple[int, int, int]:
        # frees before allocs at equal timestamps: a GPU stream completes
        # pending releases before the next kernel's allocations
        kind_order = 0 if self.kind is EventKind.FREE else 1
        return (self.ts, kind_order, self.block_id)


@dataclass
class OrchestratedSequence:
    """Orchestrator output: the refined, replayable memory sequence."""

    events: list[MemoryOp]
    horizon: int  # timestamp at/after every event
    num_blocks: int
    persistent_bytes: int
    adjustments: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._stream: Optional[tuple[tuple[int, bool, int, int], ...]] = None
        #: stable content identity, stamped by the pipeline's orchestrate
        #: stage (see :func:`sequence_fingerprint`)
        self.fingerprint: Optional[str] = None

    def __getstate__(self) -> dict:
        # the flat stream is derived state: rebuild it lazily after
        # unpickling instead of doubling every artifact-store blob
        state = self.__dict__.copy()
        state["_stream"] = None
        return state

    def total_alloc_bytes(self) -> int:
        return sum(e.size for e in self.events if e.kind is EventKind.ALLOC)

    def event_stream(self) -> tuple[tuple[int, bool, int, int], ...]:
        """Flat ``(ts, is_alloc, block_id, size)`` tuples in replay order.

        Computed once per sequence and cached, so a stage-cached sequence
        replayed under many allocator configurations pays the per-event
        attribute walk a single time.  Callers must not mutate ``events``
        after the stream has been materialized.
        """
        stream = self._stream
        if stream is None:
            alloc = EventKind.ALLOC
            stream = tuple(
                (e.ts, e.kind is alloc, e.block_id, e.size)
                for e in self.events
            )
            self._stream = stream
        return stream


def sequence_fingerprint(sequence: OrchestratedSequence) -> str:
    """Stable content address of a sequence (memoized on the instance).

    Sequences produced by the pipeline's orchestrate stage carry a
    fingerprint derived from the orchestrate cache key (deterministic
    across processes), so they are never re-hashed; caller-built
    sequences are hashed over their flat event stream once.  Never uses
    ``id()`` — object identity is reused after garbage collection, which
    would alias distinct sequences in a long-lived simulate cache.
    """
    cached = getattr(sequence, "fingerprint", None)
    if cached is not None:
        return cached
    lines = [f"{e}\n" for e in sequence.event_stream()]
    lines.append(
        f"h|{sequence.horizon}|{sequence.num_blocks}"
        f"|{sequence.persistent_bytes}\n"
    )
    digest = hashlib.sha256("".join(lines).encode("utf-8"))
    fingerprint = "content:" + digest.hexdigest()[:32]
    sequence.fingerprint = fingerprint
    return fingerprint


class OrchestrationRule:
    """One lifecycle-adjustment rule; returns a new free_ts (or None to
    keep the block persistent) when the rule applies, else NO_CHANGE."""

    NO_CHANGE = object()
    name = "rule"

    def adjust(self, item: AttributedBlock, analyzed: AnalyzedTrace):
        raise NotImplementedError


class ParameterRule(OrchestrationRule):
    """Rule 1: parameters are persistent across the analysed iterations."""

    name = "parameters_persistent"

    def adjust(self, item: AttributedBlock, analyzed: AnalyzedTrace):
        if item.role is TensorRole.PARAMETER:
            return None
        return self.NO_CHANGE


class BatchDataRule(OrchestrationRule):
    """Rule 2: batch data lives at most until its iteration boundary."""

    name = "batch_iteration_bound"

    def adjust(self, item: AttributedBlock, analyzed: AnalyzedTrace):
        if item.role is not TensorRole.BATCH_DATA:
            return self.NO_CHANGE
        boundary = self._iteration_end(item, analyzed)
        if boundary is None:
            return self.NO_CHANGE
        free_ts = item.block.free_ts
        if free_ts is None or free_ts > boundary:
            return boundary
        return self.NO_CHANGE

    @staticmethod
    def _iteration_end(
        item: AttributedBlock, analyzed: AnalyzedTrace
    ) -> Optional[int]:
        for window in analyzed.iterations:
            if window.contains_time(item.block.alloc_ts):
                return window.end
        return None


class GradientRule(OrchestrationRule):
    """Rule 4: snap gradient deallocation to the clearing zero_grad call.

    The matching call is the first ``zero_grad`` window that *starts after*
    the gradient was allocated and at/before the traced (late) free.  Tail
    gradients — allocated after the last zero_grad — stay persistent.
    """

    name = "gradient_zero_grad_alignment"

    def adjust(self, item: AttributedBlock, analyzed: AnalyzedTrace):
        if item.role is not TensorRole.GRADIENT:
            return self.NO_CHANGE
        starts = [w.ts for w in analyzed.zero_grads]
        index = bisect.bisect_right(starts, item.block.alloc_ts)
        if index >= len(analyzed.zero_grads):
            return None  # no later zero_grad: persists past the trace
        window = analyzed.zero_grads[index]
        traced_free = item.block.free_ts
        if traced_free is not None and traced_free < window.ts:
            # freed before the next zero_grad (an activation gradient
            # misclassified, or custom clearing) — trust the trace
            return self.NO_CHANGE
        return window.ts + max(1, window.dur // 2)


class OptimizerStateRule(OrchestrationRule):
    """Rule 5: optimizer state persists once allocated (why xMem profiles
    at least two iterations)."""

    name = "optimizer_state_persistent"

    def adjust(self, item: AttributedBlock, analyzed: AnalyzedTrace):
        if item.role is TensorRole.OPTIMIZER_STATE:
            return None
        return self.NO_CHANGE


DEFAULT_RULES: tuple[OrchestrationRule, ...] = (
    ParameterRule(),
    BatchDataRule(),
    GradientRule(),
    OptimizerStateRule(),
)


class MemoryOrchestrator:
    """Applies orchestration rules and emits the replayable sequence."""

    def __init__(self, rules: tuple[OrchestrationRule, ...] = DEFAULT_RULES):
        self.rules = rules

    def orchestrate(self, analyzed: AnalyzedTrace) -> OrchestratedSequence:
        """Refine lifecycles and produce the ordered event sequence."""
        events: list[MemoryOp] = []
        adjustments: dict[str, int] = {rule.name: 0 for rule in self.rules}
        horizon = 0
        persistent_bytes = 0
        for item in analyzed.blocks:
            free_ts = item.block.free_ts
            for rule in self.rules:
                outcome = rule.adjust(item, analyzed)
                if outcome is OrchestrationRule.NO_CHANGE:
                    continue
                if outcome != free_ts:
                    adjustments[rule.name] += 1
                free_ts = outcome
                break  # first applicable rule wins
            events.append(
                MemoryOp(
                    ts=item.block.alloc_ts,
                    kind=EventKind.ALLOC,
                    block_id=item.block.block_id,
                    size=item.block.size,
                    role=item.role,
                )
            )
            horizon = max(horizon, item.block.alloc_ts)
            if free_ts is None:
                persistent_bytes += item.block.size
            else:
                if free_ts < item.block.alloc_ts:
                    free_ts = item.block.alloc_ts + 1
                events.append(
                    MemoryOp(
                        ts=free_ts,
                        kind=EventKind.FREE,
                        block_id=item.block.block_id,
                        size=item.block.size,
                        role=item.role,
                    )
                )
                horizon = max(horizon, free_ts)
        events.sort(key=MemoryOp.sort_key)
        return OrchestratedSequence(
            events=events,
            horizon=horizon + 1,
            num_blocks=len(analyzed.blocks),
            persistent_bytes=persistent_bytes,
            adjustments=adjustments,
        )


def raw_sequence(analyzed: AnalyzedTrace) -> OrchestratedSequence:
    """The un-orchestrated sequence (ablation: CPU lifecycles verbatim)."""
    return MemoryOrchestrator(rules=()).orchestrate(analyzed)
