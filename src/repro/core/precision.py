"""Mixed-precision re-estimation from an FP32 trace (paper §6.3).

The paper observes that across FP32/FP16 training only the *data type* of
tensors changes — shapes and the execution sequence are constant — so an
analyzed FP32 trace can be rescaled to estimate a lower-precision run
without re-profiling:

* activations, gradients, and batch float data scale by the itemsize
  ratio (4 -> 2 bytes for FP16);
* parameters and optimizer state scale only for a *pure* low-precision
  run; AMP-style mixed precision keeps FP32 master weights and optimizer
  state, and adds a half-precision copy of the parameters;
* integer tensors (embedding indices, masks, argmax indices) never scale
  — the conservative choice here keeps every TEMPORARY/SAVED block at
  full size.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..framework.dtypes import DType
from ..framework.tensor import TensorRole
from .analyzer import AnalyzedTrace
from .orchestrator import MemoryOrchestrator, OrchestratedSequence

#: roles that hold floating-point compute data and scale with precision
_SCALED_ROLES = frozenset(
    {TensorRole.ACTIVATION, TensorRole.GRADIENT, TensorRole.BATCH_DATA}
)
_WEIGHT_ROLES = frozenset(
    {TensorRole.PARAMETER, TensorRole.OPTIMIZER_STATE}
)


@dataclass(frozen=True)
class PrecisionPlan:
    """How to rescale an FP32-analyzed trace to another precision."""

    target: DType = DType.float16
    #: "pure": everything in the target dtype;
    #: "amp": FP32 master weights + optimizer state, half-precision
    #:        activations/gradients plus a half parameter copy.
    mode: str = "amp"

    def __post_init__(self) -> None:
        if self.mode not in ("pure", "amp"):
            raise ValueError(f"unknown precision mode {self.mode!r}")
        if self.target.itemsize >= DType.float32.itemsize:
            raise ValueError("target dtype must be narrower than float32")

    @property
    def ratio(self) -> float:
        return self.target.itemsize / DType.float32.itemsize


def rescale_sequence(
    analyzed: AnalyzedTrace,
    plan: PrecisionPlan,
    orchestrator: MemoryOrchestrator | None = None,
) -> OrchestratedSequence:
    """Orchestrate ``analyzed`` with block sizes rescaled per ``plan``.

    Returns a replayable sequence estimating the lower-precision run.
    """
    orchestrator = orchestrator or MemoryOrchestrator()
    sequence = orchestrator.orchestrate(analyzed)
    scale_by_block: dict[int, float] = {}
    extra_param_copy = 0
    for item in analyzed.blocks:
        role = item.role
        if role in _SCALED_ROLES:
            scale_by_block[item.block.block_id] = plan.ratio
        elif role in _WEIGHT_ROLES:
            if plan.mode == "pure":
                scale_by_block[item.block.block_id] = plan.ratio
            elif role is TensorRole.PARAMETER:
                # AMP keeps FP32 masters and adds a half-precision copy
                extra_param_copy += int(item.block.size * plan.ratio)
    events = []
    for event in sequence.events:
        scale = scale_by_block.get(event.block_id)
        if scale is None:
            events.append(event)
        else:
            new_size = max(1, int(event.size * scale))
            events.append(replace(event, size=new_size))
    persistent = sequence.persistent_bytes + (
        extra_param_copy if plan.mode == "amp" else 0
    )
    return OrchestratedSequence(
        events=events,
        horizon=sequence.horizon,
        num_blocks=sequence.num_blocks,
        persistent_bytes=persistent,
        adjustments=dict(sequence.adjustments),
    )


def estimate_precision_peak(
    analyzed: AnalyzedTrace,
    plan: PrecisionPlan,
    amp_param_copy_at: str = "start",
) -> int:
    """Replay the rescaled sequence; returns the estimated peak in bytes.

    For AMP the half-precision parameter copy is injected as a persistent
    allocation at the start of the sequence.
    """
    from .simulator import MemorySimulator

    sequence = rescale_sequence(analyzed, plan)
    if plan.mode == "amp":
        from .orchestrator import EventKind, MemoryOp

        param_bytes = sum(
            int(item.block.size * plan.ratio)
            for item in analyzed.blocks
            if item.role is TensorRole.PARAMETER
        )
        if param_bytes > 0:
            first_ts = sequence.events[0].ts if sequence.events else 0
            copy_event = MemoryOp(
                ts=first_ts,
                kind=EventKind.ALLOC,
                block_id=-1,
                size=param_bytes,
                role=TensorRole.PARAMETER,
            )
            sequence = OrchestratedSequence(
                events=[copy_event] + sequence.events,
                horizon=sequence.horizon,
                num_blocks=sequence.num_blocks + 1,
                persistent_bytes=sequence.persistent_bytes,
                adjustments=dict(sequence.adjustments),
            )
    return MemorySimulator().replay(sequence).peak_reserved_bytes
