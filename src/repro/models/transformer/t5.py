"""T5 encoder-decoder models (Raffel et al., 2020).

The decoder cross-attention consumes the encoder output through an explicit
DAG edge, so the encoder's final hidden state stays alive across the whole
decoder — the characteristic seq2seq memory pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...framework.dtypes import DType
from ...framework.layers import (
    Dropout,
    Embedding,
    Linear,
    MultiHeadSelfAttention,
    RMSNorm,
    make_activation,
)
from ...framework.module import Module
from ...framework.plan import PlanContext
from ...framework.tensor import TensorMeta


@dataclass(frozen=True)
class T5Config:
    """Architecture hyperparameters of a T5 model."""

    name: str
    vocab_size: int
    dim: int
    num_layers: int  # per stack (encoder and decoder each)
    num_heads: int
    ffn_dim: int
    dropout: float = 0.1


class _T5FFN(Module):
    def __init__(self, config: T5Config):
        super().__init__(name="ffn")
        self.norm = self.register_child(RMSNorm(config.dim, name="norm"))
        self.wi = self.register_child(
            Linear(config.dim, config.ffn_dim, bias=False, name="wi")
        )
        self.act = self.register_child(make_activation("relu", name="act"))
        self.wo = self.register_child(
            Linear(config.ffn_dim, config.dim, bias=False, name="wo")
        )

    def plan(self, ctx: PlanContext) -> None:
        entry_id = ctx.current_id
        entry_meta = ctx.current_meta
        self.norm(ctx)
        self.wi(ctx)
        self.act(ctx)
        self.wo(ctx)
        body_id = ctx.current_id
        ctx.add(
            "aten::add",
            output=entry_meta,
            inputs=(entry_id, body_id),
            flops=entry_meta.numel,
        )


class _T5AttentionBlock(Module):
    """Pre-norm (self- or cross-) attention with residual."""

    def __init__(self, config: T5Config, name: str):
        super().__init__(name=name)
        self.norm = self.register_child(RMSNorm(config.dim, name="norm"))
        self.attn = self.register_child(
            MultiHeadSelfAttention(
                config.dim,
                config.num_heads,
                dropout=config.dropout,
                bias=False,
                name="attn",
            )
        )

    def plan(self, ctx: PlanContext, kv_source_op: int | None = None) -> None:
        entry_id = ctx.current_id
        entry_meta = ctx.current_meta
        self.norm(ctx)
        with ctx.module(self.attn.name):
            self.attn.plan(ctx, kv_source_op=kv_source_op)
        body_id = ctx.current_id
        ctx.add(
            "aten::add",
            output=entry_meta,
            inputs=(entry_id, body_id),
            flops=entry_meta.numel,
        )


class T5Model(Module):
    """Encoder-decoder T5 producing (B, T, vocab) logits (tied head)."""

    def __init__(self, config: T5Config):
        super().__init__(name=config.name)
        self.config = config
        self.shared_embed = self.register_child(
            Embedding(config.vocab_size, config.dim, name="shared")
        )
        self.encoder_blocks: list[tuple[_T5AttentionBlock, _T5FFN]] = []
        for index in range(config.num_layers):
            attn = self.register_child(
                _T5AttentionBlock(config, name=f"enc{index}.self_attn")
            )
            ffn = self.register_child(_T5FFN(config))
            ffn.name = f"enc{index}.ffn"
            self.encoder_blocks.append((attn, ffn))
        self.decoder_blocks: list[
            tuple[_T5AttentionBlock, _T5AttentionBlock, _T5FFN]
        ] = []
        for index in range(config.num_layers):
            self_attn = self.register_child(
                _T5AttentionBlock(config, name=f"dec{index}.self_attn")
            )
            cross_attn = self.register_child(
                _T5AttentionBlock(config, name=f"dec{index}.cross_attn")
            )
            ffn = self.register_child(_T5FFN(config))
            ffn.name = f"dec{index}.ffn"
            self.decoder_blocks.append((self_attn, cross_attn, ffn))
        self.final_norm = self.register_child(RMSNorm(config.dim, name="final_norm"))
        self.dropout = (
            self.register_child(Dropout(config.dropout, name="dropout"))
            if config.dropout > 0
            else None
        )

    def input_meta(self, batch_size: int, seq_len: int = 128) -> TensorMeta:
        return TensorMeta((batch_size, seq_len), dtype=DType.int64)

    def plan(self, ctx: PlanContext) -> None:
        config = self.config
        # --- encoder over the source sequence -------------------------
        self.shared_embed(ctx)
        if self.dropout is not None:
            self.dropout(ctx)
        for attn, ffn in self.encoder_blocks:
            attn(ctx)
            ffn(ctx)
        encoder_out_id = ctx.current_id
        encoder_out_meta = ctx.current_meta
        # --- decoder over the target sequence -------------------------
        batch, seq, _ = encoder_out_meta.shape
        # Decoder input ids piggyback on the same batch fetch; embedding
        # lookup starts a fresh chain from the encoder output position.
        ctx.set_current(
            PlanContextInputProxy.INPUT_OP_ID,
            TensorMeta((batch, seq), dtype=DType.int64),
        )
        self.shared_embed(ctx)
        for self_attn, cross_attn, ffn in self.decoder_blocks:
            self_attn(ctx)
            with ctx.module(cross_attn.name):
                cross_attn.plan(ctx, kv_source_op=encoder_out_id)
            ffn(ctx)
        self.final_norm(ctx)
        # Tied LM head: no extra parameters, logits allocated
        ctx.add(
            "aten::mm",
            output=TensorMeta((batch, seq, config.vocab_size)),
            saves_input=True,
            flops=2 * batch * seq * config.dim * config.vocab_size,
        )


class PlanContextInputProxy:
    """Alias for the batch-input pseudo op id (avoids importing PlanContext
    just for the constant)."""

    INPUT_OP_ID = 0
