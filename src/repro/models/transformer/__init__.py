"""Transformer model zoo (Table 2, transformer half + RQ5 models)."""

from . import configs
from .decoder import DecoderBlock, DecoderConfig, DecoderLM
from .t5 import T5Config, T5Model

__all__ = [
    "DecoderBlock",
    "DecoderConfig",
    "DecoderLM",
    "T5Config",
    "T5Model",
    "configs",
]
