"""Published architecture configurations for the paper's transformer zoo.

Hyperparameters follow each model's released config (HuggingFace model
cards); parameter counts land within a few percent of the published sizes,
which is what the memory experiments need.
"""

from __future__ import annotations

from .decoder import DecoderConfig
from .t5 import T5Config

DISTILGPT2 = DecoderConfig(
    name="distilgpt2",
    vocab_size=50257,
    dim=768,
    num_layers=6,
    num_heads=12,
    ffn_dim=3072,
    max_positions=1024,
)

GPT2 = DecoderConfig(
    name="gpt2",
    vocab_size=50257,
    dim=768,
    num_layers=12,
    num_heads=12,
    ffn_dim=3072,
    max_positions=1024,
)

GPT_NEO_125M = DecoderConfig(
    name="gpt-neo-125M",
    vocab_size=50257,
    dim=768,
    num_layers=12,
    num_heads=12,
    ffn_dim=3072,
    max_positions=2048,
)

OPT_125M = DecoderConfig(
    name="opt-125m",
    vocab_size=50272,
    dim=768,
    num_layers=12,
    num_heads=12,
    ffn_dim=3072,
    max_positions=2048,
    activation="relu",
)

OPT_350M = DecoderConfig(
    name="opt-350m",
    vocab_size=50272,
    dim=1024,
    num_layers=24,
    num_heads=16,
    ffn_dim=4096,
    max_positions=2048,
    activation="relu",
)

CEREBRAS_GPT_111M = DecoderConfig(
    name="Cerebras-GPT-111M",
    vocab_size=50257,
    dim=768,
    num_layers=10,
    num_heads=12,
    ffn_dim=3072,
    max_positions=2048,
)

PYTHIA_1B = DecoderConfig(
    name="pythia-1b",
    vocab_size=50304,
    dim=2048,
    num_layers=16,
    num_heads=8,
    ffn_dim=8192,
    max_positions=2048,
    positional="rope",
    tie_embeddings=False,
    dropout=0.0,
)

QWEN3_0_6B = DecoderConfig(
    name="Qwen3-0.6B",
    vocab_size=151936,
    dim=1024,
    num_layers=28,
    num_heads=16,
    num_kv_heads=8,
    ffn_dim=3072,
    max_positions=4096,
    activation="silu",
    norm="rmsnorm",
    positional="rope",
    mlp="gated",
    dropout=0.0,
)

LLAMA_3_2_3B = DecoderConfig(
    name="Llama-3.2-3B-Instruct",
    vocab_size=128256,
    dim=3072,
    num_layers=28,
    num_heads=24,
    num_kv_heads=8,
    ffn_dim=8192,
    max_positions=4096,
    activation="silu",
    norm="rmsnorm",
    positional="rope",
    mlp="gated",
    dropout=0.0,
)

DEEPSEEK_R1_DISTILL_QWEN_1_5B = DecoderConfig(
    name="DeepSeek-R1-Distill-Qwen-1.5B",
    vocab_size=151936,
    dim=1536,
    num_layers=28,
    num_heads=12,
    num_kv_heads=2,
    ffn_dim=8960,
    max_positions=4096,
    activation="silu",
    norm="rmsnorm",
    positional="rope",
    mlp="gated",
    dropout=0.0,
)

QWEN3_4B = DecoderConfig(
    name="Qwen3-4B",
    vocab_size=151936,
    dim=2560,
    num_layers=36,
    num_heads=32,
    num_kv_heads=8,
    ffn_dim=9728,
    max_positions=4096,
    activation="silu",
    norm="rmsnorm",
    positional="rope",
    mlp="gated",
    dropout=0.0,
)

T5_SMALL = T5Config(
    name="t5-small",
    vocab_size=32128,
    dim=512,
    num_layers=6,
    num_heads=8,
    ffn_dim=2048,
)

T5_BASE = T5Config(
    name="t5-base",
    vocab_size=32128,
    dim=768,
    num_layers=12,
    num_heads=12,
    ffn_dim=3072,
)
