"""Decoder-only language models (GPT-2 family, OPT, Pythia, Qwen, Llama…).

One parametric architecture covers every decoder-only model in the paper's
Table 2: the models differ in layer count, width, head configuration
(including grouped-query attention), feed-forward size, positional scheme
(learned vs. rotary), normalization (LayerNorm vs. RMSNorm), and whether
the LM head ties the embedding matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...framework.dtypes import DType
from ...framework.layers import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    MultiHeadSelfAttention,
    PositionalEmbedding,
    RMSNorm,
    make_activation,
)
from ...framework.module import Module
from ...framework.plan import PlanContext
from ...framework.tensor import TensorMeta


@dataclass(frozen=True)
class DecoderConfig:
    """Architecture hyperparameters of a decoder-only LM."""

    name: str
    vocab_size: int
    dim: int
    num_layers: int
    num_heads: int
    ffn_dim: int
    max_positions: int = 2048
    num_kv_heads: Optional[int] = None
    activation: str = "gelu"
    norm: str = "layernorm"  # "layernorm" | "rmsnorm"
    positional: str = "learned"  # "learned" | "rope"
    tie_embeddings: bool = True
    dropout: float = 0.1
    #: SwiGLU-style MLPs have gate+up projections (Llama/Qwen); "plain" has
    #: a single up projection (GPT-2).
    mlp: str = "plain"  # "plain" | "gated"

    def __post_init__(self) -> None:
        if self.norm not in ("layernorm", "rmsnorm"):
            raise ValueError(f"unknown norm {self.norm!r}")
        if self.positional not in ("learned", "rope"):
            raise ValueError(f"unknown positional {self.positional!r}")
        if self.mlp not in ("plain", "gated"):
            raise ValueError(f"unknown mlp {self.mlp!r}")


def _make_norm(config: DecoderConfig, name: str) -> Module:
    if config.norm == "rmsnorm":
        return RMSNorm(config.dim, name=name)
    return LayerNorm(config.dim, name=name)


class _MLP(Module):
    """Transformer feed-forward: plain (fc-act-fc) or gated (SwiGLU)."""

    def __init__(self, config: DecoderConfig, name: str = "mlp"):
        super().__init__(name=name)
        bias = config.norm == "layernorm"  # modern RMSNorm models drop biases
        self.gated = config.mlp == "gated"
        self.fc_up = self.register_child(
            Linear(config.dim, config.ffn_dim, bias=bias, name="up")
        )
        self.fc_gate = None
        if self.gated:
            self.fc_gate = self.register_child(
                Linear(config.dim, config.ffn_dim, bias=bias, name="gate")
            )
        self.act = self.register_child(
            make_activation(config.activation, name="act")
        )
        self.fc_down = self.register_child(
            Linear(config.ffn_dim, config.dim, bias=bias, name="down")
        )

    def plan(self, ctx: PlanContext) -> None:
        if self.gated and self.fc_gate is not None:
            entry_id = ctx.current_id
            entry_meta = ctx.current_meta
            self.fc_gate(ctx)
            self.act(ctx)
            gate_id = ctx.current_id
            ctx.set_current(entry_id, entry_meta)
            self.fc_up(ctx)
            up_id = ctx.current_id
            up_meta = ctx.current_meta
            ctx.add(
                "aten::mul",
                output=up_meta,
                inputs=(gate_id, up_id),
                saves_input=True,
                flops=up_meta.numel,
            )
        else:
            self.fc_up(ctx)
            self.act(ctx)
        self.fc_down(ctx)


class DecoderBlock(Module):
    """Pre-norm transformer block: norm-attn-residual, norm-mlp-residual."""

    def __init__(self, config: DecoderConfig, index: int):
        super().__init__(name=f"block{index}")
        self.norm1 = self.register_child(_make_norm(config, "norm1"))
        self.attn = self.register_child(
            MultiHeadSelfAttention(
                config.dim,
                config.num_heads,
                num_kv_heads=config.num_kv_heads,
                dropout=config.dropout,
                bias=config.norm == "layernorm",
                name="attn",
            )
        )
        self.norm2 = self.register_child(_make_norm(config, "norm2"))
        self.mlp = self.register_child(_MLP(config))
        self.dropout = (
            self.register_child(Dropout(config.dropout, name="resid_dropout"))
            if config.dropout > 0
            else None
        )

    def plan(self, ctx: PlanContext) -> None:
        entry_id = ctx.current_id
        entry_meta = ctx.current_meta
        self.norm1(ctx)
        self.attn(ctx)
        if self.dropout is not None:
            self.dropout(ctx)
        attn_id = ctx.current_id
        ctx.add(
            "aten::add",
            output=entry_meta,
            inputs=(entry_id, attn_id),
            flops=entry_meta.numel,
        )
        mid_id = ctx.current_id
        mid_meta = ctx.current_meta
        self.norm2(ctx)
        self.mlp(ctx)
        mlp_id = ctx.current_id
        ctx.add(
            "aten::add",
            output=mid_meta,
            inputs=(mid_id, mlp_id),
            flops=mid_meta.numel,
        )


class LMHead(Module):
    """Projection to vocabulary logits; tied heads reuse the embedding."""

    def __init__(self, dim: int, vocab_size: int, tied: bool):
        super().__init__(name="lm_head")
        self.dim = dim
        self.vocab_size = vocab_size
        self.tied = tied
        if not tied:
            self.weight = self.register_param(
                "weight", TensorMeta((vocab_size, dim))
            )

    def plan(self, ctx: PlanContext) -> None:
        x = ctx.current_meta
        batch, seq, _ = x.shape
        ctx.add(
            "aten::mm",
            output=TensorMeta((batch, seq, self.vocab_size)),
            saves_input=True,
            param_bytes=0 if self.tied else self.own_param_bytes(),
            flops=2 * batch * seq * self.dim * self.vocab_size,
        )


class DecoderLM(Module):
    """Complete decoder-only LM producing (B, T, vocab) logits."""

    def __init__(self, config: DecoderConfig):
        super().__init__(name=config.name)
        self.config = config
        self.embed = self.register_child(
            Embedding(config.vocab_size, config.dim, name="embed_tokens")
        )
        self.pos_embed = None
        if config.positional == "learned":
            self.pos_embed = self.register_child(
                PositionalEmbedding(
                    config.max_positions, config.dim, name="embed_positions"
                )
            )
        self.embed_dropout = (
            self.register_child(Dropout(config.dropout, name="embed_dropout"))
            if config.dropout > 0
            else None
        )
        self.blocks = [
            self.register_child(DecoderBlock(config, index))
            for index in range(config.num_layers)
        ]
        self.final_norm = self.register_child(_make_norm(config, "final_norm"))
        self.head = self.register_child(
            LMHead(config.dim, config.vocab_size, tied=config.tie_embeddings)
        )

    def input_meta(self, batch_size: int, seq_len: int = 128) -> TensorMeta:
        seq_len = min(seq_len, self.config.max_positions)
        return TensorMeta((batch_size, seq_len), dtype=DType.int64)

    def plan(self, ctx: PlanContext) -> None:
        self.embed(ctx)
        if self.pos_embed is not None:
            self.pos_embed(ctx)
        if self.embed_dropout is not None:
            self.embed_dropout(ctx)
        for block in self.blocks:
            block(ctx)
        self.final_norm(ctx)
        self.head(ctx)
