"""Shared CNN building blocks (squeeze-excite, classifier heads)."""

from __future__ import annotations

from typing import Optional

from ...framework.layers import (
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPoolFlatten,
    Linear,
    make_activation,
)
from ...framework.module import Module, Sequential
from ...framework.plan import PlanContext
from ...framework.tensor import TensorMeta


class SqueezeExcite(Module):
    """Squeeze-and-excitation gate: global pool -> bottleneck MLP -> scale.

    The gate multiply consumes both the block activation and the gate, so
    the block activation stays alive across the SE branch — an example of
    the DAG lifetimes that make CNN memory more than a running sum.
    """

    def __init__(
        self,
        channels: int,
        reduced: int,
        gate: str = "sigmoid",
        name: Optional[str] = None,
    ):
        super().__init__(name=name or "SqueezeExcite")
        self.fc1 = self.register_child(
            Conv2d(channels, reduced, kernel_size=1, name="fc1")
        )
        self.act = self.register_child(make_activation("relu", name="act"))
        self.fc2 = self.register_child(
            Conv2d(reduced, channels, kernel_size=1, name="fc2")
        )
        self.gate = self.register_child(make_activation(gate, name="gate"))

    def plan(self, ctx: PlanContext) -> None:
        entry_id = ctx.current_id
        entry_meta = ctx.current_meta
        batch, channels = entry_meta.shape[0], entry_meta.shape[1]
        ctx.add(
            "aten::adaptive_avg_pool2d",
            output=entry_meta.with_shape((batch, channels, 1, 1)),
            flops=entry_meta.numel,
        )
        self.fc1(ctx)
        self.act(ctx)
        self.fc2(ctx)
        self.gate(ctx)
        gate_id = ctx.current_id
        ctx.add(
            "aten::mul",
            output=entry_meta,
            inputs=(entry_id, gate_id),
            saves_input=True,
            flops=entry_meta.numel,
        )


class ClassifierHead(Module):
    """Global-average-pool classifier with optional dropout."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        dropout: float = 0.0,
        name: Optional[str] = None,
    ):
        super().__init__(name=name or "ClassifierHead")
        self.pool = self.register_child(GlobalAvgPoolFlatten(name="pool"))
        self.dropout = (
            self.register_child(Dropout(dropout, name="dropout"))
            if dropout > 0
            else None
        )
        self.fc = self.register_child(Linear(in_features, num_classes, name="fc"))

    def plan(self, ctx: PlanContext) -> None:
        self.pool(ctx)
        if self.dropout is not None:
            self.dropout(ctx)
        self.fc(ctx)


class ImageModel(Module):
    """Container pairing a feature extractor with a classifier head and
    declaring the input spec CNN workloads use."""

    def __init__(
        self,
        name: str,
        body: Module,
        image_size: int = 64,
        in_channels: int = 3,
    ):
        super().__init__(name=name)
        self.body = self.register_child(body)
        self.image_size = image_size
        self.in_channels = in_channels

    def input_meta(self, batch_size: int) -> TensorMeta:
        return TensorMeta(
            (batch_size, self.in_channels, self.image_size, self.image_size)
        )

    def plan(self, ctx: PlanContext) -> None:
        self.body(ctx)


def mlp_classifier(
    in_features: int, hidden: int, num_classes: int, dropout: float = 0.5
) -> Sequential:
    """VGG-style two-hidden-layer classifier."""
    return Sequential(
        Flatten(),
        Linear(in_features, hidden, name="fc1"),
        make_activation("relu", name="act1"),
        Dropout(dropout, name="drop1"),
        Linear(hidden, hidden, name="fc2"),
        make_activation("relu", name="act2"),
        Dropout(dropout, name="drop2"),
        Linear(hidden, num_classes, name="fc3"),
        name="classifier",
    )
