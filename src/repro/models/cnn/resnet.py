"""ResNet-101 / ResNet-152 (He et al., 2016) with bottleneck blocks."""

from __future__ import annotations

from typing import Optional

from ...framework.layers import ConvBnAct, MaxPool2d, make_activation
from ...framework.module import Module, Sequential
from ...framework.plan import PlanContext
from .common import ClassifierHead, ImageModel

_EXPANSION = 4


class Bottleneck(Module):
    """1x1 -> 3x3 -> 1x1 bottleneck with identity or projection shortcut."""

    def __init__(
        self,
        in_channels: int,
        planes: int,
        stride: int = 1,
        name: Optional[str] = None,
    ):
        super().__init__(name=name or "Bottleneck")
        out_channels = planes * _EXPANSION
        self.conv1 = self.register_child(
            ConvBnAct(in_channels, planes, 1, name="conv1")
        )
        self.conv2 = self.register_child(
            ConvBnAct(planes, planes, 3, stride=stride, name="conv2")
        )
        self.conv3 = self.register_child(
            ConvBnAct(planes, out_channels, 1, activation=None, name="conv3")
        )
        self.downsample = None
        if stride != 1 or in_channels != out_channels:
            self.downsample = self.register_child(
                ConvBnAct(
                    in_channels,
                    out_channels,
                    1,
                    stride=stride,
                    activation=None,
                    name="downsample",
                )
            )
        self.act = self.register_child(
            make_activation("relu", name="act", inplace=True)
        )

    def plan(self, ctx: PlanContext) -> None:
        entry_id = ctx.current_id
        entry_meta = ctx.current_meta
        self.conv1(ctx)
        self.conv2(ctx)
        self.conv3(ctx)
        body_id = ctx.current_id
        body_meta = ctx.current_meta
        if self.downsample is not None:
            ctx.set_current(entry_id, entry_meta)
            self.downsample(ctx)
            shortcut_id = ctx.current_id
        else:
            shortcut_id = entry_id
        ctx.add(
            "aten::add",
            output=body_meta,
            inputs=(body_id, shortcut_id),
            flops=body_meta.numel,
        )
        self.act(ctx)


def _make_stage(
    in_channels: int, planes: int, blocks: int, stride: int, name: str
) -> tuple[Sequential, int]:
    modules: list[Module] = [Bottleneck(in_channels, planes, stride=stride)]
    out_channels = planes * _EXPANSION
    for _ in range(blocks - 1):
        modules.append(Bottleneck(out_channels, planes))
    return Sequential(*modules, name=name), out_channels


def _resnet(
    name: str, layers: list[int], image_size: int, num_classes: int
) -> ImageModel:
    stem = Sequential(
        ConvBnAct(3, 64, 7, stride=2, padding=3, name="stem"),
        MaxPool2d(kernel_size=3, stride=2, padding=1),
        name="stem",
    )
    channels = 64
    stages: list[Module] = [stem]
    for index, (planes, blocks) in enumerate(zip((64, 128, 256, 512), layers)):
        stride = 1 if index == 0 else 2
        stage, channels = _make_stage(
            channels, planes, blocks, stride, name=f"layer{index + 1}"
        )
        stages.append(stage)
    stages.append(ClassifierHead(channels, num_classes, name="head"))
    return ImageModel(
        name=name, body=Sequential(*stages, name="resnet"), image_size=image_size
    )


def resnet101(image_size: int = 64, num_classes: int = 1000) -> ImageModel:
    """ResNet-101 (~44.5M parameters)."""
    return _resnet("ResNet101", [3, 4, 23, 3], image_size, num_classes)


def resnet152(image_size: int = 64, num_classes: int = 1000) -> ImageModel:
    """ResNet-152 (~60.2M parameters)."""
    return _resnet("ResNet152", [3, 8, 36, 3], image_size, num_classes)
