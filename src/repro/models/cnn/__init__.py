"""CNN model zoo (Table 2, convolutional half)."""

from . import common, convnext, mnasnet, mobilenet, regnet, resnet, vgg

__all__ = ["common", "convnext", "mnasnet", "mobilenet", "regnet", "resnet", "vgg"]
