"""RegNetX-400MF / RegNetY-400MF (Radosavovic et al., 2020).

Stage widths/depths follow the published 400MF design; RegNetY adds
squeeze-excitation to each block.
"""

from __future__ import annotations

from typing import Optional

from ...framework.layers import ConvBnAct, make_activation
from ...framework.module import Module, Sequential
from ...framework.plan import PlanContext
from .common import ClassifierHead, ImageModel, SqueezeExcite

# RegNet-400MF design: depths and widths per stage, group width 16.
_X400_DEPTHS = (1, 2, 7, 12)
_X400_WIDTHS = (32, 64, 160, 384)
_Y400_DEPTHS = (1, 3, 6, 6)
_Y400_WIDTHS = (48, 104, 208, 440)
_GROUP_WIDTH = 16  # RegNetX-400MF
_Y_GROUP_WIDTH = 8  # RegNetY-400MF


class XBlock(Module):
    """RegNet bottleneck block (ratio 1): 1x1, grouped 3x3, 1x1 + shortcut."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int,
        group_width: int,
        se_ratio: float = 0.0,
        name: Optional[str] = None,
    ):
        super().__init__(name=name or "XBlock")
        groups = max(1, out_channels // group_width)
        self.conv1 = self.register_child(
            ConvBnAct(in_channels, out_channels, 1, name="conv1")
        )
        self.conv2 = self.register_child(
            ConvBnAct(
                out_channels, out_channels, 3,
                stride=stride, groups=groups, name="conv2",
            )
        )
        self.se = None
        if se_ratio > 0:
            reduced = max(1, int(in_channels * se_ratio))
            self.se = self.register_child(SqueezeExcite(out_channels, reduced))
        self.conv3 = self.register_child(
            ConvBnAct(out_channels, out_channels, 1, activation=None, name="conv3")
        )
        self.shortcut = None
        if stride != 1 or in_channels != out_channels:
            self.shortcut = self.register_child(
                ConvBnAct(
                    in_channels, out_channels, 1,
                    stride=stride, activation=None, name="shortcut",
                )
            )
        self.act = self.register_child(
            make_activation("relu", name="act", inplace=True)
        )

    def plan(self, ctx: PlanContext) -> None:
        entry_id = ctx.current_id
        entry_meta = ctx.current_meta
        self.conv1(ctx)
        self.conv2(ctx)
        if self.se is not None:
            self.se(ctx)
        self.conv3(ctx)
        body_id = ctx.current_id
        body_meta = ctx.current_meta
        if self.shortcut is not None:
            ctx.set_current(entry_id, entry_meta)
            self.shortcut(ctx)
            shortcut_id = ctx.current_id
        else:
            shortcut_id = entry_id
        ctx.add(
            "aten::add",
            output=body_meta,
            inputs=(body_id, shortcut_id),
            flops=body_meta.numel,
        )
        self.act(ctx)


def _regnet(
    name: str,
    depths: tuple[int, ...],
    widths: tuple[int, ...],
    group_width: int,
    se_ratio: float,
    image_size: int,
    num_classes: int,
) -> ImageModel:
    modules: list[Module] = [ConvBnAct(3, 32, 3, stride=2, name="stem")]
    channels = 32
    for stage, (depth, width) in enumerate(zip(depths, widths)):
        for index in range(depth):
            stride = 2 if index == 0 else 1
            modules.append(
                XBlock(
                    channels, width, stride, group_width,
                    se_ratio=se_ratio,
                    name=f"s{stage + 1}b{index + 1}",
                )
            )
            channels = width
    modules.append(ClassifierHead(channels, num_classes, name="head"))
    return ImageModel(name, Sequential(*modules, name=name.lower()), image_size)


def regnet_x_400mf(image_size: int = 64, num_classes: int = 1000) -> ImageModel:
    """RegNetX-400MF (~5.2M parameters)."""
    return _regnet(
        "RegNetX400MF", _X400_DEPTHS, _X400_WIDTHS, _GROUP_WIDTH, 0.0,
        image_size, num_classes,
    )


def regnet_y_400mf(image_size: int = 64, num_classes: int = 1000) -> ImageModel:
    """RegNetY-400MF (~4.3M parameters, with squeeze-excitation)."""
    return _regnet(
        "RegNetY400MF", _Y400_DEPTHS, _Y400_WIDTHS, _Y_GROUP_WIDTH, 0.25,
        image_size, num_classes,
    )
