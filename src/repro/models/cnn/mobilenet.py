"""MobileNetV2 / MobileNetV3 (Sandler et al., 2018; Howard et al., 2019)."""

from __future__ import annotations

from typing import Optional

from ...framework.functional import make_divisible
from ...framework.layers import ConvBnAct, Dropout, GlobalAvgPoolFlatten, Linear, make_activation
from ...framework.module import Module, Sequential
from ...framework.plan import PlanContext
from .common import ImageModel, SqueezeExcite


class InvertedResidual(Module):
    """Expand (1x1) -> depthwise (kxk) -> project (1x1), optional SE,
    residual when stride 1 and channels match (MobileNetV2/V3 block)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int,
        expand_channels: int,
        activation: str = "relu",
        se_ratio: float = 0.0,
        name: Optional[str] = None,
    ):
        super().__init__(name=name or "InvertedResidual")
        self.use_residual = stride == 1 and in_channels == out_channels
        self.expand = None
        if expand_channels != in_channels:
            self.expand = self.register_child(
                ConvBnAct(
                    in_channels, expand_channels, 1,
                    activation=activation, name="expand",
                )
            )
        self.depthwise = self.register_child(
            ConvBnAct(
                expand_channels,
                expand_channels,
                kernel_size,
                stride=stride,
                groups=expand_channels,
                activation=activation,
                name="depthwise",
            )
        )
        self.se = None
        if se_ratio > 0:
            reduced = make_divisible(expand_channels * se_ratio)
            self.se = self.register_child(
                SqueezeExcite(expand_channels, reduced, gate="hardsigmoid")
            )
        self.project = self.register_child(
            ConvBnAct(expand_channels, out_channels, 1, activation=None, name="project")
        )

    def plan(self, ctx: PlanContext) -> None:
        entry_id = ctx.current_id
        if self.expand is not None:
            self.expand(ctx)
        self.depthwise(ctx)
        if self.se is not None:
            self.se(ctx)
        self.project(ctx)
        if self.use_residual:
            body_id = ctx.current_id
            body_meta = ctx.current_meta
            ctx.add(
                "aten::add",
                output=body_meta,
                inputs=(body_id, entry_id),
                flops=body_meta.numel,
            )


class _MobileHead(Module):
    """MobileNet classifier: 1x1 conv expand, pool, (hidden fc), fc."""

    def __init__(
        self,
        in_channels: int,
        conv_channels: int,
        hidden: Optional[int],
        num_classes: int,
        activation: str,
        dropout: float = 0.2,
    ):
        super().__init__(name="head")
        self.conv = self.register_child(
            ConvBnAct(in_channels, conv_channels, 1, activation=activation, name="conv")
        )
        self.pool = self.register_child(GlobalAvgPoolFlatten(name="pool"))
        self.hidden = None
        self.hidden_act = None
        features = conv_channels
        if hidden is not None:
            self.hidden = self.register_child(Linear(conv_channels, hidden, name="fc1"))
            self.hidden_act = self.register_child(
                make_activation(activation, name="act")
            )
            features = hidden
        self.dropout = self.register_child(Dropout(dropout, name="dropout"))
        self.fc = self.register_child(Linear(features, num_classes, name="fc"))

    def plan(self, ctx: PlanContext) -> None:
        self.conv(ctx)
        self.pool(ctx)
        if self.hidden is not None:
            self.hidden(ctx)
            self.hidden_act(ctx)
        self.dropout(ctx)
        self.fc(ctx)


# t (expansion factor), c (channels), n (repeats), s (stride)
_V2_SETTINGS = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]

# kernel, expanded, out, se_ratio, activation, stride
_V3_LARGE_SETTINGS = [
    (3, 16, 16, 0.0, "relu", 1),
    (3, 64, 24, 0.0, "relu", 2),
    (3, 72, 24, 0.0, "relu", 1),
    (5, 72, 40, 0.25, "relu", 2),
    (5, 120, 40, 0.25, "relu", 1),
    (5, 120, 40, 0.25, "relu", 1),
    (3, 240, 80, 0.0, "hardswish", 2),
    (3, 200, 80, 0.0, "hardswish", 1),
    (3, 184, 80, 0.0, "hardswish", 1),
    (3, 184, 80, 0.0, "hardswish", 1),
    (3, 480, 112, 0.25, "hardswish", 1),
    (3, 672, 112, 0.25, "hardswish", 1),
    (5, 672, 160, 0.25, "hardswish", 2),
    (5, 960, 160, 0.25, "hardswish", 1),
    (5, 960, 160, 0.25, "hardswish", 1),
]

_V3_SMALL_SETTINGS = [
    (3, 16, 16, 0.25, "relu", 2),
    (3, 72, 24, 0.0, "relu", 2),
    (3, 88, 24, 0.0, "relu", 1),
    (5, 96, 40, 0.25, "hardswish", 2),
    (5, 240, 40, 0.25, "hardswish", 1),
    (5, 240, 40, 0.25, "hardswish", 1),
    (5, 120, 48, 0.25, "hardswish", 1),
    (5, 144, 48, 0.25, "hardswish", 1),
    (5, 288, 96, 0.25, "hardswish", 2),
    (5, 576, 96, 0.25, "hardswish", 1),
    (5, 576, 96, 0.25, "hardswish", 1),
]


def mobilenet_v2(image_size: int = 64, num_classes: int = 1000) -> ImageModel:
    """MobileNetV2 (~3.5M parameters)."""
    modules: list[Module] = [
        ConvBnAct(3, 32, 3, stride=2, activation="relu", name="stem")
    ]
    channels = 32
    for t, c, n, s in _V2_SETTINGS:
        for index in range(n):
            stride = s if index == 0 else 1
            modules.append(
                InvertedResidual(
                    channels, c, 3, stride,
                    expand_channels=channels * t,
                    activation="relu",
                )
            )
            channels = c
    modules.append(_MobileHead(channels, 1280, None, num_classes, "relu"))
    body = Sequential(*modules, name="mobilenetv2")
    return ImageModel("MobileNetV2", body, image_size=image_size)


def _mobilenet_v3(
    name: str,
    settings: list,
    head_conv: int,
    head_hidden: int,
    image_size: int,
    num_classes: int,
) -> ImageModel:
    modules: list[Module] = [
        ConvBnAct(3, 16, 3, stride=2, activation="hardswish", name="stem")
    ]
    channels = 16
    for kernel, expanded, out, se_ratio, activation, stride in settings:
        modules.append(
            InvertedResidual(
                channels, out, kernel, stride,
                expand_channels=expanded,
                activation=activation,
                se_ratio=se_ratio,
            )
        )
        channels = out
    modules.append(
        _MobileHead(channels, head_conv, head_hidden, num_classes, "hardswish")
    )
    return ImageModel(name, Sequential(*modules, name=name.lower()), image_size)


def mobilenet_v3_large(image_size: int = 64, num_classes: int = 1000) -> ImageModel:
    """MobileNetV3-Large (~5.4M parameters)."""
    return _mobilenet_v3(
        "MobileNetV3Large", _V3_LARGE_SETTINGS, 960, 1280, image_size, num_classes
    )


def mobilenet_v3_small(image_size: int = 64, num_classes: int = 1000) -> ImageModel:
    """MobileNetV3-Small (~2.5M parameters)."""
    return _mobilenet_v3(
        "MobileNetV3Small", _V3_SMALL_SETTINGS, 576, 1024, image_size, num_classes
    )
