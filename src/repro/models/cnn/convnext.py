"""ConvNeXt-Tiny / ConvNeXt-Base (Liu et al., 2022).

Depthwise 7x7 + LayerNorm + inverted MLP blocks.  Channel-last LayerNorm is
modelled as GroupNorm(1, C) ("LayerNorm2d"), the standard equivalent.
"""

from __future__ import annotations

from typing import Optional

from ...framework.layers import Conv2d, GroupNorm, make_activation
from ...framework.module import Module, Sequential
from ...framework.plan import PlanContext
from .common import ClassifierHead, ImageModel


class ConvNeXtBlock(Module):
    """dwconv7x7 -> LayerNorm -> pwconv(4x) -> GELU -> pwconv -> +residual."""

    def __init__(self, dim: int, name: Optional[str] = None):
        super().__init__(name=name or "ConvNeXtBlock")
        self.dwconv = self.register_child(
            Conv2d(dim, dim, 7, padding=3, groups=dim, name="dwconv")
        )
        self.norm = self.register_child(GroupNorm(1, dim, name="norm"))
        self.pwconv1 = self.register_child(Conv2d(dim, 4 * dim, 1, name="pwconv1"))
        self.act = self.register_child(make_activation("gelu", name="act"))
        self.pwconv2 = self.register_child(Conv2d(4 * dim, dim, 1, name="pwconv2"))

    def plan(self, ctx: PlanContext) -> None:
        entry_id = ctx.current_id
        entry_meta = ctx.current_meta
        self.dwconv(ctx)
        self.norm(ctx)
        self.pwconv1(ctx)
        self.act(ctx)
        self.pwconv2(ctx)
        body_id = ctx.current_id
        ctx.add(
            "aten::add",
            output=entry_meta,
            inputs=(body_id, entry_id),
            flops=entry_meta.numel,
        )


class _Downsample(Module):
    """Norm + strided conv between ConvNeXt stages."""

    def __init__(self, in_dim: int, out_dim: int, name: Optional[str] = None):
        super().__init__(name=name or "Downsample")
        self.norm = self.register_child(GroupNorm(1, in_dim, name="norm"))
        self.conv = self.register_child(
            Conv2d(in_dim, out_dim, 2, stride=2, name="conv")
        )

    def plan(self, ctx: PlanContext) -> None:
        self.norm(ctx)
        self.conv(ctx)


def _convnext(
    name: str,
    depths: tuple[int, ...],
    dims: tuple[int, ...],
    image_size: int,
    num_classes: int,
) -> ImageModel:
    modules: list[Module] = [
        Conv2d(3, dims[0], 4, stride=4, name="stem"),
        GroupNorm(1, dims[0], name="stem_norm"),
    ]
    for stage, (depth, dim) in enumerate(zip(depths, dims)):
        if stage > 0:
            modules.append(_Downsample(dims[stage - 1], dim, name=f"down{stage}"))
        for index in range(depth):
            modules.append(ConvNeXtBlock(dim, name=f"s{stage}b{index}"))
    modules.append(ClassifierHead(dims[-1], num_classes, name="head"))
    return ImageModel(name, Sequential(*modules, name=name.lower()), image_size)


def convnext_tiny(image_size: int = 64, num_classes: int = 1000) -> ImageModel:
    """ConvNeXt-Tiny (~28.6M parameters)."""
    return _convnext(
        "ConvNeXtTiny", (3, 3, 9, 3), (96, 192, 384, 768), image_size, num_classes
    )


def convnext_base(image_size: int = 64, num_classes: int = 1000) -> ImageModel:
    """ConvNeXt-Base (~88.6M parameters)."""
    return _convnext(
        "ConvNeXtBase", (3, 3, 27, 3), (128, 256, 512, 1024), image_size, num_classes
    )
