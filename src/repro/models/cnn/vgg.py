"""VGG-16 / VGG-19 (Simonyan & Zisserman, 2014).

Classic plain conv stacks: enormous early activations and a 138M/144M
parameter count dominated by the fully connected head — the CNN worst case
for activation memory in the paper's batch sweep.
"""

from __future__ import annotations

from ...framework.layers import AdaptiveAvgPool2d, Conv2d, MaxPool2d, make_activation
from ...framework.module import Module, Sequential
from .common import ImageModel, mlp_classifier

_VGG16_CFG = [
    64, 64, "M",
    128, 128, "M",
    256, 256, 256, "M",
    512, 512, 512, "M",
    512, 512, 512, "M",
]
_VGG19_CFG = [
    64, 64, "M",
    128, 128, "M",
    256, 256, 256, 256, "M",
    512, 512, 512, 512, "M",
    512, 512, 512, 512, "M",
]


def _make_features(cfg: list) -> Sequential:
    modules: list[Module] = []
    in_channels = 3
    for item in cfg:
        if item == "M":
            modules.append(MaxPool2d(kernel_size=2, stride=2))
            continue
        modules.append(
            Conv2d(in_channels, item, kernel_size=3, padding=1, name="conv")
        )
        modules.append(make_activation("relu", inplace=True))
        in_channels = item
    return Sequential(*modules, name="features")


def _vgg(name: str, cfg: list, image_size: int, num_classes: int) -> ImageModel:
    body = Sequential(
        _make_features(cfg),
        AdaptiveAvgPool2d(7, name="avgpool"),
        mlp_classifier(512 * 7 * 7, 4096, num_classes),
        name="vgg",
    )
    return ImageModel(name=name, body=body, image_size=image_size)


def vgg16(image_size: int = 64, num_classes: int = 1000) -> ImageModel:
    """VGG-16 (~138M parameters)."""
    return _vgg("VGG16", _VGG16_CFG, image_size, num_classes)


def vgg19(image_size: int = 64, num_classes: int = 1000) -> ImageModel:
    """VGG-19 (~144M parameters)."""
    return _vgg("VGG19", _VGG19_CFG, image_size, num_classes)
