"""MnasNet-B1 (Tan et al., 2019)."""

from __future__ import annotations

from ...framework.layers import ConvBnAct
from ...framework.module import Module, Sequential
from .common import ClassifierHead, ImageModel
from .mobilenet import InvertedResidual

# expansion, channels, repeats, stride, kernel
_B1_SETTINGS = [
    (3, 24, 3, 2, 3),
    (3, 40, 3, 2, 5),
    (6, 80, 3, 2, 5),
    (6, 96, 2, 1, 3),
    (6, 192, 4, 2, 5),
    (6, 320, 1, 1, 3),
]


def mnasnet(image_size: int = 64, num_classes: int = 1000) -> ImageModel:
    """MnasNet-B1 at depth multiplier 1.0 (~4.4M parameters)."""
    modules: list[Module] = [
        ConvBnAct(3, 32, 3, stride=2, name="stem"),
        InvertedResidual(32, 16, 3, 1, expand_channels=32, name="sep"),
    ]
    channels = 16
    for expansion, out, repeats, stride, kernel in _B1_SETTINGS:
        for index in range(repeats):
            block_stride = stride if index == 0 else 1
            modules.append(
                InvertedResidual(
                    channels, out, kernel, block_stride,
                    expand_channels=channels * expansion,
                )
            )
            channels = out
    modules.append(ConvBnAct(channels, 1280, 1, name="head_conv"))
    modules.append(ClassifierHead(1280, num_classes, dropout=0.2, name="head"))
    return ImageModel(
        "MnasNet", Sequential(*modules, name="mnasnet"), image_size=image_size
    )
