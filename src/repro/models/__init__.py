"""Model zoo: all 25 models of the paper's Table 2."""

from .registry import (
    CNN_IMAGE_SIZE,
    NUM_CLASSES,
    SEQ_LEN,
    ModelSpec,
    get_model_spec,
    list_models,
    rq5_models,
)

__all__ = [
    "CNN_IMAGE_SIZE",
    "ModelSpec",
    "NUM_CLASSES",
    "SEQ_LEN",
    "get_model_spec",
    "list_models",
    "rq5_models",
]
