"""Model registry: every workload of the paper's Table 2 by name.

A :class:`ModelSpec` couples a builder with the input/label shapes a
training iteration consumes, so workloads can be described as
``(model name, optimizer, batch size)`` exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import ModelNotFoundError
from ..framework.dtypes import DType
from ..framework.module import Module
from ..framework.tensor import TensorMeta
from .cnn import convnext, mnasnet, mobilenet, regnet, resnet, vgg
from .transformer import configs
from .transformer.decoder import DecoderLM
from .transformer.t5 import T5Model

#: Image side used for CNN workloads.  The paper trains on a 12 GB RTX 3060
#: with batches 200-700; 64x64 inputs put that grid on the fits/OOM
#: boundary of the simulated devices (DESIGN.md, substitutions).
CNN_IMAGE_SIZE = 64
#: Sequence length used for transformer workloads.
SEQ_LEN = 128
#: Number of classes for CNN heads.
NUM_CLASSES = 1000


@dataclass(frozen=True)
class ModelSpec:
    """A registered model: builder plus workload input description."""

    name: str
    family: str  # "cnn" | "transformer"
    build: Callable[[], Module]
    input_meta: Callable[[int], TensorMeta]
    label_meta: Callable[[int], TensorMeta]
    year: int = 0
    rq5_only: bool = False
    causal_lm: bool = False  # True for decoder-only LMs (LLMem's scope)
    notes: str = ""
    aliases: tuple[str, ...] = field(default=())


def _cnn_spec(name: str, builder: Callable[..., Module], year: int) -> ModelSpec:
    return ModelSpec(
        name=name,
        family="cnn",
        build=lambda: builder(image_size=CNN_IMAGE_SIZE, num_classes=NUM_CLASSES),
        input_meta=lambda batch: TensorMeta(
            (batch, 3, CNN_IMAGE_SIZE, CNN_IMAGE_SIZE)
        ),
        label_meta=lambda batch: TensorMeta((batch,), dtype=DType.int64),
        year=year,
    )


def _decoder_spec(
    config, year: int, rq5_only: bool = False, seq_len: int = SEQ_LEN
) -> ModelSpec:
    return ModelSpec(
        name=config.name,
        family="transformer",
        build=lambda: DecoderLM(config),
        input_meta=lambda batch: TensorMeta((batch, seq_len), dtype=DType.int64),
        label_meta=lambda batch: TensorMeta((batch, seq_len), dtype=DType.int64),
        year=year,
        rq5_only=rq5_only,
        causal_lm=True,
    )


def _t5_spec(config, year: int) -> ModelSpec:
    return ModelSpec(
        name=config.name,
        family="transformer",
        build=lambda: T5Model(config),
        input_meta=lambda batch: TensorMeta((batch, SEQ_LEN), dtype=DType.int64),
        label_meta=lambda batch: TensorMeta((batch, SEQ_LEN), dtype=DType.int64),
        year=year,
        causal_lm=False,  # encoder-decoder: outside LLMem's CausalLM scope
    )


_SPECS: dict[str, ModelSpec] = {}


def _register(spec: ModelSpec) -> None:
    for key in (spec.name, *spec.aliases):
        lowered = key.lower()
        if lowered in _SPECS:
            raise ValueError(f"duplicate model registration: {key}")
        _SPECS[lowered] = spec


# --- CNNs (Table 2, upper half) --------------------------------------
_register(_cnn_spec("VGG16", vgg.vgg16, 2014))
_register(_cnn_spec("VGG19", vgg.vgg19, 2014))
_register(_cnn_spec("ResNet101", resnet.resnet101, 2016))
_register(_cnn_spec("ResNet152", resnet.resnet152, 2016))
_register(_cnn_spec("MobileNetV2", mobilenet.mobilenet_v2, 2018))
_register(_cnn_spec("MobileNetV3Small", mobilenet.mobilenet_v3_small, 2019))
_register(_cnn_spec("MobileNetV3Large", mobilenet.mobilenet_v3_large, 2019))
_register(_cnn_spec("MnasNet", mnasnet.mnasnet, 2019))
_register(_cnn_spec("RegNetX400MF", regnet.regnet_x_400mf, 2020))
_register(_cnn_spec("RegNetY400MF", regnet.regnet_y_400mf, 2020))
_register(_cnn_spec("ConvNeXtTiny", convnext.convnext_tiny, 2022))
_register(_cnn_spec("ConvNeXtBase", convnext.convnext_base, 2022))

# --- Transformers (Table 2, lower half) -------------------------------
_register(_decoder_spec(configs.DISTILGPT2, 2019))
_register(_decoder_spec(configs.GPT2, 2019))
_register(_t5_spec(configs.T5_SMALL, 2020))
_register(_t5_spec(configs.T5_BASE, 2020))
_register(_decoder_spec(configs.GPT_NEO_125M, 2022))
_register(_decoder_spec(configs.OPT_125M, 2022))
_register(_decoder_spec(configs.OPT_350M, 2022))
_register(_decoder_spec(configs.CEREBRAS_GPT_111M, 2023))
_register(_decoder_spec(configs.PYTHIA_1B, 2023))
_register(_decoder_spec(configs.QWEN3_0_6B, 2025))

# --- RQ5 large models (Table 2, '*' rows) -----------------------------
_register(_decoder_spec(configs.LLAMA_3_2_3B, 2024, rq5_only=True))
_register(
    _decoder_spec(configs.DEEPSEEK_R1_DISTILL_QWEN_1_5B, 2025, rq5_only=True)
)
_register(_decoder_spec(configs.QWEN3_4B, 2025, rq5_only=True))


def get_model_spec(name: str) -> ModelSpec:
    """Look up a model spec by (case-insensitive) name."""
    try:
        return _SPECS[name.lower()]
    except KeyError:
        raise ModelNotFoundError(
            f"unknown model {name!r}; known: {sorted({s.name for s in _SPECS.values()})}"
        ) from None


def list_models(
    family: str | None = None, include_rq5: bool = False
) -> list[ModelSpec]:
    """All registered specs, optionally filtered by family."""
    seen: dict[str, ModelSpec] = {}
    for spec in _SPECS.values():
        seen.setdefault(spec.name, spec)
    specs = sorted(seen.values(), key=lambda s: s.name.lower())
    if family is not None:
        specs = [s for s in specs if s.family == family]
    if not include_rq5:
        specs = [s for s in specs if not s.rq5_only]
    return specs


def rq5_models() -> list[ModelSpec]:
    """The three large models used only in RQ5."""
    seen: dict[str, ModelSpec] = {}
    for spec in _SPECS.values():
        if spec.rq5_only:
            seen.setdefault(spec.name, spec)
    return sorted(seen.values(), key=lambda s: s.name.lower())
