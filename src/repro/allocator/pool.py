"""Free-block pools with best-fit search.

The caching allocator keeps two pools (small / large).  Each pool stores its
free blocks ordered by ``(size, addr)`` so that a best-fit lookup is a single
bisection: the first block with ``size >= request`` is the smallest
sufficient block, with the lowest address breaking ties — the same ordering
``std::set<Block*, Comparator>`` gives the C++ implementation.
"""

from __future__ import annotations

import bisect
from typing import Optional

from .block import Block


class BlockPool:
    """A sorted collection of free blocks belonging to one size class."""

    def __init__(self, is_small: bool):
        self.is_small = is_small
        # Parallel sorted list of keys so we can bisect without comparing
        # Block objects. _keys[i] corresponds to _blocks[i].
        self._keys: list[tuple[int, int]] = []
        self._blocks: list[Block] = []

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, block: Block) -> bool:
        index = bisect.bisect_left(self._keys, block.sort_key())
        return index < len(self._blocks) and self._blocks[index] is block

    def add(self, block: Block) -> None:
        """Insert a free block; raises if it is already present."""
        key = block.sort_key()
        index = bisect.bisect_left(self._keys, key)
        if index < len(self._blocks) and self._blocks[index] is block:
            raise ValueError(f"block {block!r} already in pool")
        self._keys.insert(index, key)
        self._blocks.insert(index, block)

    def remove(self, block: Block) -> None:
        """Remove a block from the pool; raises KeyError if absent."""
        key = block.sort_key()
        index = bisect.bisect_left(self._keys, key)
        while index < len(self._blocks) and self._keys[index] == key:
            if self._blocks[index] is block:
                del self._keys[index]
                del self._blocks[index]
                return
            index += 1
        raise KeyError(f"block {block!r} not in pool")

    def find_best_fit(self, size: int) -> Optional[Block]:
        """Smallest free block with ``block.size >= size`` (lowest address on
        ties), or None when the pool cannot satisfy the request."""
        index = bisect.bisect_left(self._keys, (size, -1))
        if index < len(self._blocks):
            return self._blocks[index]
        return None

    def blocks_larger_than(self, size: int) -> list[Block]:
        """All free blocks strictly larger than ``size``, ascending.

        Used by the reclaim path that releases oversized cached blocks
        (``release_available_cached_blocks``) before declaring OOM.
        """
        index = bisect.bisect_right(self._keys, (size, 2**63))
        return list(self._blocks[index:])

    def total_free_bytes(self) -> int:
        return sum(key[0] for key in self._keys)

    def __iter__(self):
        return iter(self._blocks)
