"""Device-level allocator: the simulated ``cudaMalloc`` / ``cudaFree``.

The paper's simulator is *two-level* (§3.4): the framework's caching
allocator requests segments from the device, and the device itself manages a
finite physical capacity with its own allocator [GMAI, ref 6].  We model the
device as a first-fit-with-coalescing free list over the address range
``[0, capacity)``; an allocation that no free range can satisfy raises
:class:`DeviceOutOfMemoryError`, which is the signal that makes the caching
allocator reclaim its cached segments before declaring a true OOM.

A capacity reservation API models the memory that is not available to the
training job: the CUDA context / framework overhead (``M_fm``) and any
memory already in use on the device (``M_init`` in the paper's notation).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeviceOutOfMemoryError, InvalidFreeError


@dataclass
class _Range:
    addr: int
    size: int

    @property
    def end(self) -> int:
        return self.addr + self.size


@dataclass
class DeviceStats:
    """Counters mirroring what NVML exposes about a device."""

    capacity: int
    used: int = 0
    peak_used: int = 0
    num_allocs: int = 0
    num_frees: int = 0
    num_failed_allocs: int = 0

    @property
    def free(self) -> int:
        return self.capacity - self.used


class DeviceAllocator:
    """First-fit free-list allocator over a fixed device capacity.

    Addresses are virtual but stable, so the caching allocator's blocks can
    use them for adjacency and best-fit tie-breaking.
    """

    #: cudaMalloc returns 512-byte (actually larger) aligned pointers; we use
    #: 512 to match the block granularity of the level above.
    ALIGNMENT = 512

    def __init__(self, capacity: int, reserved: int = 0):
        if capacity <= 0:
            raise ValueError(f"device capacity must be positive, got {capacity}")
        if reserved < 0 or reserved > capacity:
            raise ValueError(
                f"reserved bytes {reserved} outside [0, {capacity}]"
            )
        self.capacity = capacity
        self.reserved = reserved
        usable = capacity - reserved
        self._free_ranges: list[_Range] = [_Range(0, usable)] if usable else []
        self._allocations: dict[int, int] = {}
        self.stats = DeviceStats(capacity=usable)

    # ------------------------------------------------------------------
    # allocation API
    # ------------------------------------------------------------------
    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the base address.

        Raises :class:`DeviceOutOfMemoryError` when no contiguous free range
        is large enough (capacity exhaustion *or* fragmentation).
        """
        if size <= 0:
            raise ValueError(f"device allocation must be positive, got {size}")
        aligned = self._align(size)
        for index, free_range in enumerate(self._free_ranges):
            if free_range.size >= aligned:
                addr = free_range.addr
                if free_range.size == aligned:
                    del self._free_ranges[index]
                else:
                    free_range.addr += aligned
                    free_range.size -= aligned
                self._allocations[addr] = aligned
                self.stats.used += aligned
                self.stats.peak_used = max(self.stats.peak_used, self.stats.used)
                self.stats.num_allocs += 1
                return addr
        self.stats.num_failed_allocs += 1
        raise DeviceOutOfMemoryError(
            requested=aligned,
            free_bytes=self.stats.free,
            capacity=self.stats.capacity,
        )

    def free(self, addr: int) -> int:
        """Free a previous allocation; returns the number of bytes released."""
        size = self._allocations.pop(addr, None)
        if size is None:
            raise InvalidFreeError(f"device free of unknown address {addr:#x}")
        self.stats.used -= size
        self.stats.num_frees += 1
        self._insert_free_range(_Range(addr, size))
        return size

    def can_alloc(self, size: int) -> bool:
        """True when :meth:`alloc` of ``size`` would currently succeed."""
        aligned = self._align(size)
        return any(r.size >= aligned for r in self._free_ranges)

    @property
    def used_bytes(self) -> int:
        return self.stats.used

    @property
    def free_bytes(self) -> int:
        return self.stats.free

    @property
    def largest_free_range(self) -> int:
        return max((r.size for r in self._free_ranges), default=0)

    def fragmentation(self) -> float:
        """1 - largest_free/total_free; 0 when free space is contiguous."""
        free = self.stats.free
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_range / free

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _align(self, size: int) -> int:
        alignment = self.ALIGNMENT
        return ((size + alignment - 1) // alignment) * alignment

    def _insert_free_range(self, new_range: _Range) -> None:
        """Insert into the address-ordered free list, coalescing neighbours."""
        ranges = self._free_ranges
        low, high = 0, len(ranges)
        while low < high:
            mid = (low + high) // 2
            if ranges[mid].addr < new_range.addr:
                low = mid + 1
            else:
                high = mid
        index = low
        ranges.insert(index, new_range)
        # Coalesce with successor first, then predecessor.
        if index + 1 < len(ranges) and new_range.end == ranges[index + 1].addr:
            new_range.size += ranges[index + 1].size
            del ranges[index + 1]
        if index > 0 and ranges[index - 1].end == new_range.addr:
            ranges[index - 1].size += new_range.size
            del ranges[index]
