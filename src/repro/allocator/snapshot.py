"""Snapshot export, mirroring ``torch.cuda.memory_snapshot()``.

The paper verifies its simulator against PyTorch's snapshot profiler
(§3.4, Fig. 6); this module produces the same segment/block structure from a
simulated allocator so fidelity checks can diff the two representations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .caching import CachingAllocator


def memory_snapshot(allocator: "CachingAllocator") -> list[dict]:
    """Export the allocator's segments as a list of JSON-safe dicts.

    Each entry mirrors a PyTorch snapshot segment: base address, total /
    allocated / active sizes, pool class, and the ordered block chain with
    per-block state (``active_allocated`` or ``inactive``).
    """
    snapshot = []
    for segment in allocator.segments():
        blocks = []
        for block in segment.blocks():
            blocks.append(
                {
                    "address": block.addr,
                    "size": block.size,
                    "requested_size": block.requested_size,
                    "state": "active_allocated" if block.allocated else "inactive",
                }
            )
        allocated = segment.allocated_bytes
        snapshot.append(
            {
                "address": segment.addr,
                "total_size": segment.size,
                "allocated_size": allocated,
                "active_size": allocated,
                "segment_type": "small" if segment.is_small else "large",
                "blocks": blocks,
            }
        )
    return snapshot


def summarize_snapshot(snapshot: list[dict]) -> dict[str, int]:
    """Aggregate a snapshot into totals (reserved/allocated/cached/segments)."""
    reserved = sum(s["total_size"] for s in snapshot)
    allocated = sum(s["allocated_size"] for s in snapshot)
    return {
        "num_segments": len(snapshot),
        "reserved_bytes": reserved,
        "allocated_bytes": allocated,
        "cached_bytes": reserved - allocated,
        "num_blocks": sum(len(s["blocks"]) for s in snapshot),
    }
