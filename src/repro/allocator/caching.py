"""The framework-level caching allocator: a Python CUDACachingAllocator.

This is the simulator the paper releases alongside xMem (§3.4, contribution
4).  It reproduces the techniques the paper enumerates:

* **Round up** — request sizes rounded to 512 B (``rounding.round_size``).
* **Segment** — cache misses allocate over-sized device segments (2 MiB /
  20 MiB / 2 MiB-aligned), so reserved memory exceeds tensor memory.
* **Algorithm** — Best Fit with Coalescing: best-fit free-block search per
  pool, block splitting when the remainder is worth keeping, and merging of
  adjacent free blocks on free.
* **Caching behaviour** — freed blocks stay cached in their segment; new
  segments are requested from the device only when the cache cannot serve.
* **OOM** — a device allocation failure first triggers reclamation of
  fully-free cached segments (same pool, then all pools); only when the
  device still cannot satisfy the request is a simulated OOM raised.  This
  two-level chain is what single-level simulations (DNNMem) miss (§5.1).
"""

from __future__ import annotations

from typing import Optional

from ..errors import (
    DeviceOutOfMemoryError,
    InvalidFreeError,
    SimOutOfMemoryError,
)
from .block import Block, Segment
from .constants import DEFAULT_CONFIG, AllocatorConfig
from .device import DeviceAllocator
from .pool import BlockPool
from .rounding import is_small_request, round_size, segment_size
from .stats import AllocatorStats, TimelineRecorder


class CachingAllocator:
    """Two-level caching allocator over a :class:`DeviceAllocator`."""

    def __init__(
        self,
        device: DeviceAllocator,
        config: AllocatorConfig = DEFAULT_CONFIG,
        record_timeline: bool = True,
        timeline_max_points: Optional[int] = None,
    ):
        self.device = device
        self.config = config
        self.stats = AllocatorStats()
        self.timeline = (
            TimelineRecorder(max_points=timeline_max_points)
            if record_timeline
            else None
        )
        self._small_pool = BlockPool(is_small=True)
        self._large_pool = BlockPool(is_small=False)
        self._segments: dict[int, Segment] = {}
        self._owners: dict[int, Block] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def malloc(self, size: int, ts: int = 0, owner: Optional[int] = None) -> Block:
        """Allocate ``size`` bytes; returns the backing block.

        ``owner`` is an optional caller-side identifier (the replayed memory
        event's block id) enabling :meth:`free_owner`.

        Raises :class:`SimOutOfMemoryError` when the request fails at both
        allocator levels even after reclaiming cached segments.
        """
        if owner is not None and owner in self._owners:
            raise InvalidFreeError(
                f"owner {owner} already holds a live block — double alloc"
            )
        rounded = round_size(size, self.config)
        pool = self._pool_for(rounded)
        block = self._find_cached_block(pool, rounded)
        if block is not None:
            self.stats.num_cache_hits += 1
            pool.remove(block)
        else:
            self.stats.num_cache_misses += 1
            block = self._alloc_segment_block(pool, rounded)
        block = self._maybe_split(pool, block, rounded)
        block.allocated = True
        block.requested_size = size
        block.owner = owner
        if owner is not None:
            self._owners[owner] = block
        self.stats.allocated_bytes.increase(block.size)
        self.stats.requested_bytes.increase(size)
        self.stats.active_blocks.increase(1)
        self._record(ts)
        return block

    def free(self, block: Block, ts: int = 0) -> None:
        """Return a block to the cache, coalescing with free neighbours."""
        if not block.allocated:
            raise InvalidFreeError(f"double free of {block!r}")
        pool = self._pool_for_segment(block.segment)
        self.stats.allocated_bytes.decrease(block.size)
        self.stats.requested_bytes.decrease(block.requested_size)
        self.stats.active_blocks.decrease(1)
        block.allocated = False
        block.requested_size = 0
        if block.owner is not None:
            self._owners.pop(block.owner, None)
            block.owner = None
        merged = self._coalesce(pool, block)
        pool.add(merged)
        if not self.config.cache_segments and merged.segment.is_fully_free():
            self._release_segment(pool, merged.segment)
        self._record(ts)

    def free_owner(self, owner: int, ts: int = 0) -> None:
        """Free the live block registered under ``owner``."""
        block = self._owners.get(owner)
        if block is None:
            raise InvalidFreeError(f"no live block for owner {owner}")
        self.free(block, ts=ts)

    def empty_cache(self, ts: int = 0) -> int:
        """Release every fully-free cached segment; returns bytes released."""
        released = self._release_free_segments(self._small_pool)
        released += self._release_free_segments(self._large_pool)
        self._record(ts)
        return released

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def allocated_bytes(self) -> int:
        """Bytes currently backing live tensors (the "Tensor" curve)."""
        return self.stats.allocated_bytes.current

    @property
    def reserved_bytes(self) -> int:
        """Bytes of device segments held (the "Segment" curve; NVML view)."""
        return self.stats.reserved_bytes.current

    @property
    def peak_reserved_bytes(self) -> int:
        return self.stats.reserved_bytes.peak

    @property
    def peak_allocated_bytes(self) -> int:
        return self.stats.allocated_bytes.peak

    def segments(self) -> list[Segment]:
        return sorted(self._segments.values(), key=lambda s: s.addr)

    def live_blocks(self) -> list[Block]:
        return [
            block
            for segment in self._segments.values()
            for block in segment.blocks()
            if block.allocated
        ]

    def cached_bytes(self) -> int:
        """Reserved-but-unallocated bytes (the cache)."""
        return self.reserved_bytes - self.allocated_bytes

    def check_invariants(self) -> None:
        """Verify internal consistency; used by property-based tests."""
        reserved = sum(s.size for s in self._segments.values())
        if reserved != self.reserved_bytes:
            raise AssertionError(
                f"segment sizes {reserved} != reserved counter "
                f"{self.reserved_bytes}"
            )
        allocated = sum(
            b.size
            for s in self._segments.values()
            for b in s.blocks()
            if b.allocated
        )
        if allocated != self.allocated_bytes:
            raise AssertionError(
                f"block sizes {allocated} != allocated counter "
                f"{self.allocated_bytes}"
            )
        for segment in self._segments.values():
            total = sum(b.size for b in segment.blocks())
            if total != segment.size:
                raise AssertionError(
                    f"blocks of {segment!r} sum to {total}, not {segment.size}"
                )
            previous = None
            for block in segment.blocks():
                if previous is not None:
                    if previous.end != block.addr:
                        raise AssertionError("non-contiguous block chain")
                    if not previous.allocated and not block.allocated:
                        raise AssertionError("adjacent free blocks not merged")
                    if block.prev is not previous:
                        raise AssertionError("broken back link")
                previous = block

    # ------------------------------------------------------------------
    # allocation internals
    # ------------------------------------------------------------------
    def _pool_for(self, rounded: int) -> BlockPool:
        if is_small_request(rounded, self.config):
            return self._small_pool
        return self._large_pool

    def _pool_for_segment(self, segment: Segment) -> BlockPool:
        return self._small_pool if segment.is_small else self._large_pool

    def _find_cached_block(self, pool: BlockPool, rounded: int) -> Optional[Block]:
        block = pool.find_best_fit(rounded)
        if block is None:
            return None
        max_split = self.config.max_split_size
        if max_split is not None and not pool.is_small:
            # Oversized blocks may not be split: only serve requests that
            # consume (nearly) the whole block, mirroring max_split_size_mb.
            if block.size > max_split and rounded <= max_split:
                return None
            if block.size > max_split and block.size - rounded > self.config.large_buffer:
                return None
        return block

    def _alloc_segment_block(self, pool: BlockPool, rounded: int) -> Block:
        seg_size = segment_size(rounded, self.config)
        addr = self._device_alloc_with_reclaim(pool, seg_size, rounded)
        segment = Segment(addr=addr, size=seg_size, is_small=pool.is_small)
        block = Block(addr=addr, size=seg_size, segment=segment)
        segment.first_block = block
        self._segments[addr] = segment
        self.stats.reserved_bytes.increase(seg_size)
        self.stats.segments.increase(1)
        return block

    def _device_alloc_with_reclaim(
        self, pool: BlockPool, seg_size: int, rounded: int
    ) -> int:
        """cudaMalloc with the reclaim-then-retry chain of the real allocator."""
        try:
            return self.device.alloc(seg_size)
        except DeviceOutOfMemoryError:
            self.stats.num_alloc_retries += 1
            if not self.config.reclaim_on_oom:
                self.stats.num_ooms += 1
                raise SimOutOfMemoryError(
                    requested=rounded,
                    allocated=self.allocated_bytes,
                    reserved=self.reserved_bytes,
                    capacity=self.device.stats.capacity,
                ) from None
        # Stage 1: release fully-free cached segments of the same pool.
        self._release_free_segments(pool)
        try:
            return self.device.alloc(seg_size)
        except DeviceOutOfMemoryError:
            self.stats.num_alloc_retries += 1
        # Stage 2: release everything cached (both pools).
        self._release_free_segments(self._small_pool)
        self._release_free_segments(self._large_pool)
        try:
            return self.device.alloc(seg_size)
        except DeviceOutOfMemoryError:
            self.stats.num_ooms += 1
            raise SimOutOfMemoryError(
                requested=rounded,
                allocated=self.allocated_bytes,
                reserved=self.reserved_bytes,
                capacity=self.device.stats.capacity,
            ) from None

    def _maybe_split(self, pool: BlockPool, block: Block, rounded: int) -> Block:
        if not self._should_split(pool, block, rounded):
            return block
        remainder = Block(
            addr=block.addr + rounded,
            size=block.size - rounded,
            segment=block.segment,
            prev=block,
            next=block.next,
        )
        if block.next is not None:
            block.next.prev = remainder
        block.next = remainder
        block.size = rounded
        pool.add(remainder)
        self.stats.num_splits += 1
        return block

    def _should_split(self, pool: BlockPool, block: Block, rounded: int) -> bool:
        if not self.config.allow_split:
            return False
        remaining = block.size - rounded
        if remaining <= 0:
            return False
        if self.config.max_split_size is not None and not pool.is_small:
            if block.size > self.config.max_split_size:
                return False
        if pool.is_small:
            return remaining >= self.config.min_block_size
        return remaining > self.config.small_size

    def _coalesce(self, pool: BlockPool, block: Block) -> Block:
        """Merge ``block`` with free neighbours; returns the merged block."""
        if block.prev is not None and not block.prev.allocated:
            previous = block.prev
            pool.remove(previous)
            previous.size += block.size
            previous.next = block.next
            if block.next is not None:
                block.next.prev = previous
            block = previous
            self.stats.num_coalesces += 1
        if block.next is not None and not block.next.allocated:
            following = block.next
            pool.remove(following)
            block.size += following.size
            block.next = following.next
            if following.next is not None:
                following.next.prev = block
            self.stats.num_coalesces += 1
        return block

    def _release_free_segments(self, pool: BlockPool) -> int:
        """Return all fully-free segments of ``pool`` to the device."""
        released = 0
        for block in list(pool):
            if block.segment.is_fully_free():
                pool.remove(block)
                released += block.segment.size
                self._release_segment_record(block.segment)
        return released

    def _release_segment(self, pool: BlockPool, segment: Segment) -> None:
        """Release one fully-free segment (non-caching ablation path)."""
        block = segment.first_block
        assert block is not None and not block.allocated
        pool.remove(block)
        self._release_segment_record(segment)

    def _release_segment_record(self, segment: Segment) -> None:
        self.device.free(segment.addr)
        del self._segments[segment.addr]
        self.stats.reserved_bytes.decrease(segment.size)
        self.stats.segments.decrease(1)

    def _record(self, ts: int) -> None:
        if self.timeline is not None:
            self.timeline.record(ts, self.allocated_bytes, self.reserved_bytes)
