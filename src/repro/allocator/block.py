"""Block and Segment data structures of the caching-allocator simulation.

A :class:`Segment` is one device allocation (cudaMalloc in real PyTorch).
It is carved into a doubly-linked chain of :class:`Block` instances; each
block is either allocated (backing one tensor) or free (cached for reuse).
Adjacent free blocks are coalesced on free, mirroring the BFC algorithm the
paper cites (§3.4 "Algorithm").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

_block_ids = itertools.count(1)
_segment_ids = itertools.count(1)


@dataclass(eq=False, slots=True)
class Block:
    """A contiguous byte range inside a segment.

    ``addr`` is a device-wide virtual address (segment base + offset), which
    keeps best-fit tie-breaking ("lowest address wins") meaningful across
    segments, exactly like pointer comparison does in the C++ allocator.

    Replays churn through millions of Block instances; ``slots=True`` keeps
    them dict-free (smaller, faster attribute access on the hot path).
    """

    addr: int
    size: int
    segment: "Segment"
    allocated: bool = False
    requested_size: int = 0
    prev: Optional["Block"] = None
    next: Optional["Block"] = None
    #: Identifier of the logical allocation occupying this block (simulation
    #: replay uses the memory-event block id); None while free.
    owner: Optional[int] = None
    block_id: int = field(default_factory=lambda: next(_block_ids))

    @property
    def end(self) -> int:
        return self.addr + self.size

    @property
    def is_split(self) -> bool:
        """True when this block does not span its whole segment."""
        return self.prev is not None or self.next is not None

    def sort_key(self) -> tuple[int, int]:
        """Best-fit ordering: by size, then by address."""
        return (self.size, self.addr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alloc" if self.allocated else "free"
        return f"Block(addr={self.addr:#x}, size={self.size}, {state})"


@dataclass(eq=False)
class Segment:
    """One device allocation owned by the caching allocator."""

    addr: int
    size: int
    is_small: bool
    first_block: Optional[Block] = None
    segment_id: int = field(default_factory=lambda: next(_segment_ids))

    def blocks(self) -> Iterator[Block]:
        """Iterate blocks in address order."""
        block = self.first_block
        while block is not None:
            yield block
            block = block.next

    @property
    def allocated_bytes(self) -> int:
        return sum(b.size for b in self.blocks() if b.allocated)

    @property
    def free_bytes(self) -> int:
        return self.size - self.allocated_bytes

    def is_fully_free(self) -> bool:
        """True when the segment is one free block — releasable to the device."""
        block = self.first_block
        return (
            block is not None
            and not block.allocated
            and block.prev is None
            and block.next is None
            and block.size == self.size
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "small" if self.is_small else "large"
        return (
            f"Segment(addr={self.addr:#x}, size={self.size}, {kind}, "
            f"allocated={self.allocated_bytes})"
        )
