"""Two-level GPU memory-allocator simulation (paper §3.4).

Public surface:

* :class:`DeviceAllocator` — the simulated device (cudaMalloc level) with a
  finite capacity.
* :class:`CachingAllocator` — the framework-level caching allocator
  (PyTorch's CUDACachingAllocator in Python).
* :class:`AllocatorConfig` — tunable constants (512 B rounding, pool
  boundaries, segment sizes) for ablations.
* :func:`memory_snapshot` — snapshot export for fidelity comparisons.
"""

from .block import Block, Segment
from .caching import CachingAllocator
from .constants import DEFAULT_CONFIG, AllocatorConfig
from .device import DeviceAllocator, DeviceStats
from .pool import BlockPool
from .rounding import is_small_request, round_size, segment_size
from .snapshot import memory_snapshot, summarize_snapshot
from .stats import (
    AllocatorStats,
    StatCounter,
    TimelinePoint,
    TimelineRecorder,
    merge_timelines,
)

__all__ = [
    "AllocatorConfig",
    "AllocatorStats",
    "Block",
    "BlockPool",
    "CachingAllocator",
    "DEFAULT_CONFIG",
    "DeviceAllocator",
    "DeviceStats",
    "Segment",
    "StatCounter",
    "TimelinePoint",
    "TimelineRecorder",
    "is_small_request",
    "memory_snapshot",
    "merge_timelines",
    "round_size",
    "segment_size",
    "summarize_snapshot",
]
