"""Allocator statistics, mirroring ``torch.cuda.memory_stats()``.

Two byte series matter to the paper (§2.2, Fig. 1/6):

* ``allocated_bytes`` — bytes currently backing live tensors ("Tensor"
  curves in the figures);
* ``reserved_bytes`` — bytes of device segments held by the allocator
  ("Segment" curves), which is what NVML sees and what an estimator must
  predict.

A :class:`TimelineRecorder` captures both series against a logical
timestamp so the simulator can output the paper's memory-usage curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass
class StatCounter:
    """current / peak / cumulative triple, like PyTorch's ``Stat``."""

    current: int = 0
    peak: int = 0
    allocated: int = 0  # cumulative increase
    freed: int = 0  # cumulative decrease

    def increase(self, amount: int) -> None:
        self.current += amount
        self.allocated += amount
        if self.current > self.peak:
            self.peak = self.current

    def decrease(self, amount: int) -> None:
        self.current -= amount
        self.freed += amount
        if self.current < 0:
            raise ValueError(
                f"stat counter went negative ({self.current}) — "
                "allocation bookkeeping bug"
            )

    def reset_peak(self) -> None:
        self.peak = self.current


@dataclass
class AllocatorStats:
    """Aggregate statistics of one caching-allocator instance."""

    allocated_bytes: StatCounter = field(default_factory=StatCounter)
    reserved_bytes: StatCounter = field(default_factory=StatCounter)
    active_blocks: StatCounter = field(default_factory=StatCounter)
    segments: StatCounter = field(default_factory=StatCounter)
    #: requested (pre-rounding) bytes — allows measuring rounding waste.
    requested_bytes: StatCounter = field(default_factory=StatCounter)
    num_alloc_retries: int = 0
    num_ooms: int = 0
    num_splits: int = 0
    num_coalesces: int = 0
    num_cache_hits: int = 0
    num_cache_misses: int = 0

    def rounding_waste(self) -> int:
        """Bytes currently lost to 512 B round-up."""
        return self.allocated_bytes.current - self.requested_bytes.current

    def reset_peaks(self) -> None:
        for counter in (
            self.allocated_bytes,
            self.reserved_bytes,
            self.active_blocks,
            self.segments,
            self.requested_bytes,
        ):
            counter.reset_peak()

    def as_dict(self) -> dict[str, int]:
        """Flat dict for reporting, keyed like torch.cuda.memory_stats."""
        flat: dict[str, int] = {}
        for name in ("allocated_bytes", "reserved_bytes", "requested_bytes"):
            counter: StatCounter = getattr(self, name)
            flat[f"{name}.current"] = counter.current
            flat[f"{name}.peak"] = counter.peak
            flat[f"{name}.allocated"] = counter.allocated
            flat[f"{name}.freed"] = counter.freed
        flat["num_alloc_retries"] = self.num_alloc_retries
        flat["num_ooms"] = self.num_ooms
        flat["num_splits"] = self.num_splits
        flat["num_coalesces"] = self.num_coalesces
        flat["num_cache_hits"] = self.num_cache_hits
        flat["num_cache_misses"] = self.num_cache_misses
        return flat


@dataclass(frozen=True, slots=True)
class TimelinePoint:
    """One sample of the memory state at a logical timestamp."""

    ts: int
    allocated_bytes: int
    reserved_bytes: int


class TimelineRecorder:
    """Append-only record of (ts, allocated, reserved) samples.

    With ``max_points`` set, the recorder stays memory-bounded during long
    replays: whenever the buffer grows past ``2 * max_points`` it is
    compacted in place to at most ``max_points`` samples.  Compaction keeps
    the first and last samples, the first point where each series reaches
    its global maximum, and a uniform sample of the rest — and the peaks
    themselves are tracked as running scalars, so ``peak_reserved()`` /
    ``peak_allocated()`` are exact regardless of what was thinned.
    """

    def __init__(self, max_points: Optional[int] = None) -> None:
        if max_points is not None and max_points < 4:
            raise ValueError("max_points must be >= 4")
        self.max_points = max_points
        self._points: list[TimelinePoint] = []
        self._peak_reserved = 0
        self._peak_allocated = 0

    def record(self, ts: int, allocated: int, reserved: int) -> None:
        if reserved > self._peak_reserved:
            self._peak_reserved = reserved
        if allocated > self._peak_allocated:
            self._peak_allocated = allocated
        self._points.append(TimelinePoint(ts, allocated, reserved))
        if (
            self.max_points is not None
            and len(self._points) > 2 * self.max_points
        ):
            self._compact()

    @property
    def points(self) -> list[TimelinePoint]:
        return self._points

    def __len__(self) -> int:
        return len(self._points)

    def peak_reserved(self) -> int:
        return self._peak_reserved

    def peak_allocated(self) -> int:
        return self._peak_allocated

    def _compact(self) -> None:
        """Thin to <= max_points, keeping endpoints and both peak points."""
        points = self._points
        best_reserved = best_allocated = 0
        reserved = allocated = -1
        for index, point in enumerate(points):
            if point.reserved_bytes > reserved:
                reserved = point.reserved_bytes
                best_reserved = index
            if point.allocated_bytes > allocated:
                allocated = point.allocated_bytes
                best_allocated = index
        keep = {0, len(points) - 1, best_reserved, best_allocated}
        budget = max(1, self.max_points - len(keep))
        stride = -(-len(points) // budget)  # ceil: uniform sample <= budget
        keep.update(range(0, len(points), stride))
        self._points = [points[index] for index in sorted(keep)]

    def series(self) -> tuple[list[int], list[int], list[int]]:
        """Return (ts, allocated, reserved) parallel lists for plotting."""
        ts = [p.ts for p in self._points]
        allocated = [p.allocated_bytes for p in self._points]
        reserved = [p.reserved_bytes for p in self._points]
        return ts, allocated, reserved

    def downsample(self, max_points: int) -> "TimelineRecorder":
        """Uniformly thin the timeline, keeping peaks intact.

        Keeps every point whose reserved value is a running maximum so the
        estimated peak is never lost, plus a uniform sample of the rest.
        """
        if max_points <= 0:
            raise ValueError("max_points must be positive")
        if len(self._points) <= max_points:
            return self
        keep: set[int] = set()
        best = -1
        for index, point in enumerate(self._points):
            if point.reserved_bytes > best:
                best = point.reserved_bytes
                keep.add(index)
        stride = max(1, len(self._points) // max_points)
        keep.update(range(0, len(self._points), stride))
        keep.add(len(self._points) - 1)
        thinned = TimelineRecorder()
        for index in sorted(keep):
            point = self._points[index]
            thinned.record(point.ts, point.allocated_bytes, point.reserved_bytes)
        return thinned


def merge_timelines(timelines: Iterable[TimelineRecorder]) -> TimelineRecorder:
    """Merge several timelines into one, ordered by timestamp."""
    merged = TimelineRecorder()
    points = sorted(
        (p for t in timelines for p in t.points), key=lambda p: p.ts
    )
    for point in points:
        merged.record(point.ts, point.allocated_bytes, point.reserved_bytes)
    return merged
