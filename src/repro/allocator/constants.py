"""Constants of PyTorch's CUDACachingAllocator.

Values follow ``c10/cuda/CUDACachingAllocator.cpp`` (release/2.6), the
implementation the paper simulates (§3.4).  They are collected into an
:class:`AllocatorConfig` so that tests and ablation benchmarks can vary them
(e.g. a TensorFlow-BFC-flavoured configuration) without touching the code.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import MiB

#: All requested sizes are rounded up to a multiple of this (512 bytes).
MIN_BLOCK_SIZE = 512

#: Requests at or below this size are served from the "small" pool (1 MiB).
SMALL_SIZE = 1 * MiB

#: Segment size used to back small-pool allocations (2 MiB).
SMALL_BUFFER = 2 * MiB

#: Segment size used for "medium" large-pool allocations (20 MiB).
LARGE_BUFFER = 20 * MiB

#: Large-pool requests below this get a LARGE_BUFFER segment (10 MiB).
MIN_LARGE_ALLOC = 10 * MiB

#: Requests above MIN_LARGE_ALLOC round their segment to a multiple of this.
ROUND_LARGE = 2 * MiB


@dataclass(frozen=True)
class AllocatorConfig:
    """Tunable parameters of the caching-allocator simulation.

    The defaults reproduce PyTorch's CUDACachingAllocator.  The
    ``max_split_size`` knob mirrors
    ``PYTORCH_CUDA_ALLOC_CONF=max_split_size_mb`` (blocks larger than this
    are never split and are preferentially released under pressure); ``None``
    disables it, which is PyTorch's default.
    """

    min_block_size: int = MIN_BLOCK_SIZE
    small_size: int = SMALL_SIZE
    small_buffer: int = SMALL_BUFFER
    large_buffer: int = LARGE_BUFFER
    min_large_alloc: int = MIN_LARGE_ALLOC
    round_large: int = ROUND_LARGE
    max_split_size: int | None = None
    #: When False, blocks are never split (ablation: naive buddy-less pooling).
    allow_split: bool = True
    #: When False, freed segments are returned to the device immediately
    #: (ablation: no caching; every miss pays a device allocation).
    cache_segments: bool = True
    #: When False, a device allocation failure is a hard OOM with no
    #: cached-segment reclamation — the single-level behaviour DNNMem
    #: simulates (paper §5.1); the real allocator reclaims first.
    reclaim_on_oom: bool = True

    def __post_init__(self) -> None:
        if self.min_block_size <= 0:
            raise ValueError("min_block_size must be positive")
        if self.small_size > self.small_buffer:
            raise ValueError("small_size cannot exceed small_buffer")
        if self.min_large_alloc > self.large_buffer:
            raise ValueError("min_large_alloc cannot exceed large_buffer")


DEFAULT_CONFIG = AllocatorConfig()
