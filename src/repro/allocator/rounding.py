"""Size-rounding policies of the caching allocator (§3.4 "Round up").

Two distinct roundings happen on every allocation:

1. ``round_size`` — the *block* size handed to the tensor: requested bytes
   rounded up to a 512 B multiple (hardware alignment).
2. ``segment_size`` — the *segment* size requested from the device when no
   cached block fits: 2 MiB for small allocations, 20 MiB for medium ones,
   and a 2 MiB-aligned exact size for big ones.  This over-request is the
   caching behaviour that tensor-summing estimators miss (§2.2.2).
"""

from __future__ import annotations

from .constants import AllocatorConfig
from ..units import align_up


def round_size(size: int, config: AllocatorConfig) -> int:
    """Round a requested tensor size up to the allocator's block granularity."""
    if size <= 0:
        raise ValueError(f"allocation size must be positive, got {size}")
    if size < config.min_block_size:
        return config.min_block_size
    return align_up(size, config.min_block_size)


def is_small_request(rounded_size: int, config: AllocatorConfig) -> bool:
    """Small-pool requests are those at or below ``small_size`` (1 MiB)."""
    return rounded_size <= config.small_size


def segment_size(rounded_size: int, config: AllocatorConfig) -> int:
    """Size of the device segment backing a cache-miss allocation."""
    if is_small_request(rounded_size, config):
        return config.small_buffer
    if rounded_size < config.min_large_alloc:
        return config.large_buffer
    return align_up(rounded_size, config.round_large)
