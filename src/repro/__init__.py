"""xMem reproduction: CPU-based a-priori estimation of peak GPU memory for
deep-learning training workloads (Shi, Pezaros, Elkhatib — Middleware '25).

Quickstart::

    from repro import XMemEstimator, WorkloadConfig, RTX_3060

    workload = WorkloadConfig(model="gpt2", optimizer="adamw", batch_size=8)
    result = XMemEstimator().estimate(workload, RTX_3060)
    print(result.summary())

Package layout:

* :mod:`repro.core` — the xMem pipeline (Analyzer, Orchestrator, Simulator)
* :mod:`repro.allocator` — the two-level CUDACachingAllocator simulation
* :mod:`repro.framework` / :mod:`repro.models` — the symbolic DL framework
  and the 25-model zoo of the paper's Table 2
* :mod:`repro.runtime` — CPU profiling and simulated-GPU ground truth
* :mod:`repro.baselines` — DNNMem, SchedTune, LLMem
* :mod:`repro.eval` — metrics (Eqs. 1-8), two-round validation, experiments
* :mod:`repro.cluster` — a scheduler consuming estimates (downstream demo)
* :mod:`repro.service` — the estimation service: middleware chain,
  fingerprint cache, concurrent request engine
"""

from .allocator import AllocatorConfig, CachingAllocator, DeviceAllocator
from .baselines import DNNMemEstimator, LLMemEstimator, SchedTuneEstimator
from .core import (
    Analyzer,
    EstimationPipeline,
    EstimationResult,
    MemoryOrchestrator,
    MemorySimulator,
    PipelineCache,
    XMemEstimator,
)
from .errors import ReproError, SimOutOfMemoryError
from .models import get_model_spec, list_models
from .runtime import (
    TrainLoopConfig,
    profile_on_cpu,
    run_gpu_ground_truth,
)
from .service import EstimateCache, EstimationService, ServiceMetrics
from .units import GB, GiB, KiB, MB, MiB, format_bytes, format_gb
from .workload import (
    A100_40GB,
    EVAL_DEVICES,
    RTX_3060,
    RTX_4060,
    DeviceSpec,
    WorkloadConfig,
)

__version__ = "1.0.0"

__all__ = [
    "A100_40GB",
    "AllocatorConfig",
    "Analyzer",
    "CachingAllocator",
    "DNNMemEstimator",
    "DeviceAllocator",
    "DeviceSpec",
    "EVAL_DEVICES",
    "EstimateCache",
    "EstimationPipeline",
    "EstimationResult",
    "EstimationService",
    "GB",
    "GiB",
    "KiB",
    "LLMemEstimator",
    "MB",
    "MemoryOrchestrator",
    "MemorySimulator",
    "MiB",
    "PipelineCache",
    "RTX_3060",
    "RTX_4060",
    "ReproError",
    "SchedTuneEstimator",
    "ServiceMetrics",
    "SimOutOfMemoryError",
    "TrainLoopConfig",
    "WorkloadConfig",
    "XMemEstimator",
    "__version__",
    "format_bytes",
    "format_gb",
    "get_model_spec",
    "list_models",
    "profile_on_cpu",
    "run_gpu_ground_truth",
]
