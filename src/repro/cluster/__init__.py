"""Cluster scheduling demo: estimates drive GPU-sharing decisions."""

from .job import Job, JobRecord
from .scheduler import (
    AdmissionDecision,
    MemoryAwareScheduler,
    ScheduleOutcome,
    ServiceAdmissionController,
)

__all__ = [
    "AdmissionDecision",
    "Job",
    "JobRecord",
    "MemoryAwareScheduler",
    "ScheduleOutcome",
    "ServiceAdmissionController",
]
