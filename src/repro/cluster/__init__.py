"""Cluster scheduling demo: estimates drive GPU-sharing decisions."""

from .job import Job, JobRecord
from .scheduler import MemoryAwareScheduler, ScheduleOutcome

__all__ = ["Job", "JobRecord", "MemoryAwareScheduler", "ScheduleOutcome"]
