"""Cluster jobs: DL training requests with (estimated) memory demands.

The paper motivates xMem with shared-cluster scheduling (§1): accurate
estimates let schedulers pack jobs onto GPUs without OOM.  This subpackage
is the downstream consumer Fig. 4 points at — a small but real scheduler
that turns estimates into placement decisions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..workload import WorkloadConfig

_job_ids = itertools.count(1)


@dataclass
class Job:
    """One training job submitted to the cluster."""

    workload: WorkloadConfig
    #: estimated peak memory the scheduler reserves (bytes)
    reserved_bytes: int
    #: memory the job actually needs at peak (bytes) — revealed on run
    actual_peak_bytes: int
    duration: int = 1  # scheduling ticks the job occupies its GPU
    job_id: int = field(default_factory=lambda: next(_job_ids))
    submitted_at: int = 0

    def __post_init__(self) -> None:
        if self.reserved_bytes < 0 or self.actual_peak_bytes <= 0:
            raise ValueError("job memory figures must be positive")
        if self.duration < 1:
            raise ValueError("job duration must be >= 1 tick")

    @property
    def ooms_under_reservation(self) -> bool:
        """True when the reservation is too small and the job will OOM."""
        return self.actual_peak_bytes > self.reserved_bytes


@dataclass(frozen=True)
class JobRecord:
    """Final accounting for one job after the simulation."""

    job_id: int
    started_at: Optional[int]
    finished_at: Optional[int]
    device: Optional[str]
    oomed: bool
    reserved_bytes: int
    actual_peak_bytes: int

    @property
    def completed(self) -> bool:
        return self.finished_at is not None and not self.oomed

    @property
    def wasted_bytes(self) -> int:
        """Reservation headroom (completed) or the whole reservation (OOM)."""
        if self.oomed:
            return self.reserved_bytes
        return max(0, self.reserved_bytes - self.actual_peak_bytes)
