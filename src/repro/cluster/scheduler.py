"""A memory-aware GPU-sharing scheduler driven by estimates.

Jobs reserve their *estimated* peak memory; multiple jobs share one GPU as
long as reservations fit.  Under-estimates cause OOM kills (the
reservation was a lie), over-estimates waste capacity — so scheduler
throughput directly reflects estimator quality, which is how the paper's
MCP metric translates into cluster value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..errors import ServiceError
from ..workload import DeviceSpec, WorkloadConfig
from .job import Job, JobRecord


@dataclass
class _RunningJob:
    job: Job
    started_at: int
    remaining: int


@dataclass
class _Gpu:
    spec: DeviceSpec
    index: int
    running: list[_RunningJob] = field(default_factory=list)

    @property
    def name(self) -> str:
        return f"{self.spec.name}#{self.index}"

    def reserved(self) -> int:
        return sum(r.job.reserved_bytes for r in self.running)

    def free(self) -> int:
        return self.spec.job_budget() - self.reserved()


@dataclass(frozen=True)
class ScheduleOutcome:
    """Aggregate statistics of one scheduling simulation."""

    records: list[JobRecord]
    makespan: int

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records if r.completed)

    @property
    def oom_kills(self) -> int:
        return sum(1 for r in self.records if r.oomed)

    @property
    def total_wasted_bytes(self) -> int:
        return sum(r.wasted_bytes for r in self.records)

    def throughput(self) -> float:
        """Completed jobs per tick."""
        if self.makespan == 0:
            return 0.0
        return self.completed / self.makespan


class MemoryAwareScheduler:
    """First-fit GPU-sharing scheduler over reserved memory."""

    def __init__(self, devices: list[DeviceSpec], gpus_per_device: int = 1):
        if not devices:
            raise ValueError("scheduler needs at least one device")
        self._gpus = [
            _Gpu(spec=spec, index=index)
            for spec in devices
            for index in range(gpus_per_device)
        ]

    def simulate(self, jobs: list[Job], max_ticks: int = 100_000) -> ScheduleOutcome:
        """Run the queue to completion; returns per-job records.

        Jobs whose reservation exceeds every GPU's budget are rejected
        (recorded as never started).  Jobs that OOM release their GPU at
        the tick the overflow occurs.
        """
        queue = sorted(jobs, key=lambda j: (j.submitted_at, j.job_id))
        records: dict[int, JobRecord] = {}
        pending = list(queue)
        tick = 0
        while (pending or any(g.running for g in self._gpus)) and tick < max_ticks:
            # 1. finish / OOM running jobs
            for gpu in self._gpus:
                still_running: list[_RunningJob] = []
                for running in gpu.running:
                    if running.job.ooms_under_reservation:
                        records[running.job.job_id] = JobRecord(
                            job_id=running.job.job_id,
                            started_at=running.started_at,
                            finished_at=tick,
                            device=gpu.name,
                            oomed=True,
                            reserved_bytes=running.job.reserved_bytes,
                            actual_peak_bytes=running.job.actual_peak_bytes,
                        )
                        continue
                    running.remaining -= 1
                    if running.remaining <= 0:
                        records[running.job.job_id] = JobRecord(
                            job_id=running.job.job_id,
                            started_at=running.started_at,
                            finished_at=tick + 1,
                            device=gpu.name,
                            oomed=False,
                            reserved_bytes=running.job.reserved_bytes,
                            actual_peak_bytes=running.job.actual_peak_bytes,
                        )
                    else:
                        still_running.append(running)
                gpu.running = still_running
            # 2. place pending jobs first-fit
            placed: list[Job] = []
            for job in pending:
                if job.submitted_at > tick:
                    continue
                gpu = self._first_fit(job)
                if gpu is None:
                    if all(
                        job.reserved_bytes > g.spec.job_budget()
                        for g in self._gpus
                    ):
                        records[job.job_id] = JobRecord(
                            job_id=job.job_id,
                            started_at=None,
                            finished_at=None,
                            device=None,
                            oomed=False,
                            reserved_bytes=job.reserved_bytes,
                            actual_peak_bytes=job.actual_peak_bytes,
                        )
                        placed.append(job)  # rejected: remove from queue
                    continue
                gpu.running.append(
                    _RunningJob(job=job, started_at=tick, remaining=job.duration)
                )
                placed.append(job)
            for job in placed:
                pending.remove(job)
            tick += 1
        return ScheduleOutcome(
            records=[records[j.job_id] for j in queue if j.job_id in records],
            makespan=tick,
        )

    def _first_fit(self, job: Job):
        for gpu in self._gpus:
            if gpu.free() >= job.reserved_bytes:
                return gpu
        return None


@dataclass(frozen=True)
class AdmissionDecision:
    """The admission controller's verdict for one submitted workload."""

    workload: WorkloadConfig
    admitted: bool
    reserved_bytes: int
    reason: str

    def as_dict(self) -> dict:
        return {
            "workload": self.workload.as_dict(),
            "admitted": self.admitted,
            "reserved_bytes": self.reserved_bytes,
            "reason": self.reason,
        }


class ServiceAdmissionController:
    """Service-backed admission: estimates become reservations.

    Where the original demo called raw estimators inline, this path
    consults an :class:`~repro.service.engine.EstimationService` — so
    repeated submissions of the same workload hit the fingerprint cache,
    concurrent duplicates single-flight, and the service's validation
    middleware rejects malformed workloads before any profiling runs.
    Any object with the service's ``estimate(workload, device)`` surface
    works, including a sharded
    :class:`~repro.service.gateway.ServiceGateway` — admission then
    scales with the fleet instead of one worker pool.  The controller is
    driver-agnostic: the blocking methods (``decide`` / ``build_jobs`` /
    ``simulate``) drive the thread services, and the ``*_async`` mirrors
    drive :class:`~repro.service.aio.AsyncEstimationService` /
    :class:`~repro.service.aio.AsyncServiceGateway`, whose ``estimate``
    is a coroutine — the admission policy itself (margin, budget check)
    is shared verbatim between the two paths.

    ``safety_margin`` is the multiplicative headroom schedulers add on top
    of any estimate (the demo's 1.15).  Workloads whose reservation
    exceeds every device's job budget are refused at admission time
    instead of churning through the scheduler queue.
    """

    def __init__(
        self,
        service,
        devices: Sequence[DeviceSpec],
        safety_margin: float = 1.15,
    ):
        if not devices:
            raise ValueError("admission controller needs at least one device")
        if safety_margin < 1.0:
            raise ValueError("safety margin cannot shrink the estimate")
        self.service = service
        self.devices = tuple(devices)
        self.safety_margin = safety_margin

    def _refusal(
        self, workload: WorkloadConfig, error: ServiceError
    ) -> AdmissionDecision:
        return AdmissionDecision(
            workload=workload,
            admitted=False,
            reserved_bytes=0,
            reason=f"rejected by service: {error}",
        )

    def _decision_from_estimate(
        self, workload: WorkloadConfig, result
    ) -> AdmissionDecision:
        """The shared admission policy: margin + budget check."""
        reserved = int(result.peak_bytes * self.safety_margin)
        if all(reserved > d.job_budget() for d in self.devices):
            return AdmissionDecision(
                workload=workload,
                admitted=False,
                reserved_bytes=reserved,
                reason="reservation exceeds every device's job budget",
            )
        return AdmissionDecision(
            workload=workload,
            admitted=True,
            reserved_bytes=reserved,
            reason="fits",
        )

    def decide(self, workload: WorkloadConfig) -> AdmissionDecision:
        """Estimate (through the service) and admit or refuse."""
        try:
            result = self.service.estimate(workload, self.devices[0])
        except ServiceError as error:
            return self._refusal(workload, error)
        return self._decision_from_estimate(workload, result)

    async def decide_async(self, workload: WorkloadConfig) -> AdmissionDecision:
        """``decide`` for asyncio-driver services (awaits the estimate)."""
        try:
            result = await self.service.estimate(workload, self.devices[0])
        except ServiceError as error:
            return self._refusal(workload, error)
        return self._decision_from_estimate(workload, result)

    def build_jobs(
        self,
        submissions: Sequence[tuple[WorkloadConfig, int]],
        duration: int = 1,
    ) -> tuple[list[Job], list[AdmissionDecision]]:
        """Turn (workload, actual peak) submissions into schedulable jobs.

        Returns the admitted jobs plus the decision for every submission
        (refusals included), in submission order.
        """
        jobs: list[Job] = []
        decisions: list[AdmissionDecision] = []
        for workload, actual_peak_bytes in submissions:
            decision = self.decide(workload)
            decisions.append(decision)
            if decision.admitted:
                jobs.append(
                    self._job_from(decision, actual_peak_bytes, duration)
                )
        return jobs, decisions

    async def build_jobs_async(
        self,
        submissions: Sequence[tuple[WorkloadConfig, int]],
        duration: int = 1,
    ) -> tuple[list[Job], list[AdmissionDecision]]:
        """``build_jobs`` for asyncio-driver services.

        Decisions are awaited in submission order (repeats hit the
        service cache and concurrent duplicates single-flight exactly as
        in the blocking path), so the returned lists are byte-identical
        to ``build_jobs`` over the same service state.
        """
        jobs: list[Job] = []
        decisions: list[AdmissionDecision] = []
        for workload, actual_peak_bytes in submissions:
            decision = await self.decide_async(workload)
            decisions.append(decision)
            if decision.admitted:
                jobs.append(
                    self._job_from(decision, actual_peak_bytes, duration)
                )
        return jobs, decisions

    @staticmethod
    def _job_from(
        decision: AdmissionDecision, actual_peak_bytes: int, duration: int
    ) -> Job:
        return Job(
            workload=decision.workload,
            reserved_bytes=decision.reserved_bytes,
            actual_peak_bytes=actual_peak_bytes,
            duration=duration,
        )

    def simulate(
        self,
        submissions: Sequence[tuple[WorkloadConfig, int]],
        duration: int = 1,
        gpus_per_device: int = 1,
        scheduler: Optional[MemoryAwareScheduler] = None,
    ) -> tuple[ScheduleOutcome, list[AdmissionDecision]]:
        """Admission + scheduling in one call (the full service-backed path)."""
        jobs, decisions = self.build_jobs(submissions, duration=duration)
        scheduler = scheduler or MemoryAwareScheduler(
            list(self.devices), gpus_per_device=gpus_per_device
        )
        return scheduler.simulate(jobs), decisions

    async def simulate_async(
        self,
        submissions: Sequence[tuple[WorkloadConfig, int]],
        duration: int = 1,
        gpus_per_device: int = 1,
        scheduler: Optional[MemoryAwareScheduler] = None,
    ) -> tuple[ScheduleOutcome, list[AdmissionDecision]]:
        """``simulate`` for asyncio-driver services: admission awaits the
        service; the scheduling sweep itself is pure CPU and runs inline."""
        jobs, decisions = await self.build_jobs_async(
            submissions, duration=duration
        )
        scheduler = scheduler or MemoryAwareScheduler(
            list(self.devices), gpus_per_device=gpus_per_device
        )
        return scheduler.simulate(jobs), decisions
