"""Command-line interface.

``xmem estimate | models | devices | trace | curve | batch | serve-demo |
loadtest``
"""

from __future__ import annotations

import argparse
import json
import sys

from .core.estimator import XMemEstimator
from .models.registry import list_models
from .runtime.loop import POS0, POS1
from .runtime.profiler import profile_on_cpu
from .trace.stats import summarize_trace
from .units import format_gb, parse_size
from .workload import A100_40GB, RTX_3060, RTX_4060, DeviceSpec, WorkloadConfig

_DEVICES = {
    "rtx3060": RTX_3060,
    "rtx4060": RTX_4060,
    "a100": A100_40GB,
}


def _device_from_args(args: argparse.Namespace) -> DeviceSpec:
    if args.capacity:
        return DeviceSpec(
            name="custom", capacity_bytes=parse_size(args.capacity)
        )
    return _DEVICES[args.device]


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", required=True, help="model name (see `xmem models`)")
    parser.add_argument("--batch-size", type=int, required=True)
    parser.add_argument("--optimizer", default="adam")
    parser.add_argument(
        "--zero-grad-position",
        choices=(POS0, POS1),
        default=POS1,
        help="placement of optimizer.zero_grad() in the loop (Fig. 1)",
    )
    parser.add_argument(
        "--device", choices=sorted(_DEVICES), default="rtx3060"
    )
    parser.add_argument(
        "--capacity", default=None, help='custom device capacity, e.g. "24GiB"'
    )


def _cmd_estimate(args: argparse.Namespace) -> int:
    workload = WorkloadConfig(
        model=args.model,
        optimizer=args.optimizer,
        batch_size=args.batch_size,
        zero_grad_position=args.zero_grad_position,
    )
    device = _device_from_args(args)
    estimator = XMemEstimator(
        iterations=args.iterations,
        artifact_store=getattr(args, "artifact_store", None),
    )
    result = estimator.estimate(workload, device)
    if args.json:
        payload = {
            **workload.as_dict(),
            "device": device.name,
            "estimated_peak_bytes": result.peak_bytes,
            "predicts_oom": result.predicts_oom(),
            "runtime_seconds": result.runtime_seconds,
            "role_bytes": result.detail.get("role_bytes", {}),
        }
        if args.timings:
            payload["stage_seconds"] = result.stage_seconds
            payload["stage_cached"] = result.stage_cached
            payload["stage_sources"] = result.stage_sources
        print(json.dumps(payload))
    elif args.explain:
        from .core.report import render_report

        print(render_report(result))
    else:
        print(f"workload        : {workload.label()}")
        print(f"device          : {device.name}")
        print(f"estimated peak  : {format_gb(result.peak_bytes)}")
        print(f"job budget      : {format_gb(device.job_budget())}")
        print(f"prediction      : {'OOM' if result.predicts_oom() else 'fits'}")
        print(f"estimator time  : {result.runtime_seconds:.2f}s")
    if args.timings and not args.json:
        total = sum(result.stage_seconds.values()) or 1.0
        print("stage breakdown :")
        for stage, seconds in result.stage_seconds.items():
            source = result.stage_sources.get(stage)
            if source == "store":
                cached = " (store)"
            elif result.stage_cached.get(stage):
                cached = " (cached)"
            else:
                cached = ""
            print(
                f"  {stage:<12} {seconds * 1e3:9.2f} ms "
                f"{seconds / total:6.1%}{cached}"
            )
    return 0


def _cmd_devices(args: argparse.Namespace) -> int:
    if args.json:
        print(
            json.dumps(
                {
                    alias: {
                        **spec.as_dict(),
                        "job_budget_bytes": spec.job_budget(),
                    }
                    for alias, spec in sorted(_DEVICES.items())
                }
            )
        )
        return 0
    print(
        f"{'alias':<10}{'device':<22}{'capacity':>10}"
        f"{'framework':>11}{'job budget':>12}"
    )
    for alias, spec in sorted(_DEVICES.items()):
        print(
            f"{alias:<10}{spec.name:<22}{format_gb(spec.capacity_bytes):>10}"
            f"{format_gb(spec.framework_bytes):>11}"
            f"{format_gb(spec.job_budget()):>12}"
        )
    print('\n(--capacity "24GiB" builds a custom device instead)')
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from .service import EstimationService, sweep

    models = args.model
    try:
        batch_sizes = [int(b) for b in args.batch_sizes.split(",")]
    except ValueError:
        print(
            f"error: --batch-sizes must be comma-separated integers, "
            f"got {args.batch_sizes!r}",
            file=sys.stderr,
        )
        return 2
    unknown = [
        name for name in args.devices.split(",") if name not in _DEVICES
    ]
    if unknown:
        print(
            f"error: unknown device alias(es) {unknown}; "
            f"known: {sorted(_DEVICES)} (see `xmem devices`)",
            file=sys.stderr,
        )
        return 2
    devices = [_DEVICES[name] for name in args.devices.split(",")]
    with EstimationService(
        # the sweep only reads peaks: skip materializing usage curves
        estimator=XMemEstimator(iterations=args.iterations, curve=False),
        max_workers=args.workers,
    ) as service:
        cells = sweep(
            service,
            models,
            batch_sizes,
            devices,
            optimizer=args.optimizer,
            zero_grad_position=args.zero_grad_position,
        )
        stats = service.stats()
    if args.json:
        print(
            json.dumps(
                {"cells": [c.as_dict() for c in cells], "stats": stats}
            )
        )
        return 0
    print(
        f"{'model':<22}{'batch':>6}{'peak':>9}"
        + "".join(f"{d.name.split()[-1]:>12}" for d in devices)
    )
    for index in range(0, len(cells), len(devices)):
        row = cells[index : index + len(devices)]
        workload = row[0].workload
        peak = next(
            (c.result.peak_bytes for c in row if c.result is not None), None
        )
        verdicts = "".join(
            f"{('ERROR' if c.result is None else 'OOM' if c.result.predicts_oom() else 'fits'):>12}"
            for c in row
        )
        print(
            f"{workload.model:<22}{workload.batch_size:>6}"
            f"{(format_gb(peak) if peak is not None else 'N/A'):>9}{verdicts}"
        )
    service_stats = stats["service"]
    print(
        f"\n{service_stats['requests']} requests, "
        f"hit rate {service_stats['cache_hit_rate']:.0%}, "
        f"p50 {(service_stats['latency_seconds']['p50'] or 0) * 1e3:.1f} ms"
    )
    return 0


def _cmd_serve_demo(args: argparse.Namespace) -> int:
    """Replay a synthetic repeated-workload request trace at the service."""
    import random

    from .service import (
        AuditLogMiddleware,
        CacheMiddleware,
        EstimateCache,
        EstimationService,
        TimingMiddleware,
        ValidationMiddleware,
        estimate_many,
    )

    rng = random.Random(args.seed)
    models = [s.name for s in list_models()]
    uniques = [
        WorkloadConfig(
            model=rng.choice(models[: args.unique * 2]),
            optimizer=rng.choice(("sgd", "adam")),
            batch_size=rng.choice((8, 16, 32)),
        )
        for _ in range(args.unique)
    ]
    device = _DEVICES[args.device]
    requests = [(rng.choice(uniques), device) for _ in range(args.requests)]

    cache = EstimateCache(max_entries=args.cache_entries)
    audit = AuditLogMiddleware(max_records=args.requests * 2)
    with EstimationService(
        estimator=XMemEstimator(iterations=args.iterations, curve=False),
        middlewares=(
            TimingMiddleware(),
            ValidationMiddleware(),
            audit,
            CacheMiddleware(cache),
        ),
        cache=cache,
        max_workers=args.workers,
    ) as service:
        # waves model request bursts arriving over time: the first wave
        # exercises single-flight dedup, later waves hit the cache
        wave_size = max(1, len(requests) // args.waves)
        for start in range(0, len(requests), wave_size):
            estimate_many(
                service,
                requests[start : start + wave_size],
                share_profiles=False,
            )
        stats = service.stats()
    print(
        f"served {args.requests} requests "
        f"({args.unique} unique workloads, {args.waves} waves) "
        f"on {device.name}"
    )
    print(json.dumps(stats, indent=2))
    print(f"audit trail: {len(audit.records)} records")
    return 0


def _parse_tenant_spec(spec: str):
    """``name=rate:burst:weight`` -> TenantConfig (trailing parts optional).

    ``acme=2:16:3`` is a tenant refilling 2 quota tokens per admission
    tick, bursting to 16, holding fair-share weight 3; ``acme`` alone
    takes the defaults (1:8:1).
    """
    from .service import TenantConfig

    name, _, knobs = spec.partition("=")
    name = name.strip()
    if not name:
        raise ValueError(f"tenant spec {spec!r} needs a name")
    values = [1.0, 8.0, 1.0]
    if knobs:
        parts = knobs.split(":")
        if len(parts) > 3:
            raise ValueError(
                f"tenant spec {spec!r} has more than rate:burst:weight"
            )
        for index, part in enumerate(parts):
            if part:
                values[index] = float(part)
    return TenantConfig(
        name, quota_rate=values[0], quota_burst=values[1], weight=values[2]
    )


def _control_factory(scenario: str, args):
    """Per-gateway control-plane builder, or None for an open gateway.

    A *factory* rather than an instance: token buckets are stateful, so
    every (policy, driver) combo must admit against its own fresh plane
    or the second run would start from the first run's drained buckets.
    """
    from .service import (
        TENANT_SCENARIOS,
        ControlPlane,
        TenantConfig,
        make_control,
    )

    if getattr(args, "tenants", None):
        configs = tuple(_parse_tenant_spec(s) for s in args.tenants)
        # untenanted requests still flow, under default knobs — explicit
        # rosters on the CLI shape quotas, they don't lock the gate
        default = TenantConfig("default")
        return lambda: ControlPlane(configs, default_config=default)
    if scenario in TENANT_SCENARIOS:
        return lambda: make_control(scenario)
    return None


def _loadtest_replay(
    trace, args, policy_name: str, driver: str, telemetry=None,
    control_factory=None,
):
    """Replay one trace through one (policy, driver) gateway combo."""
    from functools import partial

    from .service import (
        AsyncServiceGateway,
        ProcServiceGateway,
        ServiceGateway,
        SyntheticEstimator,
        make_policy,
        replay,
        replay_async,
    )

    # partial over an importable callable, not a lambda: the process
    # driver ships the factory to its workers, which requires pickling
    # under the spawn start method
    artifact_store = getattr(args, "artifact_store", None)
    if args.estimator == "synthetic":
        factory = partial(
            SyntheticEstimator,
            work_seconds=args.work_ms / 1000.0,
            spin_seconds=args.spin_ms / 1000.0,
        )
    else:
        # the store path (a plain string) pickles through the factory
        # partial, so procpool workers each open the shared store file
        factory = partial(
            XMemEstimator,
            iterations=args.iterations,
            curve=False,
            artifact_store=artifact_store,
        )
    policy = make_policy(policy_name, args.shards, seed=args.seed)
    # chaos mode: a seeded fault plan breaks things on schedule while the
    # default resilience policy (retries + per-shard breakers) absorbs it
    resilience = None
    fault_plan = None
    if getattr(args, "chaos", None):
        from .service import chaos_plan, default_resilience

        fault_plan = chaos_plan(
            args.chaos, len(trace), args.shards, seed=args.seed
        )
        resilience = default_resilience()
    # fresh control plane per gateway (factory, not instance): buckets
    # are stateful, so combos must not share admission history
    control = control_factory() if control_factory is not None else None
    if driver == "processes":
        with ProcServiceGateway(
            num_shards=args.shards,
            estimator_factory=factory,
            policy=policy,
            max_queue_depth=args.max_queue_depth,
            pool_workers=args.pool_workers,
            telemetry=telemetry,
            resilience=resilience,
            fault_plan=fault_plan,
            control=control,
        ) as gateway:
            return replay(trace, gateway)
    if driver == "asyncio":
        import asyncio

        async def _go():
            gateway = AsyncServiceGateway(
                num_shards=args.shards,
                estimator_factory=factory,
                policy=policy,
                max_queue_depth=args.max_queue_depth,
                max_workers_per_shard=args.workers_per_shard,
                telemetry=telemetry,
                resilience=resilience,
                fault_plan=fault_plan,
                control=control,
            )
            try:
                return await replay_async(trace, gateway)
            finally:
                await gateway.aclose()

        return asyncio.run(_go())
    if driver == "tcp":
        from .service.tcp import TcpServerThread, TcpServiceClient

        if getattr(args, "connect", None):
            # drive an already-running server: its own policy/estimator
            # apply, ours are ignored (stats in the report come from the
            # remote gateway via the stats op)
            host, _, port = args.connect.rpartition(":")
            with TcpServiceClient(host or "127.0.0.1", int(port)) as client:
                return replay(trace, client)
        # in-process: gateway + server on a private loop thread, driven
        # through a real socket — the gateway is built *inside* the loop
        # thread, so the factory closes over the config here
        gateway_factory = partial(
            AsyncServiceGateway,
            num_shards=args.shards,
            estimator_factory=factory,
            policy=policy,
            max_queue_depth=args.max_queue_depth,
            max_workers_per_shard=args.workers_per_shard,
            telemetry=telemetry,
            resilience=resilience,
            fault_plan=fault_plan,
            control=control,
        )
        with TcpServerThread(gateway_factory) as server:
            host, port = server.address
            # under chaos the server aborts connections on schedule; the
            # client must re-dial to keep driving the rest of the trace
            with TcpServiceClient(
                host, port, reconnect=fault_plan is not None
            ) as client:
                return replay(trace, client)
    with ServiceGateway(
        num_shards=args.shards,
        estimator_factory=factory,
        policy=policy,
        max_queue_depth=args.max_queue_depth,
        max_workers_per_shard=args.workers_per_shard,
        telemetry=telemetry,
        resilience=resilience,
        fault_plan=fault_plan,
        control=control,
    ) as gateway:
        return replay(trace, gateway)


def _print_loadtest_report(trace, args, report) -> None:
    aggregate = report.stats["aggregate"]
    gateway_stats = report.stats["gateway"]
    print(
        f"scenario {trace.scenario!r}: {report.num_requests} requests "
        f"({trace.unique_fingerprint_keys()} unique keys, "
        f"{args.waves} waves) over {args.shards} shards "
        f"[{gateway_stats['policy']} routing]"
    )
    print(
        f"answered {report.answered}  shed {report.shed}  "
        f"rejected {report.rejected}  errors {report.errors}"
    )
    print(
        f"throughput      : {report.throughput_rps:,.0f} req/s "
        f"({report.elapsed_seconds * 1e3:.0f} ms total)"
    )
    print(f"cache hit rate  : {aggregate['cache_hit_rate']:.1%}")
    print(f"shed rate       : {report.shed_rate:.1%}")
    print(f"routed per shard: {gateway_stats['routed_per_shard']}")
    p95 = aggregate["latency_seconds"]["p95"]
    if p95 is not None:
        print(f"latency p95     : {p95 * 1e3:.2f} ms")
    faults = gateway_stats.get("faults")
    if faults:
        print(
            f"faults injected : {faults['injected']} "
            f"(seed {faults['seed']}, {faults['planned']} planned)"
        )
    resilience = gateway_stats.get("resilience")
    if resilience:
        print(
            f"resilience      : retries {resilience['retries']}  "
            f"reroutes {resilience['reroutes']}  "
            f"breaker opens {resilience['breaker_opens']}  "
            f"shed on drain {resilience['shed_on_drain']}"
        )
        print(f"breaker states  : {resilience['breaker_states']}")
    if report.tenants:
        print("per-tenant      :")
        for name in sorted(report.tenants):
            bucket = report.tenants[name]
            print(
                f"  {name:<14} submitted {bucket['submitted']:>5}  "
                f"answered {bucket['answered']:>5}  "
                f"quota-shed {bucket['quota_shed']:>4}  "
                f"shed {bucket['shed']:>4}  "
                f"rejected {bucket['rejected']:>4}  "
                f"p99 {report.tenant_latency_ms(name, 99):.2f} ms"
            )


def _print_loadtest_comparison(runs) -> None:
    """Per-scenario comparison across the requested policy/driver combos."""

    def _ms(value):
        return f"{value * 1e3:.2f}" if value is not None else "n/a"

    header = (
        f"{'policy':<14}{'driver':<9}{'hit rate':>9}{'p50 ms':>9}"
        f"{'p95 ms':>9}{'shed':>6}{'req/s':>10}"
    )
    for scenario in dict.fromkeys(run["scenario"] for run in runs):
        print(f"\nscenario {scenario!r}:")
        print(header)
        for run in runs:
            if run["scenario"] != scenario:
                continue
            report = run["report"]
            latency = report.stats["aggregate"]["latency_seconds"]
            print(
                f"{run['policy']:<14}{run['driver']:<9}"
                f"{report.stats['aggregate']['cache_hit_rate']:>8.1%} "
                f"{_ms(latency['p50']):>8} {_ms(latency['p95']):>8}"
                f"{report.shed:>6}{report.throughput_rps:>10,.0f}"
            )


def _cmd_loadtest(args: argparse.Namespace) -> int:
    """Replay named traffic scenarios against sharded gateways.

    ``--scenario`` / ``--policy`` / ``--driver`` are repeatable; a single
    combo prints the detailed report, several print a per-scenario
    comparison table (hit rate, p50/p95, shed, throughput).
    ``--report`` (and ``--spans-out`` / ``--ledger-out``) enable
    telemetry capture: each run gets its own tracer + audit ledger, and
    the report panel adds latency histograms, shard heat, and the ledger
    decision summary.
    """
    from .service import (
        TENANT_SCENARIOS,
        Telemetry,
        generate_traffic,
        qos_priority,
        render_loadtest_report,
    )

    scenarios = args.scenario or ["zipf"]
    policies = args.policy or ["hash"]
    drivers = args.driver or ["threads"]
    if args.chaos and getattr(args, "connect", None):
        print(
            "error: --chaos configures the gateway at construction time "
            "and cannot be applied to an already-running server "
            "(--connect)",
            file=sys.stderr,
        )
        return 2
    if getattr(args, "connect", None) and (
        args.tenants or any(s in TENANT_SCENARIOS for s in scenarios)
    ):
        print(
            "error: --tenants and multi-tenant scenarios install a "
            "control plane at gateway construction time and cannot be "
            "applied to an already-running server (--connect)",
            file=sys.stderr,
        )
        return 2
    try:
        qos = qos_priority(args.qos) if args.qos else None
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.tenants:
        try:
            for spec in args.tenants:
                _parse_tenant_spec(spec)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if getattr(args, "artifact_store", None) and args.estimator != "xmem":
        print(
            "error: --artifact-store caches pipeline-stage artifacts and "
            "needs the real pipeline (--estimator xmem)",
            file=sys.stderr,
        )
        return 2
    capture = args.report or args.spans_out or args.ledger_out
    runs = []
    for scenario in scenarios:
        trace = generate_traffic(
            scenario,
            args.requests,
            seed=args.seed,
            unique_workloads=args.unique,
            waves=args.waves,
        )
        if qos is not None:
            # pin every request to one QoS class — e.g. replay the same
            # mix as all-batch vs all-interactive to see the reserve act
            from dataclasses import replace as _replace

            trace = _replace(
                trace,
                requests=tuple(
                    _replace(request, priority=qos)
                    for request in trace.requests
                ),
            )
        control_factory = _control_factory(scenario, args)
        for policy_name in policies:
            for driver in drivers:
                # full detail: the report panel exists to show the
                # per-layer breakdown, so include middleware hook spans
                telemetry = (
                    Telemetry(ledger_path=args.ledger_out, detail="full")
                    if capture
                    else None
                )
                report = _loadtest_replay(
                    trace, args, policy_name, driver, telemetry=telemetry,
                    control_factory=control_factory,
                )
                if telemetry is not None and args.spans_out:
                    # spans stay in memory during the run (the report
                    # panel reads them back); dump afterwards so several
                    # runs append to one capture file, like the ledger
                    with open(args.spans_out, "a", encoding="utf-8") as fh:
                        for span in telemetry.spans():
                            fh.write(
                                json.dumps(span.as_dict(), sort_keys=True)
                                + "\n"
                            )
                if telemetry is not None:
                    telemetry.close()
                runs.append(
                    {
                        "scenario": scenario,
                        "policy": policy_name,
                        "driver": driver,
                        "trace": trace,
                        "report": report,
                        "telemetry": telemetry,
                    }
                )
    if args.json:
        if len(runs) == 1:
            # single combo keeps the original flat payload
            print(json.dumps(runs[0]["report"].as_dict()))
        else:
            print(
                json.dumps(
                    {
                        "runs": [
                            {
                                "scenario": run["scenario"],
                                "policy": run["policy"],
                                "driver": run["driver"],
                                **run["report"].as_dict(),
                            }
                            for run in runs
                        ]
                    }
                )
            )
        return 0
    if args.report:
        for index, run in enumerate(runs):
            if index:
                print()
            telemetry = run["telemetry"]
            print(
                render_loadtest_report(
                    run,
                    ledger=telemetry.ledger if telemetry else None,
                    spans=telemetry.spans() if telemetry else None,
                )
            )
        if len(runs) > 1:
            _print_loadtest_comparison(runs)
    elif len(runs) == 1:
        _print_loadtest_report(runs[0]["trace"], args, runs[0]["report"])
    else:
        _print_loadtest_comparison(runs)
    return 0


def _cmd_models(args: argparse.Namespace) -> int:
    for spec in list_models(include_rq5=True):
        model = spec.build()
        marker = " *" if spec.rq5_only else ""
        print(
            f"{spec.name:34s} {spec.family:12s} "
            f"{model.num_parameters() / 1e6:9.1f}M params{marker}"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    trace = profile_on_cpu(
        args.model,
        batch_size=args.batch_size,
        optimizer=args.optimizer,
        iterations=args.iterations,
    )
    if args.output:
        trace.save(args.output)
        print(f"trace written to {args.output}")
    summary = summarize_trace(trace)
    for key, value in summary.as_dict().items():
        print(f"{key:24s} {value}")
    return 0


def _cmd_curve(args: argparse.Namespace) -> int:
    workload = WorkloadConfig(
        model=args.model,
        optimizer=args.optimizer,
        batch_size=args.batch_size,
        zero_grad_position=args.zero_grad_position,
    )
    device = _device_from_args(args)
    result = XMemEstimator(iterations=args.iterations).estimate(workload, device)
    assert result.curve is not None
    points = result.curve.downsample(args.points).points
    for point in points:
        print(f"{point.ts}\t{point.allocated_bytes}\t{point.reserved_bytes}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xmem",
        description=(
            "CPU-based a-priori estimation of peak GPU memory for DL "
            "training (Middleware '25 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    estimate = sub.add_parser("estimate", help="estimate peak GPU memory")
    _add_workload_args(estimate)
    estimate.add_argument("--iterations", type=int, default=3)
    estimate.add_argument("--json", action="store_true")
    estimate.add_argument(
        "--explain", action="store_true",
        help="print the role breakdown and orchestration adjustments",
    )
    estimate.add_argument(
        "--timings", action="store_true",
        help="print the per-stage latency breakdown "
        "(profile/analyze/orchestrate/simulate)",
    )
    estimate.add_argument(
        "--artifact-store", metavar="PATH", default=None,
        help="sqlite file caching profile/analyze/orchestrate artifacts "
        "across runs — repeated invocations start warm",
    )
    estimate.set_defaults(func=_cmd_estimate)

    models = sub.add_parser("models", help="list the model zoo")
    models.set_defaults(func=_cmd_models)

    devices = sub.add_parser(
        "devices", help="list the known devices (name, capacity, job budget)"
    )
    devices.add_argument("--json", action="store_true")
    devices.set_defaults(func=_cmd_devices)

    batch = sub.add_parser(
        "batch",
        help="sweep (model x batch size x device) through the service",
    )
    batch.add_argument(
        "--model", action="append", required=True,
        help="model name; repeat for several models",
    )
    batch.add_argument(
        "--batch-sizes", required=True,
        help='comma-separated batch sizes, e.g. "8,16,32"',
    )
    batch.add_argument(
        "--devices", default="rtx3060",
        help=f'comma-separated device aliases from {sorted(_DEVICES)}',
    )
    batch.add_argument("--optimizer", default="adam")
    batch.add_argument(
        "--zero-grad-position", choices=(POS0, POS1), default=None
    )
    batch.add_argument("--iterations", type=int, default=3)
    batch.add_argument("--workers", type=int, default=4)
    batch.add_argument("--json", action="store_true")
    batch.set_defaults(func=_cmd_batch)

    serve = sub.add_parser(
        "serve-demo",
        help="replay a synthetic request trace at the estimation service",
    )
    serve.add_argument(
        "--requests", type=int, default=40,
        help="total requests in the synthetic trace",
    )
    serve.add_argument(
        "--unique", type=int, default=4,
        help="distinct workloads the trace draws from",
    )
    serve.add_argument(
        "--device", choices=sorted(_DEVICES), default="rtx3060"
    )
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument(
        "--waves", type=int, default=4,
        help="bursts the trace is split into (later waves hit the cache)",
    )
    serve.add_argument("--iterations", type=int, default=3)
    serve.add_argument("--cache-entries", type=int, default=1024)
    serve.add_argument("--seed", type=int, default=0)
    serve.set_defaults(func=_cmd_serve_demo)

    loadtest = sub.add_parser(
        "loadtest",
        help="replay a deterministic traffic scenario at a sharded gateway",
    )
    from .service import (
        CHAOS_SCENARIOS,
        POLICY_NAMES,
        QOS_CLASSES,
        SCENARIO_NAMES,
    )

    loadtest.add_argument(
        "--scenario", choices=SCENARIO_NAMES, action="append", default=None,
        help="traffic shape, repeatable (default zipf; see docs/service.md; "
        "multi-tenant scenarios install a calibrated control plane)",
    )
    loadtest.add_argument(
        "--tenants", action="append", default=None, metavar="SPEC",
        help='tenant roster as "name=rate:burst:weight", repeatable — '
        "installs a control plane with token-bucket quotas and weighted "
        "fair-share admission (see docs/control_plane.md)",
    )
    loadtest.add_argument(
        "--qos", choices=sorted(QOS_CLASSES), default=None,
        help="pin every replayed request to one QoS class "
        "(batch admission stops at the fair-share reserve floor)",
    )
    loadtest.add_argument(
        "--chaos", choices=CHAOS_SCENARIOS, default=None,
        help="inject a seeded fault scenario while the trace replays, "
        "with the default resilience policy (retries + per-shard "
        "circuit breakers) absorbing it; see docs/resilience.md",
    )
    loadtest.add_argument("--requests", type=int, default=200)
    loadtest.add_argument(
        "--unique", type=int, default=8,
        help="distinct workloads the scenario draws from",
    )
    loadtest.add_argument("--waves", type=int, default=4)
    loadtest.add_argument("--shards", type=int, default=4)
    loadtest.add_argument(
        "--policy", choices=POLICY_NAMES, action="append", default=None,
        help="routing policy, repeatable (default hash — preserves "
        "per-shard cache locality); several values print a comparison",
    )
    loadtest.add_argument(
        "--driver", choices=("threads", "asyncio", "processes", "tcp"),
        action="append", default=None,
        help="execution driver over the sans-IO core, repeatable "
        "(default threads); several values print a comparison; tcp "
        "spawns an in-process socket server unless --connect is given",
    )
    loadtest.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="with --driver tcp: replay against an already-running "
        "server instead of spawning one in-process (the remote "
        "gateway's policy/estimator apply; local telemetry is empty)",
    )
    loadtest.add_argument("--max-queue-depth", type=int, default=64)
    loadtest.add_argument("--workers-per-shard", type=int, default=2)
    loadtest.add_argument(
        "--pool-workers", type=int, default=4,
        help="worker processes shared by all shards (--driver processes)",
    )
    loadtest.add_argument(
        "--estimator", choices=("synthetic", "xmem"), default="synthetic",
        help="synthetic = measure the serving layer; xmem = real pipeline",
    )
    loadtest.add_argument(
        "--artifact-store", metavar="PATH", default=None,
        help="persistent stage-artifact store shared by every worker "
        "(xmem estimator only); procpool workers all open this file",
    )
    loadtest.add_argument(
        "--work-ms", type=float, default=0.0,
        help="simulated per-estimate cost for the synthetic estimator "
        "(sleep: releases the GIL)",
    )
    loadtest.add_argument(
        "--spin-ms", type=float, default=0.0,
        help="simulated CPU-bound per-estimate cost for the synthetic "
        "estimator (busy loop: holds the GIL — what --driver processes "
        "parallelizes and the other drivers cannot)",
    )
    loadtest.add_argument(
        "--iterations", type=int, default=2,
        help="profiling iterations for --estimator xmem",
    )
    loadtest.add_argument("--seed", type=int, default=0)
    loadtest.add_argument("--json", action="store_true")
    loadtest.add_argument(
        "--report", action="store_true",
        help="enable telemetry and print the full panel per run: latency "
        "histogram, shard heat, ledger decision summary, span accounting",
    )
    loadtest.add_argument(
        "--spans-out", default=None, metavar="PATH",
        help="append captured spans as JSON lines (implies telemetry)",
    )
    loadtest.add_argument(
        "--ledger-out", default=None, metavar="PATH",
        help="append audit-ledger events as JSON lines (implies telemetry)",
    )
    loadtest.set_defaults(func=_cmd_loadtest)

    trace = sub.add_parser("trace", help="profile a workload on the CPU")
    trace.add_argument("--model", required=True)
    trace.add_argument("--batch-size", type=int, required=True)
    trace.add_argument("--optimizer", default="adam")
    trace.add_argument("--iterations", type=int, default=3)
    trace.add_argument("--output", default=None, help="trace JSON path")
    trace.set_defaults(func=_cmd_trace)

    curve = sub.add_parser(
        "curve", help="print the estimated memory curve (ts, tensor, segment)"
    )
    _add_workload_args(curve)
    curve.add_argument("--iterations", type=int, default=3)
    curve.add_argument("--points", type=int, default=200)
    curve.set_defaults(func=_cmd_curve)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
