"""Command-line interface: ``xmem estimate | models | trace | curve``."""

from __future__ import annotations

import argparse
import json
import sys

from .core.estimator import XMemEstimator
from .models.registry import list_models
from .runtime.loop import POS0, POS1
from .runtime.profiler import profile_on_cpu
from .trace.stats import summarize_trace
from .units import format_gb, parse_size
from .workload import A100_40GB, RTX_3060, RTX_4060, DeviceSpec, WorkloadConfig

_DEVICES = {
    "rtx3060": RTX_3060,
    "rtx4060": RTX_4060,
    "a100": A100_40GB,
}


def _device_from_args(args: argparse.Namespace) -> DeviceSpec:
    if args.capacity:
        return DeviceSpec(
            name="custom", capacity_bytes=parse_size(args.capacity)
        )
    return _DEVICES[args.device]


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", required=True, help="model name (see `xmem models`)")
    parser.add_argument("--batch-size", type=int, required=True)
    parser.add_argument("--optimizer", default="adam")
    parser.add_argument(
        "--zero-grad-position",
        choices=(POS0, POS1),
        default=POS1,
        help="placement of optimizer.zero_grad() in the loop (Fig. 1)",
    )
    parser.add_argument(
        "--device", choices=sorted(_DEVICES), default="rtx3060"
    )
    parser.add_argument(
        "--capacity", default=None, help='custom device capacity, e.g. "24GiB"'
    )


def _cmd_estimate(args: argparse.Namespace) -> int:
    workload = WorkloadConfig(
        model=args.model,
        optimizer=args.optimizer,
        batch_size=args.batch_size,
        zero_grad_position=args.zero_grad_position,
    )
    device = _device_from_args(args)
    result = XMemEstimator(iterations=args.iterations).estimate(workload, device)
    if args.json:
        print(
            json.dumps(
                {
                    "model": workload.model,
                    "optimizer": workload.optimizer,
                    "batch_size": workload.batch_size,
                    "device": device.name,
                    "estimated_peak_bytes": result.peak_bytes,
                    "predicts_oom": result.predicts_oom(),
                    "runtime_seconds": result.runtime_seconds,
                }
            )
        )
    elif args.explain:
        from .core.report import render_report

        print(render_report(result))
    else:
        print(f"workload        : {workload.label()}")
        print(f"device          : {device.name}")
        print(f"estimated peak  : {format_gb(result.peak_bytes)}")
        print(f"job budget      : {format_gb(device.job_budget())}")
        print(f"prediction      : {'OOM' if result.predicts_oom() else 'fits'}")
        print(f"estimator time  : {result.runtime_seconds:.2f}s")
    return 0


def _cmd_models(args: argparse.Namespace) -> int:
    for spec in list_models(include_rq5=True):
        model = spec.build()
        marker = " *" if spec.rq5_only else ""
        print(
            f"{spec.name:34s} {spec.family:12s} "
            f"{model.num_parameters() / 1e6:9.1f}M params{marker}"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    trace = profile_on_cpu(
        args.model,
        batch_size=args.batch_size,
        optimizer=args.optimizer,
        iterations=args.iterations,
    )
    if args.output:
        trace.save(args.output)
        print(f"trace written to {args.output}")
    summary = summarize_trace(trace)
    for key, value in summary.as_dict().items():
        print(f"{key:24s} {value}")
    return 0


def _cmd_curve(args: argparse.Namespace) -> int:
    workload = WorkloadConfig(
        model=args.model,
        optimizer=args.optimizer,
        batch_size=args.batch_size,
        zero_grad_position=args.zero_grad_position,
    )
    device = _device_from_args(args)
    result = XMemEstimator(iterations=args.iterations).estimate(workload, device)
    assert result.curve is not None
    points = result.curve.downsample(args.points).points
    for point in points:
        print(f"{point.ts}\t{point.allocated_bytes}\t{point.reserved_bytes}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xmem",
        description=(
            "CPU-based a-priori estimation of peak GPU memory for DL "
            "training (Middleware '25 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    estimate = sub.add_parser("estimate", help="estimate peak GPU memory")
    _add_workload_args(estimate)
    estimate.add_argument("--iterations", type=int, default=3)
    estimate.add_argument("--json", action="store_true")
    estimate.add_argument(
        "--explain", action="store_true",
        help="print the role breakdown and orchestration adjustments",
    )
    estimate.set_defaults(func=_cmd_estimate)

    models = sub.add_parser("models", help="list the model zoo")
    models.set_defaults(func=_cmd_models)

    trace = sub.add_parser("trace", help="profile a workload on the CPU")
    trace.add_argument("--model", required=True)
    trace.add_argument("--batch-size", type=int, required=True)
    trace.add_argument("--optimizer", default="adam")
    trace.add_argument("--iterations", type=int, default=3)
    trace.add_argument("--output", default=None, help="trace JSON path")
    trace.set_defaults(func=_cmd_trace)

    curve = sub.add_parser(
        "curve", help="print the estimated memory curve (ts, tensor, segment)"
    )
    _add_workload_args(curve)
    curve.add_argument("--iterations", type=int, default=3)
    curve.add_argument("--points", type=int, default=200)
    curve.set_defaults(func=_cmd_curve)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
