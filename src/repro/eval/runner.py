"""Experiment runner: drives estimators through the validation protocol."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..baselines.base import Estimator
from ..baselines.dnnmem import DNNMemEstimator
from ..baselines.llmem import LLMemEstimator
from ..baselines.schedtune import SchedTuneEstimator
from ..core.estimator import XMemEstimator
from ..core.result import EstimationResult
from ..workload import DeviceSpec, WorkloadConfig
from .metrics import EstimatorScore, ValidationOutcome, score_outcomes
from .validation import GroundTruthCache, validate


def default_estimators(
    schedtune_history=None,
) -> list[Estimator]:
    """The paper's estimator lineup: xMem + the three baselines."""
    schedtune = SchedTuneEstimator(history=schedtune_history)
    return [
        XMemEstimator(),
        DNNMemEstimator(),
        schedtune,
        LLMemEstimator(),
    ]


@dataclass
class ExperimentResult:
    """All outcomes of one experiment plus aggregate views."""

    outcomes: list[ValidationOutcome] = field(default_factory=list)

    def scores(self) -> dict[str, EstimatorScore]:
        return score_outcomes(self.outcomes)

    def by_model(self) -> dict[tuple[str, str], list[ValidationOutcome]]:
        """(model, estimator) -> outcomes, for per-model boxes (Fig. 7)."""
        table: dict[tuple[str, str], list[ValidationOutcome]] = {}
        for outcome in self.outcomes:
            key = (outcome.workload.model, outcome.estimator)
            table.setdefault(key, []).append(outcome)
        return table

    def by_family(
        self, family_of: Callable[[str], str]
    ) -> dict[tuple[str, str], list[ValidationOutcome]]:
        """(family, estimator) -> outcomes, for Table 3."""
        table: dict[tuple[str, str], list[ValidationOutcome]] = {}
        for outcome in self.outcomes:
            key = (family_of(outcome.workload.model), outcome.estimator)
            table.setdefault(key, []).append(outcome)
        return table

    def errors_for(self, model: str, estimator: str) -> list[float]:
        return [
            o.error
            for o in self.outcomes
            if o.workload.model == model
            and o.estimator == estimator
            and o.error is not None
        ]


class ExperimentRunner:
    """Runs (configuration x estimator x repeat) validations with caching."""

    def __init__(
        self,
        estimators: Optional[Sequence[Estimator]] = None,
        repeats: int = 1,
        progress: Optional[Callable[[str], None]] = None,
    ):
        self.estimators = (
            list(estimators) if estimators is not None else default_estimators()
        )
        self.repeats = repeats
        self.cache = GroundTruthCache()
        self._progress = progress
        self._estimate_cache: dict[tuple, EstimationResult] = {}

    def run(
        self,
        configurations: Sequence[tuple[WorkloadConfig, DeviceSpec]],
    ) -> ExperimentResult:
        result = ExperimentResult()
        for workload, device in configurations:
            for estimator in self.estimators:
                estimate = self._estimate_once(estimator, workload, device)
                for run_index in range(self.repeats):
                    outcome = validate(
                        estimator,
                        workload,
                        device,
                        run_index=run_index,
                        cache=self.cache,
                        estimate=estimate,
                    )
                    result.outcomes.append(outcome)
            if self._progress is not None:
                self._progress(workload.label())
        return result

    def _estimate_once(
        self,
        estimator: Estimator,
        workload: WorkloadConfig,
        device: DeviceSpec,
    ) -> EstimationResult:
        """Estimates are deterministic per configuration — compute once."""
        key = (estimator.name, workload.to_key(), device.to_key())
        if key not in self._estimate_cache:
            if estimator.supports(workload):
                self._estimate_cache[key] = estimator.estimate(workload, device)
            else:
                self._estimate_cache[key] = estimator.unsupported_result(
                    workload, device
                )
        return self._estimate_cache[key]
