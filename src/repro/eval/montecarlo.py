"""Monte Carlo experiment (paper §4.1.4 setting 2, Figs. 7c/7d/8b, Tables
3-4).

Configurations are drawn at random from the full space — model, optimizer,
batch size, ``zero_grad`` placement, target GPU — simulating the
"randomness and uncertainty of reality" the paper leans on for the MCP
analysis.  The paper uses 1306 runs; ``num_samples`` scales that down or
up.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..baselines.base import Estimator
from ..workload import EVAL_DEVICES, DeviceSpec
from .runner import ExperimentResult, ExperimentRunner
from .workloads import monte_carlo_samples

PAPER_NUM_RUNS = 1306


def run_monte_carlo_experiment(
    num_samples: int = 40,
    seed: int = 0,
    devices: Sequence[DeviceSpec] = EVAL_DEVICES,
    families: Sequence[str] = ("cnn", "transformer"),
    estimators: Optional[Sequence[Estimator]] = None,
) -> ExperimentResult:
    """Run ``num_samples`` random configurations through validation."""
    samples = list(
        monte_carlo_samples(
            num_samples, seed=seed, devices=devices, families=families
        )
    )
    runner = ExperimentRunner(estimators=estimators, repeats=1)
    return runner.run(samples)
