"""Evaluation metrics — Eqs. (1)-(8) of the paper (§4.1.5).

* **MRE** — median relative error of the estimated peak vs the NVML
  ground truth, over runs without a real round-1 OOM.
* **PEF** — probability of estimation failure: the fraction of runs whose
  estimate did not pass the two-round validation check :math:`C_{jde2}`.
* **MCP** — memory conservation potential: average memory saved per run,
  with a full-capacity penalty for estimates that caused a round-2 OOM.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Iterable, Optional

from ..workload import DeviceSpec, WorkloadConfig


@dataclass(frozen=True)
class ValidationOutcome:
    """Everything recorded for one (estimator, configuration, run) triple.

    Field names map to the paper's notation (Table 1): ``oom1`` is
    :math:`OOM_{jd1}`, ``c1`` is :math:`C_{jde1}`, ``m_peak2`` is
    :math:`M^{peak}_{j2d}`, and so on.
    """

    estimator: str
    workload: WorkloadConfig
    device: DeviceSpec
    run_index: int
    supported: bool
    est_peak: int  # \hat{M}^{peak}_{jde}
    oom_pred: bool  # \hat{OOM}_{jde}, Eq. (1)
    oom1: bool  # OOM_{jd1}
    m_peak1: Optional[int]  # M^{peak}_{j1d} (None when round 1 OOMed)
    c1: bool  # Eq. (4)
    ran_round2: bool
    oom2: Optional[bool]  # OOM_{jde2}
    m_peak2: Optional[int]  # M^{peak}_{j2d}
    c2: bool  # Eq. (5)
    runtime_seconds: float

    @property
    def error(self) -> Optional[float]:
        """Eq. (2)/(3) operand: relative error for this run, or None.

        Defined only when round 1 did not OOM; uses the round-2 peak when
        the round-2 run completed, else the round-1 peak.
        """
        if self.oom1 or not self.supported:
            return None
        if self.ran_round2 and self.oom2 is False and self.m_peak2:
            truth = self.m_peak2
        elif self.m_peak1:
            truth = self.m_peak1
        else:
            return None
        return abs(self.est_peak - truth) / truth

    @property
    def m_save(self) -> Optional[int]:
        """Eq. (7): memory conserved by this run's estimate (bytes)."""
        if not self.supported:
            return None
        budget = self.device.job_budget()
        if self.c1 and self.oom1:
            return budget
        if self.c1 and self.ran_round2 and self.oom2 is False:
            return budget - self.est_peak
        return -budget


def relative_error(estimate: int, truth: int) -> float:
    """Eq. (2): ||estimate - truth|| / truth."""
    if truth <= 0:
        raise ValueError("ground-truth peak must be positive")
    return abs(estimate - truth) / truth


def median_relative_error(
    outcomes: Iterable[ValidationOutcome],
) -> Optional[float]:
    """Eq. (3): the median of per-run relative errors (MRE)."""
    errors = [o.error for o in outcomes if o.error is not None]
    if not errors:
        return None
    return statistics.median(errors)


def probability_of_estimation_failure(
    outcomes: Iterable[ValidationOutcome],
) -> Optional[float]:
    """Eq. (6) with C2 (the paper's headline PEF, :math:`P_{je2}`)."""
    relevant = [o for o in outcomes if o.supported]
    if not relevant:
        return None
    failures = sum(1 for o in relevant if not o.c2)
    return failures / len(relevant)


def memory_conservation_potential(
    outcomes: Iterable[ValidationOutcome],
) -> Optional[float]:
    """Eq. (8): average per-run conserved bytes (MCP)."""
    savings = [o.m_save for o in outcomes if o.m_save is not None]
    if not savings:
        return None
    return sum(savings) / len(savings)


def mean_runtime_seconds(
    outcomes: Iterable[ValidationOutcome],
) -> Optional[float]:
    relevant = [o.runtime_seconds for o in outcomes if o.supported]
    if not relevant:
        return None
    return sum(relevant) / len(relevant)


@dataclass(frozen=True)
class EstimatorScore:
    """Aggregate metrics for one estimator over a set of outcomes."""

    estimator: str
    num_runs: int
    mre: Optional[float]
    pef: Optional[float]
    mcp_bytes: Optional[float]
    mean_runtime_seconds: Optional[float]


def score_outcomes(
    outcomes: list[ValidationOutcome],
) -> dict[str, EstimatorScore]:
    """Aggregate outcomes per estimator."""
    by_estimator: dict[str, list[ValidationOutcome]] = {}
    for outcome in outcomes:
        by_estimator.setdefault(outcome.estimator, []).append(outcome)
    scores: dict[str, EstimatorScore] = {}
    for name, group in sorted(by_estimator.items()):
        scores[name] = EstimatorScore(
            estimator=name,
            num_runs=len(group),
            mre=median_relative_error(group),
            pef=probability_of_estimation_failure(group),
            mcp_bytes=memory_conservation_potential(group),
            mean_runtime_seconds=mean_runtime_seconds(group),
        )
    return scores
