"""Workload grids of the paper's evaluation (§4.1.2).

* CNN models pair with SGD / Adam / AdamW / RMSprop / Adagrad and batch
  sizes 200-700 (step 100).
* Transformer models pair with SGD / Adafactor / Adam / AdamW and batch
  sizes 5-55 (step 5); the higher-parameter models (Qwen3, Pythia) use
  batch sizes 1-8 (step 1).
* Monte Carlo runs additionally randomize the ``zero_grad`` placement and
  the target GPU.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

from ..models.registry import list_models
from ..runtime.loop import POS0, POS1
from ..workload import EVAL_DEVICES, DeviceSpec, WorkloadConfig

CNN_OPTIMIZERS: tuple[str, ...] = ("sgd", "adam", "adamw", "rmsprop", "adagrad")
TRANSFORMER_OPTIMIZERS: tuple[str, ...] = ("sgd", "adafactor", "adam", "adamw")

CNN_BATCH_SIZES: tuple[int, ...] = tuple(range(200, 701, 100))
TRANSFORMER_BATCH_SIZES: tuple[int, ...] = tuple(range(5, 56, 5))
SMALL_BATCH_SIZES: tuple[int, ...] = tuple(range(1, 9))

#: Models whose parameter counts force the small batch grid (§4.1.2).
SMALL_BATCH_MODELS: frozenset[str] = frozenset({"Qwen3-0.6B", "pythia-1b"})

#: RQ5 uses only the memory-frugal optimizers so every run fits (§4.1.2).
RQ5_OPTIMIZERS: tuple[str, ...] = ("sgd", "adafactor")


def batch_sizes_for(model: str, family: str) -> tuple[int, ...]:
    if model in SMALL_BATCH_MODELS:
        return SMALL_BATCH_SIZES
    if family == "cnn":
        return CNN_BATCH_SIZES
    return TRANSFORMER_BATCH_SIZES


def optimizers_for(family: str) -> tuple[str, ...]:
    return CNN_OPTIMIZERS if family == "cnn" else TRANSFORMER_OPTIMIZERS


def anova_grid(
    families: Sequence[str] = ("cnn", "transformer"),
    models: Sequence[str] | None = None,
    max_batches_per_model: int | None = None,
    max_optimizers: int | None = None,
) -> list[WorkloadConfig]:
    """The systematic (full-factorial) configuration grid.

    ``max_batches_per_model`` / ``max_optimizers`` subsample the grid
    evenly for scaled-down runs; ``None`` reproduces the paper's full grid.
    """
    configs: list[WorkloadConfig] = []
    for spec in list_models():
        if spec.family not in families:
            continue
        if models is not None and spec.name not in models:
            continue
        optimizers = optimizers_for(spec.family)
        if max_optimizers is not None:
            optimizers = _thin(optimizers, max_optimizers)
        batches = batch_sizes_for(spec.name, spec.family)
        if max_batches_per_model is not None:
            batches = _thin(batches, max_batches_per_model)
        for optimizer in optimizers:
            for batch in batches:
                configs.append(WorkloadConfig(spec.name, optimizer, batch))
    return configs


def monte_carlo_samples(
    num_samples: int,
    seed: int = 0,
    devices: Sequence[DeviceSpec] = EVAL_DEVICES,
    families: Sequence[str] = ("cnn", "transformer"),
) -> Iterator[tuple[WorkloadConfig, DeviceSpec]]:
    """Randomly drawn (configuration, device) pairs (§4.1.4 setting 2).

    The draw covers all models/optimizers/batch sizes of the grids plus
    both ``zero_grad`` placements — the code-structure variation Fig. 1
    motivates.
    """
    rng = random.Random(seed)
    specs = [s for s in list_models() if s.family in families]
    for _ in range(num_samples):
        spec = rng.choice(specs)
        optimizer = rng.choice(optimizers_for(spec.family))
        batch = rng.choice(batch_sizes_for(spec.name, spec.family))
        position = rng.choice((POS0, POS1))
        device = rng.choice(list(devices))
        yield (
            WorkloadConfig(
                spec.name, optimizer, batch, zero_grad_position=position
            ),
            device,
        )


def rq5_grid() -> list[WorkloadConfig]:
    """RQ5: the three large models, batch size 1, SGD/Adafactor."""
    from ..models.registry import rq5_models

    return [
        WorkloadConfig(spec.name, optimizer, 1)
        for spec in rq5_models()
        for optimizer in RQ5_OPTIMIZERS
    ]


def _thin(values: Sequence, keep: int) -> tuple:
    if keep >= len(values):
        return tuple(values)
    if keep <= 0:
        return ()
    stride = max(1, len(values) // keep)
    thinned = list(values[::stride])[:keep]
    return tuple(thinned)
