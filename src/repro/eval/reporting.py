"""Text reports matching the paper's tables and figure series."""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Optional, Sequence

from ..units import GB
from .metrics import (
    ValidationOutcome,
    median_relative_error,
    probability_of_estimation_failure,
)
from .runner import ExperimentResult


@dataclass(frozen=True)
class BoxStats:
    """Summary of one box in the paper's Fig. 7 box plots."""

    n: int
    median: float
    q1: float
    q3: float
    maximum: float

    @classmethod
    def from_errors(cls, errors: Sequence[float]) -> Optional["BoxStats"]:
        if not errors:
            return None
        ordered = sorted(errors)
        return cls(
            n=len(ordered),
            median=statistics.median(ordered),
            q1=_quantile(ordered, 0.25),
            q3=_quantile(ordered, 0.75),
            maximum=ordered[-1],
        )


def _quantile(ordered: Sequence[float], q: float) -> float:
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def mre_box_table(
    result: ExperimentResult, estimators: Sequence[str]
) -> list[tuple[str, dict[str, Optional[BoxStats]]]]:
    """Per-model MRE boxes (the Fig. 7 series), in percent."""
    models = sorted({o.workload.model for o in result.outcomes})
    rows = []
    for model in models:
        boxes: dict[str, Optional[BoxStats]] = {}
        for estimator in estimators:
            errors = [e * 100 for e in result.errors_for(model, estimator)]
            boxes[estimator] = BoxStats.from_errors(errors)
        rows.append((model, boxes))
    return rows


def format_mre_table(
    result: ExperimentResult, estimators: Sequence[str]
) -> str:
    lines = [
        "Model".ljust(30)
        + "".join(name.rjust(14) for name in estimators)
        + "   (median relative error, %)"
    ]
    for model, boxes in mre_box_table(result, estimators):
        row = model.ljust(30)
        for estimator in estimators:
            box = boxes[estimator]
            row += ("N/A" if box is None else f"{box.median:.1f}").rjust(14)
        lines.append(row)
    return "\n".join(lines)


def quadrant_points(
    result: ExperimentResult,
) -> dict[str, list[tuple[str, float, float]]]:
    """(model, MRE%, PEF%) per estimator — the Fig. 8 scatter."""
    grouped: dict[tuple[str, str], list[ValidationOutcome]] = {}
    for outcome in result.outcomes:
        grouped.setdefault(
            (outcome.estimator, outcome.workload.model), []
        ).append(outcome)
    points: dict[str, list[tuple[str, float, float]]] = {}
    for (estimator, model), outcomes in sorted(grouped.items()):
        mre = median_relative_error(outcomes)
        pef = probability_of_estimation_failure(outcomes)
        if mre is None or pef is None:
            continue
        points.setdefault(estimator, []).append((model, mre * 100, pef * 100))
    return points


def quadrant_summary(
    result: ExperimentResult, threshold_pct: float = 20.0
) -> dict[str, dict[str, int]]:
    """Count models per quadrant per estimator (Fig. 8 reading)."""
    summary: dict[str, dict[str, int]] = {}
    for estimator, points in quadrant_points(result).items():
        counts = {
            "optimal": 0,
            "overestimation": 0,
            "underestimation": 0,
            "worst": 0,
        }
        for _, mre, pef in points:
            high_mre = mre > threshold_pct
            high_pef = pef > threshold_pct
            if not high_mre and not high_pef:
                counts["optimal"] += 1
            elif high_mre and not high_pef:
                counts["overestimation"] += 1
            elif not high_mre and high_pef:
                counts["underestimation"] += 1
            else:
                counts["worst"] += 1
        summary[estimator] = counts
    return summary


def mcp_table(
    result: ExperimentResult, family_of, estimators: Sequence[str]
) -> list[tuple[str, dict[str, Optional[float]]]]:
    """Average MCP in GB per (architecture class, estimator) — Table 3."""
    rows = []
    classes = ("cnn", "transformer", "overall")
    for cls in classes:
        cells: dict[str, Optional[float]] = {}
        for estimator in estimators:
            outcomes = [
                o
                for o in result.outcomes
                if o.estimator == estimator
                and (cls == "overall" or family_of(o.workload.model) == cls)
            ]
            savings = [o.m_save for o in outcomes if o.m_save is not None]
            cells[estimator] = (
                sum(savings) / len(savings) / GB if savings else None
            )
        rows.append((cls, cells))
    return rows


def format_mcp_table(
    result: ExperimentResult, family_of, estimators: Sequence[str]
) -> str:
    lines = [
        "Model Arch".ljust(14)
        + "".join(name.rjust(12) for name in estimators)
        + "   (avg MCP, GB)"
    ]
    for cls, cells in mcp_table(result, family_of, estimators):
        row = cls.ljust(14)
        for estimator in estimators:
            value = cells[estimator]
            row += ("N/A" if value is None else f"{value:.2f}").rjust(12)
        lines.append(row)
    return "\n".join(lines)


def outcome_rows(result: ExperimentResult) -> list[dict]:
    """Flat JSON-ready rows, one per validation outcome.

    Workload and device columns come from the canonical ``as_dict()``
    representations (the same fields the service-layer fingerprint hashes),
    so exported rows join exactly against cached estimates.
    """
    rows = []
    for o in result.outcomes:
        row = {
            "estimator": o.estimator,
            **o.workload.as_dict(),
            "device": o.device.as_dict(),
            "run_index": o.run_index,
            "supported": o.supported,
            "est_peak": o.est_peak,
            "oom_pred": o.oom_pred,
            "oom1": o.oom1,
            "c1": o.c1,
            "c2": o.c2,
            "error": o.error,
            "m_save": o.m_save,
            "runtime_seconds": o.runtime_seconds,
        }
        rows.append(row)
    return rows


def runtime_table(result: ExperimentResult) -> dict[str, float]:
    """Average estimator runtime in seconds — Table 4."""
    scores = result.scores()
    return {
        name: score.mean_runtime_seconds
        for name, score in scores.items()
        if score.mean_runtime_seconds is not None
    }
