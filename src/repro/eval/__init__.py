"""Evaluation harness: metrics (Eqs. 1-8), two-round validation, drivers."""

from .anova import (
    AnovaReport,
    anova_over_estimators,
    family_of,
    run_anova_experiment,
)
from .metrics import (
    EstimatorScore,
    ValidationOutcome,
    median_relative_error,
    memory_conservation_potential,
    probability_of_estimation_failure,
    relative_error,
    score_outcomes,
)
from .montecarlo import PAPER_NUM_RUNS, run_monte_carlo_experiment
from .reporting import (
    BoxStats,
    format_mcp_table,
    format_mre_table,
    mcp_table,
    mre_box_table,
    quadrant_points,
    quadrant_summary,
    runtime_table,
)
from .runner import ExperimentResult, ExperimentRunner, default_estimators
from .validation import GROUND_TRUTH_ITERATIONS, GroundTruthCache, validate
from .workloads import (
    CNN_BATCH_SIZES,
    CNN_OPTIMIZERS,
    SMALL_BATCH_MODELS,
    SMALL_BATCH_SIZES,
    TRANSFORMER_BATCH_SIZES,
    TRANSFORMER_OPTIMIZERS,
    anova_grid,
    batch_sizes_for,
    monte_carlo_samples,
    optimizers_for,
    rq5_grid,
)

__all__ = [
    "AnovaReport",
    "BoxStats",
    "CNN_BATCH_SIZES",
    "CNN_OPTIMIZERS",
    "EstimatorScore",
    "ExperimentResult",
    "ExperimentRunner",
    "GROUND_TRUTH_ITERATIONS",
    "GroundTruthCache",
    "PAPER_NUM_RUNS",
    "SMALL_BATCH_MODELS",
    "SMALL_BATCH_SIZES",
    "TRANSFORMER_BATCH_SIZES",
    "TRANSFORMER_OPTIMIZERS",
    "ValidationOutcome",
    "anova_grid",
    "anova_over_estimators",
    "batch_sizes_for",
    "default_estimators",
    "family_of",
    "format_mcp_table",
    "format_mre_table",
    "mcp_table",
    "median_relative_error",
    "memory_conservation_potential",
    "monte_carlo_samples",
    "mre_box_table",
    "optimizers_for",
    "probability_of_estimation_failure",
    "quadrant_points",
    "quadrant_summary",
    "relative_error",
    "rq5_grid",
    "run_anova_experiment",
    "run_monte_carlo_experiment",
    "runtime_table",
    "score_outcomes",
    "validate",
]
