"""The two-round validation protocol (paper §4.1.4).

Round 1 (initial validation): the job runs with the device's full job
budget; the estimator's OOM prediction (Eq. 1) is checked against the
actual outcome, and the NVML peak is recorded.

Round 2 (subsequent validation): only when round 1 agreed and did not OOM,
the job runs again with the *estimate itself* as the maximum runnable
memory (:math:`M^{init} + M^{fm} + \\hat{M}^{peak}`).  Surviving round 2
means the estimate is directly usable as a safe memory cap — the property
PEF and MCP measure.
"""

from __future__ import annotations

from typing import Optional

from ..baselines.base import Estimator
from ..core.result import EstimationResult
from ..runtime.ground_truth import GroundTruthResult, run_gpu_ground_truth
from ..runtime.loop import TrainLoopConfig
from ..workload import DeviceSpec, WorkloadConfig
from .metrics import ValidationOutcome

#: ground-truth runs use 2 iterations: enough for stateful optimizers'
#: persistent allocations plus one stabilized iteration
GROUND_TRUTH_ITERATIONS = 2


class GroundTruthCache:
    """Memoizes round-1 ground-truth runs, shared across estimators."""

    def __init__(self) -> None:
        self._cache: dict[tuple, GroundTruthResult] = {}
        self.misses = 0

    def round1(
        self, workload: WorkloadConfig, device: DeviceSpec, seed: int
    ) -> GroundTruthResult:
        key = (workload.to_key(), device.to_key(), seed)
        if key not in self._cache:
            self.misses += 1
            self._cache[key] = _run(workload, device.job_budget(), seed)
        return self._cache[key]


def _run(
    workload: WorkloadConfig, capacity_bytes: int, seed: int
) -> GroundTruthResult:
    return run_gpu_ground_truth(
        workload.model,
        workload.batch_size,
        workload.optimizer,
        loop=TrainLoopConfig(
            iterations=GROUND_TRUTH_ITERATIONS,
            zero_grad_position=workload.zero_grad_position,
            set_to_none=workload.set_to_none,
        ),
        capacity_bytes=capacity_bytes,
        seed=seed,
        iterations=GROUND_TRUTH_ITERATIONS,
    )


def validate(
    estimator: Estimator,
    workload: WorkloadConfig,
    device: DeviceSpec,
    run_index: int = 0,
    cache: Optional[GroundTruthCache] = None,
    estimate: Optional[EstimationResult] = None,
) -> ValidationOutcome:
    """Run the full two-round validation for one configuration.

    ``run_index`` seeds the ground-truth jitter so repeated trials differ
    the way repeated real runs do.  ``estimate`` lets callers reuse a
    previously computed estimate (estimates are deterministic per
    configuration, matching the paper's protocol of estimating once).
    """
    seed = _seed_for(workload, device, run_index)
    cache = cache or GroundTruthCache()
    if not estimator.supports(workload):
        result = estimator.unsupported_result(workload, device)
    elif estimate is not None:
        result = estimate
    else:
        result = estimator.estimate(workload, device)

    truth1 = cache.round1(workload, device, seed)
    oom_pred = result.supported and result.predicts_oom()
    c1 = result.supported and (oom_pred == truth1.oom)

    ran_round2 = False
    oom2: Optional[bool] = None
    m_peak2: Optional[int] = None
    if c1 and not truth1.oom:
        ran_round2 = True
        truth2 = _run(
            workload,
            capacity_bytes=max(1, result.peak_bytes),
            seed=seed + 7919,
        )
        oom2 = truth2.oom
        m_peak2 = None if truth2.oom else truth2.measured_peak
    c2 = bool(c1 and (oom2 is False or truth1.oom))

    return ValidationOutcome(
        estimator=estimator.name,
        workload=workload,
        device=device,
        run_index=run_index,
        supported=result.supported,
        est_peak=result.peak_bytes,
        oom_pred=oom_pred,
        oom1=truth1.oom,
        m_peak1=None if truth1.oom else truth1.measured_peak,
        c1=c1,
        ran_round2=ran_round2,
        oom2=oom2,
        m_peak2=m_peak2,
        c2=c2,
        runtime_seconds=result.runtime_seconds,
    )


def _seed_for(
    workload: WorkloadConfig, device: DeviceSpec, run_index: int
) -> int:
    """Deterministic per-(configuration, run) seed."""
    import zlib

    key = f"{workload.label()}|{device.name}|{run_index}".encode()
    return zlib.crc32(key)
