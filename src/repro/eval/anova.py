"""ANOVA experiment (paper §4.1.4 setting 1, Figs. 7a/7b/8a).

Full-factorial configuration grid on the RTX 3060, five repeats per
configuration, followed by a one-way analysis of variance over the
estimators' error distributions.  ``scale`` shrinks the grid for CI-sized
runs; ``scale="full"`` reproduces the paper's ~3900 runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..baselines.base import Estimator
from ..models.registry import get_model_spec
from ..workload import RTX_3060, DeviceSpec
from .runner import ExperimentResult, ExperimentRunner
from .workloads import anova_grid

#: grid-shrink presets: (max batches per model, max optimizers, repeats)
SCALES = {
    "smoke": (1, 1, 1),
    "small": (2, 2, 2),
    "medium": (3, 3, 3),
    "full": (None, None, 5),
}


@dataclass(frozen=True)
class AnovaReport:
    """ANOVA summary over per-run errors grouped by estimator."""

    f_statistic: Optional[float]
    p_value: Optional[float]
    group_sizes: dict[str, int]


def run_anova_experiment(
    scale: str = "small",
    families: Sequence[str] = ("cnn", "transformer"),
    models: Sequence[str] | None = None,
    device: DeviceSpec = RTX_3060,
    estimators: Optional[Sequence[Estimator]] = None,
) -> ExperimentResult:
    """Run the systematic grid at the requested scale."""
    try:
        max_batches, max_optimizers, repeats = SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
        ) from None
    grid = anova_grid(
        families=families,
        models=models,
        max_batches_per_model=max_batches,
        max_optimizers=max_optimizers,
    )
    runner = ExperimentRunner(estimators=estimators, repeats=repeats)
    return runner.run([(workload, device) for workload in grid])


def anova_over_estimators(result: ExperimentResult) -> AnovaReport:
    """One-way ANOVA: do the estimators' error distributions differ?"""
    groups: dict[str, list[float]] = {}
    for outcome in result.outcomes:
        if outcome.error is not None:
            groups.setdefault(outcome.estimator, []).append(outcome.error)
    populated = {k: v for k, v in groups.items() if len(v) >= 2}
    if len(populated) < 2:
        return AnovaReport(
            f_statistic=None,
            p_value=None,
            group_sizes={k: len(v) for k, v in groups.items()},
        )
    try:
        from scipy.stats import f_oneway
    except ImportError:  # pragma: no cover - scipy is an eval dependency
        return AnovaReport(
            f_statistic=None,
            p_value=None,
            group_sizes={k: len(v) for k, v in groups.items()},
        )
    f_stat, p_value = f_oneway(*populated.values())
    return AnovaReport(
        f_statistic=float(f_stat),
        p_value=float(p_value),
        group_sizes={k: len(v) for k, v in groups.items()},
    )


def family_of(model: str) -> str:
    return get_model_spec(model).family
