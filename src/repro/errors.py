"""Exception hierarchy for the xMem reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers embedding the library (schedulers, experiment drivers) can catch one
base type.  OOM conditions are modelled as *data*, not just exceptions: the
simulated allocators raise :class:`DeviceOutOfMemoryError` /
:class:`SimOutOfMemoryError` carrying the allocator state needed to produce
PyTorch-style diagnostics.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class TraceError(ReproError):
    """A profiler trace is malformed or internally inconsistent."""


class TraceSchemaError(TraceError):
    """A trace JSON document does not match the expected event schema."""


class LifecycleError(ReproError):
    """Memory lifecycle reconstruction failed (e.g. double free)."""


class OrchestrationError(ReproError):
    """The memory orchestrator received events it cannot reconcile."""


class ModelNotFoundError(ReproError, KeyError):
    """An unknown model name was requested from the registry."""


class UnsupportedModelError(ReproError):
    """An estimator does not support this model family (e.g. LLMem + CNN)."""


class AllocatorError(ReproError):
    """Base class for allocator-simulation failures."""


class InvalidFreeError(AllocatorError):
    """A free was issued for an address the allocator does not own."""


class DeviceOutOfMemoryError(AllocatorError):
    """The simulated *device* (cudaMalloc level) could not satisfy a request."""

    def __init__(self, requested: int, free_bytes: int, capacity: int):
        self.requested = requested
        self.free_bytes = free_bytes
        self.capacity = capacity
        super().__init__(
            f"device OOM: requested {requested} bytes, "
            f"{free_bytes} free of {capacity} total"
        )


class SimOutOfMemoryError(AllocatorError):
    """The two-level allocator failed even after reclaiming cached segments.

    Mirrors the ``torch.cuda.OutOfMemoryError`` message shape so that the
    diagnostics users rely on (tried-to-allocate / reserved / allocated) are
    available from the simulation too.
    """

    def __init__(
        self,
        requested: int,
        allocated: int,
        reserved: int,
        capacity: int,
    ):
        self.requested = requested
        self.allocated = allocated
        self.reserved = reserved
        self.capacity = capacity
        super().__init__(
            f"simulated CUDA out of memory: tried to allocate {requested} bytes "
            f"({allocated} bytes allocated by tensors, {reserved} bytes reserved "
            f"by the allocator, {capacity} bytes device capacity)"
        )


class EstimationError(ReproError):
    """An estimator could not produce an estimate for a configuration."""


class ServiceError(ReproError):
    """Base class for estimation-service failures."""


class RequestRejectedError(ServiceError):
    """A service middleware rejected the request before estimation.

    Raised by :class:`~repro.service.middleware.ValidationMiddleware` for
    unknown models/optimizers or devices with no job budget.
    """


class RateLimitExceededError(ServiceError):
    """The service's token bucket is empty; retry after ``retry_after``."""

    def __init__(self, retry_after_seconds: float):
        self.retry_after_seconds = retry_after_seconds
        super().__init__(
            f"rate limit exceeded; retry in {retry_after_seconds:.3f}s"
        )


class ServiceClosedError(ServiceError):
    """A request was submitted to a service that has been shut down."""


class DeadlineExceededError(RequestRejectedError):
    """A request's deadline passed before the service could serve it.

    Carries how late the request was when the core noticed, so callers
    can distinguish a near miss from a request that queued forever.  A
    subclass of :class:`RequestRejectedError` so every classification
    site — gateway dispatch accounting, traffic replays, middleware
    unwinding — treats a deadline miss as the rejection it is.
    """

    def __init__(self, late_by_seconds: float):
        self.late_by_seconds = late_by_seconds
        super().__init__(
            f"deadline exceeded {late_by_seconds:.3f}s before service"
        )


class QuotaExceededError(RateLimitExceededError):
    """A tenant's token-bucket quota (or fair share) is exhausted.

    A subclass of :class:`RateLimitExceededError` so every existing
    classification site — gateway shed accounting, traffic replays, wire
    error mapping — treats a quota denial as the load-shedding event it
    is, while the control plane's callers can still catch the narrower
    type and read which tenant was throttled.
    """

    def __init__(
        self,
        tenant: str,
        retry_after_seconds: float = 0.0,
        scope: str = "quota",
    ):
        self.tenant = tenant
        #: which budget ran dry: ``"quota"`` (the tenant's own bucket) or
        #: ``"fair_share"`` (its weighted slice of fleet admission)
        self.scope = scope
        RateLimitExceededError.__init__(self, retry_after_seconds)
        self.args = (f"tenant {tenant!r} exceeded its {scope}",)


class AuthenticationError(RequestRejectedError):
    """A request's tenant token is missing, unknown, or mismatched.

    A subclass of :class:`RequestRejectedError` so every classification
    site counts an unauthenticated request as the rejection it is.
    """


class AuthorizationError(RequestRejectedError):
    """An authenticated tenant lacks a grant for this request.

    Raised by the auth shim when a tenant's grant does not cover the
    requested model or QoS class.
    """


class InjectedFaultError(ServiceError):
    """A planned fault from a :class:`~repro.service.faults.FaultPlan` fired.

    Deterministic chaos: the fault-injection plane raises this (or a
    subclass) at planned request indices so resilience policies can be
    exercised reproducibly.  Carries the fault ``kind`` so retry
    classification and the audit ledger can name the cause.
    """

    def __init__(self, kind: str, message: str | None = None):
        self.kind = kind
        super().__init__(message or f"injected fault: {kind}")


class ShardBlackoutError(InjectedFaultError):
    """A shard is inside a planned blackout window and refuses all work.

    Raised by the injection plane for every request dispatched to the
    blacked-out shard while the window is active.  Retryable: the
    resilience layer re-routes around it once the shard's circuit opens.
    """

    def __init__(self, shard_index: int):
        self.shard_index = shard_index
        super().__init__(
            "shard_blackout", f"shard {shard_index} is blacked out"
        )


class CircuitOpenError(RateLimitExceededError):
    """Every candidate shard's circuit breaker is open; request shed.

    A subclass of :class:`RateLimitExceededError` so every existing
    classification site (gateway shed accounting, traffic replays, wire
    error mapping) treats an open circuit as the load-shedding event it
    is, while callers who care can still catch the narrower type.
    """

    def __init__(self, reason: str, retry_after_seconds: float = 0.05):
        self.reason = reason
        RateLimitExceededError.__init__(self, retry_after_seconds)
        # Overwrite the generic rate-limit message with the breaker cause.
        self.args = (f"circuit open: {reason}",)


class ConnectionLostError(ServiceClosedError):
    """A transport connection died with requests still in flight.

    Raised by :class:`~repro.service.tcp.TcpServiceClient` (and its async
    sibling) instead of a raw ``OSError`` when the server drops the
    connection mid-call.  Carries the message ids that were pending so
    callers know exactly which requests never received a response.
    """

    def __init__(self, pending_request_ids: tuple[int, ...], detail: str):
        self.pending_request_ids = tuple(pending_request_ids)
        super().__init__(
            f"connection lost with {len(self.pending_request_ids)} "
            f"request(s) in flight: {detail}"
        )


class ValidationError(ReproError):
    """The two-round validation protocol was driven with inconsistent inputs."""
