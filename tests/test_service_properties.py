"""Property-based canonicalization tests (satellite of the gateway PR).

The whole serving stack — fingerprint cache, single-flight table,
consistent-hash routing — keys on the canonical identity of
``WorkloadConfig``/``DeviceSpec``.  These properties pin that identity:
``as_dict``/``from_dict`` round-trip exactly, the round trip is immune
to dict field *order*, survives a JSON serialize→deserialize cycle, and
never changes the fingerprint.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.loop import POS0, POS1
from repro.service import fingerprint_request
from repro.workload import DeviceSpec, WorkloadConfig

# readable-but-arbitrary identifiers (JSON-safe text, no surrogates)
names = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_categories=("Cs",)
    ),
    min_size=1,
    max_size=24,
)

workloads = st.builds(
    WorkloadConfig,
    model=names,
    optimizer=names,
    batch_size=st.integers(1, 65536),
    zero_grad_position=st.sampled_from((POS0, POS1)),
    set_to_none=st.booleans(),
)

devices = st.builds(
    DeviceSpec,
    name=names,
    capacity_bytes=st.integers(1, 2**44),
    init_bytes=st.integers(0, 2**40),
    framework_bytes=st.integers(0, 2**32),
)


def reordered(payload: dict, order: list[int]) -> dict:
    """The same payload with its keys inserted in a permuted order."""
    keys = list(payload)
    permuted = sorted(keys, key=lambda key: order[keys.index(key)])
    return {key: payload[key] for key in permuted}


class TestWorkloadRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(workload=workloads)
    def test_as_dict_from_dict_is_identity(self, workload):
        assert WorkloadConfig.from_dict(workload.as_dict()) == workload

    @settings(max_examples=120, deadline=None)
    @given(workload=workloads)
    def test_to_key_is_stable_through_the_round_trip(self, workload):
        round_tripped = WorkloadConfig.from_dict(workload.as_dict())
        assert round_tripped.to_key() == workload.to_key()

    @settings(max_examples=120, deadline=None)
    @given(
        workload=workloads,
        order=st.permutations(list(range(5))),
    )
    def test_round_trip_survives_field_reordering(self, workload, order):
        shuffled = reordered(workload.as_dict(), list(order))
        assert WorkloadConfig.from_dict(shuffled) == workload

    @settings(max_examples=100, deadline=None)
    @given(first=workloads, second=workloads)
    def test_to_key_agrees_with_equality(self, first, second):
        assert (first == second) == (first.to_key() == second.to_key())


class TestDeviceRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(device=devices)
    def test_as_dict_from_dict_is_identity(self, device):
        assert DeviceSpec.from_dict(device.as_dict()) == device

    @settings(max_examples=120, deadline=None)
    @given(
        device=devices,
        order=st.permutations(list(range(4))),
    )
    def test_round_trip_survives_field_reordering(self, device, order):
        shuffled = reordered(device.as_dict(), list(order))
        round_tripped = DeviceSpec.from_dict(shuffled)
        assert round_tripped == device
        assert round_tripped.to_key() == device.to_key()


class TestFingerprintStability:
    @settings(max_examples=100, deadline=None)
    @given(workload=workloads, device=devices)
    def test_serialize_deserialize_preserves_the_fingerprint(
        self, workload, device
    ):
        """The wire cycle a persistent cache would do changes nothing."""
        original = fingerprint_request(
            workload, device, estimator_name="xMem", estimator_version="1"
        )
        wire = json.dumps(
            {"workload": workload.as_dict(), "device": device.as_dict()}
        )
        decoded = json.loads(wire)
        revived = fingerprint_request(
            WorkloadConfig.from_dict(decoded["workload"]),
            DeviceSpec.from_dict(decoded["device"]),
            estimator_name="xMem",
            estimator_version="1",
        )
        assert revived == original

    @settings(max_examples=100, deadline=None)
    @given(
        workload=workloads,
        device=devices,
        order=st.permutations(list(range(5))),
    )
    def test_field_order_never_changes_the_fingerprint(
        self, workload, device, order
    ):
        original = fingerprint_request(
            workload, device, estimator_name="xMem"
        )
        shuffled = WorkloadConfig.from_dict(
            reordered(workload.as_dict(), list(order))
        )
        assert (
            fingerprint_request(shuffled, device, estimator_name="xMem")
            == original
        )
