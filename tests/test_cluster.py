"""Cluster scheduler: estimates drive packing, OOM kills, throughput."""

import pytest

from repro.cluster.job import Job, JobRecord
from repro.cluster.scheduler import (
    MemoryAwareScheduler,
    ServiceAdmissionController,
)
from repro.units import GiB
from repro.workload import DeviceSpec, WorkloadConfig

DEVICE = DeviceSpec(name="gpu", capacity_bytes=13 * GiB, framework_bytes=GiB)


def make_job(reserved_gib, actual_gib, duration=1, submitted_at=0):
    return Job(
        workload=WorkloadConfig("gpt2", "adam", 8),
        reserved_bytes=int(reserved_gib * GiB),
        actual_peak_bytes=int(actual_gib * GiB),
        duration=duration,
        submitted_at=submitted_at,
    )


class TestJob:
    def test_oom_flag(self):
        assert make_job(2, 3).ooms_under_reservation
        assert not make_job(3, 2).ooms_under_reservation

    def test_invalid_figures(self):
        with pytest.raises(ValueError):
            make_job(-1, 1)
        with pytest.raises(ValueError):
            make_job(1, 1, duration=0)

    def test_record_waste(self):
        record = JobRecord(
            job_id=1, started_at=0, finished_at=1, device="g",
            oomed=False, reserved_bytes=4 * GiB, actual_peak_bytes=3 * GiB,
        )
        assert record.wasted_bytes == GiB
        assert record.completed


class TestScheduler:
    def test_accurate_reservations_pack_two_jobs(self):
        scheduler = MemoryAwareScheduler([DEVICE])
        jobs = [make_job(5, 4.8), make_job(5, 4.9)]
        outcome = scheduler.simulate(jobs)
        assert outcome.completed == 2
        assert outcome.oom_kills == 0
        # both fit simultaneously: makespan is one job's duration + drain
        assert outcome.makespan <= 2

    def test_overestimates_serialize_jobs(self):
        scheduler = MemoryAwareScheduler([DEVICE])
        jobs = [make_job(11, 4.8), make_job(11, 4.9)]
        outcome = scheduler.simulate(jobs)
        assert outcome.completed == 2
        assert outcome.makespan >= 2  # could not share the GPU

    def test_underestimates_cause_oom_kills(self):
        scheduler = MemoryAwareScheduler([DEVICE])
        outcome = scheduler.simulate([make_job(3, 6)])
        assert outcome.oom_kills == 1
        assert outcome.completed == 0

    def test_oversized_job_rejected(self):
        scheduler = MemoryAwareScheduler([DEVICE])
        outcome = scheduler.simulate([make_job(20, 20)])
        (record,) = outcome.records
        assert record.started_at is None and not record.completed

    def test_first_fit_across_gpus(self):
        scheduler = MemoryAwareScheduler([DEVICE], gpus_per_device=2)
        jobs = [make_job(8, 7), make_job(8, 7)]
        outcome = scheduler.simulate(jobs)
        assert outcome.completed == 2
        devices = {r.device for r in outcome.records}
        assert len(devices) == 2

    def test_submission_times_respected(self):
        scheduler = MemoryAwareScheduler([DEVICE])
        jobs = [make_job(4, 3, submitted_at=3)]
        outcome = scheduler.simulate(jobs)
        (record,) = outcome.records
        assert record.started_at >= 3

    def test_throughput_favors_accuracy(self):
        """The paper's pitch: accurate estimates -> better packing."""
        workload = [(4.0, 3.9)] * 6  # six jobs that truly need ~3.9 GiB
        accurate = MemoryAwareScheduler([DEVICE]).simulate(
            [make_job(r, a, duration=2) for r, a in workload]
        )
        conservative = MemoryAwareScheduler([DEVICE]).simulate(
            [make_job(12, a, duration=2) for _, a in workload]
        )
        assert accurate.makespan < conservative.makespan
        assert accurate.completed == conservative.completed == 6

    def test_no_devices_rejected(self):
        with pytest.raises(ValueError):
            MemoryAwareScheduler([])


class TestServiceAdmission:
    """The service-backed admission path: estimates become reservations."""

    @pytest.fixture()
    def service(self):
        from tests.test_service_engine import StubEstimator
        from repro.service import (
            CacheMiddleware,
            EstimateCache,
            EstimationService,
            ValidationMiddleware,
        )

        cache = EstimateCache()
        svc = EstimationService(
            estimator=StubEstimator(peak_bytes=4 * GiB),
            middlewares=(ValidationMiddleware(), CacheMiddleware(cache)),
            cache=cache,
            max_workers=1,
        )
        yield svc
        svc.close()

    def test_admits_with_safety_margin(self, service):
        controller = ServiceAdmissionController(
            service, devices=[DEVICE], safety_margin=1.25
        )
        decision = controller.decide(WorkloadConfig("gpt2", "adam", 8))
        assert decision.admitted
        assert decision.reserved_bytes == int(4 * GiB * 1.25)
        assert decision.as_dict()["admitted"]

    def test_refuses_oversized_reservation(self):
        from tests.test_service_engine import StubEstimator
        from repro.service import EstimationService

        with EstimationService(
            estimator=StubEstimator(peak_bytes=20 * GiB), max_workers=1
        ) as service:
            controller = ServiceAdmissionController(service, devices=[DEVICE])
            decision = controller.decide(WorkloadConfig("gpt2", "adam", 8))
        assert not decision.admitted
        assert "exceeds every device" in decision.reason

    def test_refuses_service_rejections(self, service):
        controller = ServiceAdmissionController(service, devices=[DEVICE])
        decision = controller.decide(WorkloadConfig("no-such-model", "adam", 8))
        assert not decision.admitted
        assert "rejected by service" in decision.reason

    def test_repeat_submissions_hit_the_cache(self, service):
        controller = ServiceAdmissionController(service, devices=[DEVICE])
        workload = WorkloadConfig("gpt2", "adam", 8)
        controller.decide(workload)
        controller.decide(workload)
        stats = service.stats()["service"]
        assert stats["computed"] == 1
        assert stats["cache_hits"] == 1

    def test_build_jobs_and_simulate(self, service):
        controller = ServiceAdmissionController(
            service, devices=[DEVICE], safety_margin=1.1
        )
        submissions = [
            (WorkloadConfig("gpt2", "adam", 8), 4 * GiB),  # fits
            (WorkloadConfig("bogus", "adam", 8), 4 * GiB),  # refused
            (WorkloadConfig("gpt2", "adam", 16), 4 * GiB),  # fits
        ]
        outcome, decisions = controller.simulate(submissions, duration=2)
        assert [d.admitted for d in decisions] == [True, False, True]
        assert outcome.completed == 2
        assert outcome.oom_kills == 0

    def test_invalid_parameters(self, service):
        with pytest.raises(ValueError):
            ServiceAdmissionController(service, devices=[])
        with pytest.raises(ValueError):
            ServiceAdmissionController(
                service, devices=[DEVICE], safety_margin=0.9
            )


class TestGatewayAdmission:
    """Admission can target a sharded gateway instead of one service."""

    def test_decisions_match_a_single_service(self):
        from repro.service import (
            EstimationService,
            ServiceGateway,
            SyntheticEstimator,
        )

        workloads = [
            WorkloadConfig("MobileNetV2", "sgd", 8),
            WorkloadConfig("MobileNetV2", "adam", 16),
            WorkloadConfig("MobileNetV3Small", "sgd", 32),
        ]
        with EstimationService(
            estimator=SyntheticEstimator(), max_workers=1
        ) as service:
            single = ServiceAdmissionController(service, devices=[DEVICE])
            expected = [single.decide(w) for w in workloads]
        with ServiceGateway(
            num_shards=3, estimator_factory=SyntheticEstimator
        ) as gateway:
            sharded = ServiceAdmissionController(gateway, devices=[DEVICE])
            decisions = [sharded.decide(w) for w in workloads]
        assert [d.as_dict() for d in decisions] == [
            d.as_dict() for d in expected
        ]

    def test_gateway_rejections_become_refusals(self):
        from repro.service import ServiceGateway, SyntheticEstimator

        with ServiceGateway(
            num_shards=2, estimator_factory=SyntheticEstimator
        ) as gateway:
            controller = ServiceAdmissionController(
                gateway, devices=[DEVICE]
            )
            decision = controller.decide(
                WorkloadConfig("no-such-model", "sgd", 8)
            )
        assert not decision.admitted
        assert "rejected by service" in decision.reason

    def test_repeat_submissions_hit_the_shard_cache(self):
        from repro.service import ServiceGateway, SyntheticEstimator

        with ServiceGateway(
            num_shards=2, estimator_factory=SyntheticEstimator
        ) as gateway:
            controller = ServiceAdmissionController(
                gateway, devices=[DEVICE]
            )
            workload = WorkloadConfig("MobileNetV2", "sgd", 8)
            for _ in range(5):
                controller.decide(workload)
            aggregate = gateway.stats()["aggregate"]
        assert aggregate["computed"] == 1
        assert aggregate["cache_hits"] == 4
